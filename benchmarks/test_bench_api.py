"""E13 — the v2 API gateway: bulk progression and paginated listings.

The PR 1 kernel progresses ~7k ops/s across 16 shards, but the v0 service
dialect could only reach it one request at a time: progressing 10k instances
meant 10k sequential REST calls, each paying the full (simulated) action
round-trip before the next could start.  The v2 gateway closes that gap:

* ``POST /v2/instances:batchAdvance`` carries all 10k moves in one request
  and fans them out across the shards (one worker per shard), overlapping
  the action waits exactly like the kernel benchmark does;
* ``GET /v2/instances?owner=...`` answers one keyset page straight from the
  owner index, where the v1 listing serialised every instance in the system
  on every call.

Run with ``python -m repro.benchrunner api``; results are printed and
appended to ``BENCH_api.json``.
"""

import time

from repro.actions import library
from repro.clock import SimulatedClock
from repro.events import BatchingEventBus
from repro.model import LifecycleBuilder
from repro.plugins import build_standard_environment
from repro.runtime import ShardedLifecycleManager
from repro.service import GeleeService, RestRouter

from .conftest import report

INSTANCES = 10_000
SHARDS = 16
OWNERS = 100
PAGE_SIZE = 100
#: Simulated action round-trip, uniform seconds (reproducible: seeded rng).
ACTION_LATENCY = (0.00015, 0.0003)
#: batchAdvance must beat the per-call v1 loop by at least this factor.
REQUIRED_SPEEDUP = 3.0


def _bench_model():
    builder = LifecycleBuilder("API bench lifecycle")
    builder.phase("Work")
    builder.phase("Review")
    builder.terminal("End")
    builder.flow("Work", "Review", "End")
    for phase in ("Work", "Review"):
        builder.action(phase, library.CHANGE_ACCESS_RIGHTS, "Change access rights",
                       visibility="team")
    return builder.build()


def _deploy():
    """A 16-shard hosted deployment with simulated action latency."""
    clock = SimulatedClock()
    environment = build_standard_environment(clock=clock)
    manager = ShardedLifecycleManager(
        environment, shard_count=SHARDS, clock=clock,
        bus=BatchingEventBus(max_batch=256),
        simulated_action_latency=ACTION_LATENCY)
    service = GeleeService(manager=manager, clock=clock)
    router = RestRouter(service)
    model = _bench_model()
    manager.publish_model(model, actor="coordinator")
    return router, service, manager, model


def _populate(manager, environment, model, count):
    adapter = environment.adapter("Google Doc")
    requests = [
        {"model_uri": model.uri,
         "resource": adapter.create_resource("doc {}".format(index), owner="alice"),
         "owner": "owner-{}".format(index % OWNERS)}
        for index in range(count)
    ]
    instances = manager.batch_instantiate(requests)
    return [instance.instance_id for instance in instances]


def test_bench_batch_advance_vs_v1_loop():
    """One batchAdvance call must beat 10k sequential v1 calls by >= 3x."""
    router, service, manager, model = _deploy()
    environment = service.environment

    # Advancing an unstarted instance places the token on the initial phase,
    # so every cohort runs the same kernel work (enter "work", dispatch its
    # actions).  Each dialect is measured on two fresh cohorts and the best
    # round is kept — the fan-out result is sensitive to OS scheduling noise.
    def run_v1():
        ids = _populate(manager, environment, model, INSTANCES)
        started = time.perf_counter()
        for instance_id in ids:
            response = router.post("/instances/{}/advance".format(instance_id),
                                   actor="alice")
            assert response.ok, response.body
        return time.perf_counter() - started

    def run_v2():
        ids = _populate(manager, environment, model, INSTANCES)
        started = time.perf_counter()
        response = router.post("/v2/instances:batchAdvance", actor="alice",
                               body={"items": ids})
        elapsed = time.perf_counter() - started
        assert response.ok, response.body
        assert response.body["data"]["succeeded"] == INSTANCES
        assert response.body["data"]["failed"] == 0
        return elapsed

    v1_elapsed = min(run_v1() for _ in range(2))
    v1_ops = INSTANCES / v1_elapsed
    v2_elapsed = min(run_v2() for _ in range(2))
    v2_ops = INSTANCES / v2_elapsed

    speedup = v2_ops / v1_ops
    report(
        "E13 — v2 bulk progression vs the per-call v1 loop",
        [
            "workload: {} instances, {} shards, action latency {:.2f}-{:.2f} ms".format(
                INSTANCES, SHARDS, ACTION_LATENCY[0] * 1000, ACTION_LATENCY[1] * 1000),
            "v1 per-call loop   : {:7.2f}s  {:8.0f} ops/s  (baseline)".format(
                v1_elapsed, v1_ops),
            "v2 batchAdvance    : {:7.2f}s  {:8.0f} ops/s  ({:4.2f}x)".format(
                v2_elapsed, v2_ops, speedup),
            "required speedup   : >= {:.1f}x".format(REQUIRED_SPEEDUP),
        ],
        slug="api",
        data={
            "experiment": "batch_advance_vs_v1_loop",
            "instances": INSTANCES,
            "shards": SHARDS,
            "action_latency_seconds": list(ACTION_LATENCY),
            "v1_loop": {"elapsed_s": round(v1_elapsed, 4),
                        "ops_per_s": round(v1_ops, 1)},
            "v2_batch_advance": {"elapsed_s": round(v2_elapsed, 4),
                                 "ops_per_s": round(v2_ops, 1),
                                 "speedup": round(speedup, 3)},
        },
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        "batchAdvance reached only {:.2f}x the v1 per-call loop".format(speedup))


def test_bench_paginated_listing_vs_full_scan():
    """An index-backed keyset page must stay flat while v1 serialises everything."""
    router, service, manager, model = _deploy()
    _populate(manager, service.environment, model, INSTANCES)

    # Warm both paths once (route compilation, index touch).
    router.get("/v2/instances", owner="owner-3", page_size=PAGE_SIZE)
    router.get("/instances", owner="owner-3")

    started = time.perf_counter()
    page = router.get("/v2/instances", owner="owner-3", page_size=PAGE_SIZE)
    paged_ms = (time.perf_counter() - started) * 1000
    assert page.ok
    assert len(page.body["data"]) == PAGE_SIZE
    assert page.body["meta"]["pagination"]["total"] == INSTANCES // OWNERS

    started = time.perf_counter()
    full = router.get("/instances")
    full_ms = (time.perf_counter() - started) * 1000
    assert full.ok and len(full.body) == INSTANCES

    started = time.perf_counter()
    pages = 0
    token = None
    while True:
        query = {"owner": "owner-3", "page_size": PAGE_SIZE}
        if token:
            query["page_token"] = token
        response = router.get("/v2/instances", **query)
        pages += 1
        token = response.body["meta"]["pagination"]["next_page_token"]
        if token is None:
            break
    drain_ms = (time.perf_counter() - started) * 1000

    report(
        "E13b — paginated, index-backed listing vs the v1 full listing",
        [
            "{} instances, {} owners; page size {}".format(INSTANCES, OWNERS, PAGE_SIZE),
            "v2 one page (owner filter)   : {:8.2f} ms".format(paged_ms),
            "v2 drain owner ({} pages)     : {:8.2f} ms".format(pages, drain_ms),
            "v1 full listing ({} rows) : {:8.2f} ms".format(INSTANCES, full_ms),
        ],
        slug="api",
        data={
            "experiment": "paginated_listing_vs_full_scan",
            "instances": INSTANCES,
            "owners": OWNERS,
            "page_size": PAGE_SIZE,
            "v2_single_page_ms": round(paged_ms, 3),
            "v2_drain_owner_ms": round(drain_ms, 3),
            "v2_drain_pages": pages,
            "v1_full_listing_ms": round(full_ms, 3),
        },
    )
    # The filtered page must not pay for the whole corpus.
    assert paged_ms < full_ms
