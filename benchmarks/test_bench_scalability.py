"""E11 — scalability of the hosted kernel.

Parameter sweeps over the dimensions a hosted deployment cares about:
number of instances, phases per lifecycle, actions per phase, and the cost of
monitoring queries and execution-log growth.  Also ablates two design
choices called out in DESIGN.md: file-backed vs. in-memory repositories and
sequential vs. (shuffled) independent action dispatch.
"""

import random

import pytest

from repro.actions import library
from repro.clock import SimulatedClock
from repro.model import LifecycleBuilder
from repro.monitoring import MonitoringCockpit
from repro.plugins import build_standard_environment
from repro.runtime import LifecycleManager
from repro.storage import ExecutionLog, FileRepository, InMemoryRepository, TemplateStore
from repro.templates import eu_deliverable_lifecycle

from .conftest import make_deliverable, report


def _stack():
    clock = SimulatedClock()
    environment = build_standard_environment(clock=clock)
    manager = LifecycleManager(environment, clock=clock, rng=random.Random(0))
    model = eu_deliverable_lifecycle()
    manager.publish_model(model, actor="coordinator")
    return environment, manager, model, clock


def _synthetic_model(phases, actions_per_phase):
    builder = LifecycleBuilder("Synthetic {}x{}".format(phases, actions_per_phase))
    names = ["Phase {}".format(index) for index in range(phases)]
    for name in names:
        builder.phase(name)
    builder.terminal("End")
    builder.flow(*(names + ["End"]))
    for name in names:
        for _ in range(actions_per_phase):
            builder.action(name, library.CHANGE_ACCESS_RIGHTS, "Change access rights",
                           visibility="team")
    return builder.build()


@pytest.mark.parametrize("instances", [10, 100, 500])
def test_bench_instantiation_scaling(benchmark, instances):
    environment, manager, model, clock = _stack()

    def create_portfolio():
        created = []
        for index in range(instances):
            created.append(make_deliverable(manager, environment, model,
                                            title="D{}".format(index)))
        return created

    result = benchmark.pedantic(create_portfolio, rounds=1, iterations=1)
    assert len(result) == instances


@pytest.mark.parametrize("instances", [10, 100, 500])
def test_bench_monitoring_scaling(benchmark, instances):
    environment, manager, model, clock = _stack()
    for index in range(instances):
        instance = make_deliverable(manager, environment, model, title="D{}".format(index))
        manager.start(instance.instance_id, actor="alice")
    cockpit = MonitoringCockpit(manager)

    def monitor():
        return cockpit.status_table(), cockpit.portfolio_summary()

    table, summary = benchmark(monitor)
    assert summary.total == instances


@pytest.mark.parametrize("phases,actions", [(5, 1), (20, 2), (50, 4)])
def test_bench_progression_vs_model_size(benchmark, phases, actions):
    environment, manager, _, clock = _stack()
    model = _synthetic_model(phases, actions)
    manager.publish_model(model, actor="coordinator")
    descriptor = environment.adapter("Google Doc").create_resource("big", owner="alice")
    instance = manager.instantiate(model.uri, descriptor, owner="alice")
    manager.start(instance.instance_id, actor="alice")
    phase_ids = [phase_id for phase_id in model.phase_ids if phase_id != "end"]
    cursor = {"index": 0}

    def advance_one():
        cursor["index"] = (cursor["index"] + 1) % len(phase_ids)
        manager.move_to(instance.instance_id, actor="alice",
                        phase_id=phase_ids[cursor["index"]])
        return instance

    result = benchmark(advance_one)
    assert result.visits


def test_bench_execution_log_query_growth(benchmark):
    environment, manager, model, clock = _stack()
    log = ExecutionLog(bus=manager.bus)
    instances = []
    for index in range(100):
        instance = make_deliverable(manager, environment, model, title="D{}".format(index))
        manager.start(instance.instance_id, actor="alice")
        manager.advance(instance.instance_id, actor="alice", to_phase_id="internalreview")
        instances.append(instance)
    target = instances[50].instance_id

    def query():
        return log.history_of(target)

    history = benchmark(query)
    assert history


def test_bench_repository_ablation_inmemory(benchmark):
    store = TemplateStore(InMemoryRepository("templates"))
    model = eu_deliverable_lifecycle()
    counter = iter(range(100000))

    def save():
        return store.save(model, template_id="t{}".format(next(counter)))

    assert benchmark(save)


def test_bench_repository_ablation_filebacked(benchmark, tmp_path):
    store = TemplateStore(FileRepository(str(tmp_path / "templates")))
    model = eu_deliverable_lifecycle()
    counter = iter(range(100000))

    def save():
        return store.save(model, template_id="t{}".format(next(counter)))

    assert benchmark(save)


def test_bench_action_dispatch_parallel_semantics(benchmark):
    """Ablation: the shuffled, isolated dispatch of a many-action phase."""
    environment, manager, _, clock = _stack()
    model = _synthetic_model(2, 10)
    manager.publish_model(model, actor="coordinator")
    descriptor = environment.adapter("Google Doc").create_resource("many", owner="alice")
    instance = manager.instantiate(model.uri, descriptor, owner="alice")
    manager.start(instance.instance_id, actor="alice")
    targets = ["phase-1", "phase-0"]
    cursor = {"index": 0}

    def enter_heavy_phase():
        cursor["index"] = (cursor["index"] + 1) % 2
        manager.move_to(instance.instance_id, actor="alice", phase_id=targets[cursor["index"]])
        return instance.visits[-1]

    visit = benchmark(enter_heavy_phase)
    assert len(visit.invocations) == 10


def test_scalability_summary_report():
    """A compact, human-readable summary of how cost grows with portfolio size."""
    import time

    rows = []
    for instances in (10, 100, 300):
        environment, manager, model, clock = _stack()
        started = time.perf_counter()
        for index in range(instances):
            instance = make_deliverable(manager, environment, model,
                                        title="D{}".format(index))
            manager.start(instance.instance_id, actor="alice")
        build_seconds = time.perf_counter() - started
        cockpit = MonitoringCockpit(manager)
        started = time.perf_counter()
        cockpit.status_table()
        query_seconds = time.perf_counter() - started
        rows.append("instances={:<4d} build={:.3f}s monitoring query={:.4f}s".format(
            instances, build_seconds, query_seconds))
    report("E11 — scalability sweep (laptop-scale hosted kernel)", rows)
