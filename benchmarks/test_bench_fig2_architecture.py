"""E4 (Fig. 2) — the hosted architecture: design-time request, runtime
progression event and action callback flowing through the three tiers.

Measures the cost of going through the service facade (REST router) and,
separately, of a genuine HTTP round trip on localhost, so the "hosted as a
service" claim is exercised end to end.
"""

import pytest

from repro.clock import SimulatedClock
from repro.plugins import build_standard_environment
from repro.service import GeleeHttpClient, GeleeHttpServer, GeleeService, RestRouter

from .conftest import report


@pytest.fixture
def stack():
    clock = SimulatedClock()
    service = GeleeService(environment=build_standard_environment(clock=clock), clock=clock)
    router = RestRouter(service)
    return service, router


def _publish_and_instantiate(service, router, title="D1.1"):
    model_uri = router.post("/templates/eu-deliverable/publish", actor="coordinator").body["uri"]
    descriptor = service.environment.adapter("Google Doc").create_resource(title, owner="alice")
    created = router.post("/instances", actor="alice", body={
        "model_uri": model_uri, "resource": descriptor.to_dict(), "owner": "alice"})
    return model_uri, created.body["instance_id"]


def test_fig2_message_flow_through_all_tiers(stack):
    """One pass through every arrow of Fig. 2, asserting each tier reacted."""
    service, router = stack
    model_uri, instance_id = _publish_and_instantiate(service, router)

    # runtime progression event (execution widget -> lifecycle manager runtime)
    start = router.post("/instances/{}/start".format(instance_id), actor="alice")
    advance = router.post("/instances/{}/advance".format(instance_id), actor="alice",
                          body={"to_phase_id": "internalreview",
                                "call_parameters": {}})
    assert start.ok and advance.ok

    # resource plug-in executed actions against the managed application
    doc_app = service.environment.adapter("Google Doc").application
    instance = service.manager.instance(instance_id)
    assert doc_app.access(instance.resource.uri).visibility == "team"

    # action callback (resource plug-in -> lifecycle manager runtime)
    visit = instance.to_dict()["visits"][-1]
    callback = router.post("/callbacks/{}/{}/{}".format(
        instance_id, visit["phase_id"], visit["invocations"][0]["call_id"]),
        body={"status": "in progress"})
    assert callback.ok

    # data tier: execution log captured the whole exchange
    history = router.get("/instances/{}/history".format(instance_id)).body
    kinds = {entry["kind"] for entry in history}
    assert {"instance.created", "instance.phase_entered", "action.completed",
            "action.status"} <= kinds

    # UI tier: monitoring cockpit and widget reflect the state
    assert router.get("/monitoring/summary").body["active"] == 1
    widget = router.get("/instances/{}/widget".format(instance_id), viewer="alice").body
    assert widget["current_phase"] == "internalreview"

    report("E4 / Fig.2 — architecture message flow", [
        "design-time publish      -> model {}".format(model_uri),
        "runtime progression      -> phase internalreview (2 actions executed)",
        "action callback          -> status recorded on the invocation",
        "execution log            -> {} events for the instance".format(len(history)),
        "monitoring cockpit       -> 1 active instance",
    ])


def test_bench_design_time_publish(stack, benchmark):
    service, router = stack

    def publish():
        return router.post("/templates/eu-deliverable/publish", actor="coordinator")

    response = benchmark(publish)
    assert response.ok


def test_bench_runtime_progression_event(stack, benchmark):
    service, router = stack
    model_uri, _ = _publish_and_instantiate(service, router)

    def setup():
        descriptor = service.environment.adapter("Google Doc").create_resource(
            "bench", owner="alice")
        created = router.post("/instances", actor="alice", body={
            "model_uri": model_uri, "resource": descriptor.to_dict(), "owner": "alice"})
        instance_id = created.body["instance_id"]
        router.post("/instances/{}/start".format(instance_id), actor="alice")
        return (instance_id,), {}

    def progress(instance_id):
        return router.post("/instances/{}/advance".format(instance_id), actor="alice",
                           body={"to_phase_id": "internalreview"})

    response = benchmark.pedantic(progress, setup=setup, rounds=30)
    assert response.ok


def test_bench_monitoring_query_over_portfolio(stack, benchmark):
    service, router = stack
    model_uri, _ = _publish_and_instantiate(service, router)
    for index in range(50):
        descriptor = service.environment.adapter("Google Doc").create_resource(
            "D{}".format(index), owner="alice")
        created = router.post("/instances", actor="alice", body={
            "model_uri": model_uri, "resource": descriptor.to_dict(), "owner": "alice"})
        router.post("/instances/{}/start".format(created.body["instance_id"]), actor="alice")

    def query():
        return router.get("/monitoring/table")

    response = benchmark(query)
    assert len(response.body) >= 50


def test_bench_http_round_trip(stack, benchmark):
    """A real localhost HTTP request through the hosted service."""
    service, router = stack
    with GeleeHttpServer(router) as server:
        client = GeleeHttpClient(server.host, server.port, actor="coordinator")

        def round_trip():
            return client.get("/monitoring/summary")

        response = benchmark(round_trip)
        assert response.ok
