"""E12 — sharded, concurrent lifecycle runtime.

The paper's prototype serves one user at a time; the ROADMAP north star is a
hosted deployment progressing lifecycles for many concurrent owners.  This
experiment drives 10k+ instances through their phases and compares

* the classic single :class:`~repro.runtime.LifecycleManager` (serial), with
* :class:`~repro.runtime.ShardedLifecycleManager` at shard counts {1, 4, 16},
  one worker thread per shard, batched event dispatch.

Actions simulate the web-service round-trip of the paper's remote plug-ins
(§IV.C) with a small reproducible latency; sharding wins by overlapping
those waits across shards while per-shard locks keep every shard
single-writer.  A zero-latency control shows the pure-CPU case (GIL-bound,
no speedup expected) so the report never overstates the win.

Results are printed and appended to ``BENCH_sharding.json``.
"""

import random
import time

from repro.actions import library
from repro.clock import SimulatedClock
from repro.events import BatchingEventBus, EventBus
from repro.model import LifecycleBuilder
from repro.plugins import build_standard_environment
from repro.runtime import LifecycleManager, ShardedLifecycleManager
from repro.storage import ExecutionLog

from .conftest import report

INSTANCES = 10_000
SHARD_COUNTS = (1, 4, 16)
#: Simulated action round-trip, uniform seconds (reproducible: seeded rng).
ACTION_LATENCY = (0.00015, 0.0003)


def _bench_model():
    builder = LifecycleBuilder("Sharding bench lifecycle")
    builder.phase("Work")
    builder.phase("Review")
    builder.terminal("End")
    builder.flow("Work", "Review", "End")
    for phase in ("Work", "Review"):
        builder.action(phase, library.CHANGE_ACCESS_RIGHTS, "Change access rights",
                       visibility="team")
    return builder.build()


def _populate(manager, environment, model, count):
    adapter = environment.adapter("Google Doc")
    ids = []
    for index in range(count):
        descriptor = adapter.create_resource("doc {}".format(index), owner="alice")
        instance = manager.instantiate(model.uri, descriptor, owner="alice")
        ids.append(instance.instance_id)
    return ids


def _run_single(latency):
    """Serial baseline: the paper's single-dict, single-thread manager."""
    clock = SimulatedClock()
    environment = build_standard_environment(clock=clock)
    bus = EventBus()
    log = ExecutionLog(bus=bus)
    manager = LifecycleManager(environment, clock=clock, bus=bus,
                               rng=random.Random(0),
                               simulated_action_latency=latency)
    model = _bench_model()
    manager.publish_model(model, actor="coordinator")
    ids = _populate(manager, environment, model, INSTANCES)
    started = time.perf_counter()
    for instance_id in ids:
        manager.start(instance_id, actor="alice")
    for instance_id in ids:
        manager.advance(instance_id, actor="alice", to_phase_id="review")
    elapsed = time.perf_counter() - started
    return elapsed, 2 * INSTANCES / elapsed, _instance_events(log)


def _instance_events(log):
    """Instance/action events only: the sharded run duplicates the (rare)
    design-time ``model.published`` event once per shard, which would skew a
    raw event-count comparison."""
    return log.count(kind="instance.") + log.count(kind="action.")


def _run_sharded(shard_count, latency):
    """The sharded runtime: hash-partitioned shards, one worker per shard."""
    clock = SimulatedClock()
    environment = build_standard_environment(clock=clock)
    bus = BatchingEventBus(max_batch=256)
    log = ExecutionLog(bus=bus)
    manager = ShardedLifecycleManager(environment, shard_count=shard_count,
                                      clock=clock, bus=bus, rng_seed=0,
                                      simulated_action_latency=latency)
    model = _bench_model()
    manager.publish_model(model, actor="coordinator")
    ids = _populate(manager, environment, model, INSTANCES)
    started = time.perf_counter()
    manager.map_instances(ids, lambda shard, iid: shard.start(iid, actor="alice"))
    manager.map_instances(
        ids, lambda shard, iid: shard.advance(iid, actor="alice", to_phase_id="review"))
    elapsed = time.perf_counter() - started
    bus.flush()
    return elapsed, 2 * INSTANCES / elapsed, _instance_events(log), manager.shard_sizes()


def test_bench_sharded_progression_throughput():
    """16 shards must sustain >= 2x the single manager's progression throughput."""
    single_elapsed, single_ops, single_events = _run_single(ACTION_LATENCY)
    rows = [
        "workload: {} instances x 2 progressions, action latency {:.2f}-{:.2f} ms".format(
            INSTANCES, ACTION_LATENCY[0] * 1000, ACTION_LATENCY[1] * 1000),
        "single manager  : {:7.2f}s  {:8.0f} ops/s  (baseline)".format(
            single_elapsed, single_ops),
    ]
    results = {}
    for shard_count in SHARD_COUNTS:
        elapsed, ops, events, sizes = _run_sharded(shard_count, ACTION_LATENCY)
        # Same workload processed: the merged event stream must match the
        # baseline's, or the comparison is meaningless.
        assert events == single_events, (
            "sharded run published {} events, baseline {}".format(events, single_events))
        assert sum(sizes) == INSTANCES
        results[shard_count] = (elapsed, ops)
        rows.append(
            "{:2d} shard(s)      : {:7.2f}s  {:8.0f} ops/s  ({:4.2f}x)  shard sizes {}..{}".format(
                shard_count, elapsed, ops, ops / single_ops, min(sizes), max(sizes)))

    # Zero-latency control: pure CPU, GIL-bound -> sharding is not expected
    # to win; reported so the headline number is honestly framed as
    # overlapping action wait time, not magic CPU parallelism.
    control_elapsed, control_ops, _ = _run_single((0.0, 0.0))
    sharded_control = _run_sharded(16, (0.0, 0.0))
    rows.append("zero-latency control: single {:6.0f} ops/s, 16 shards {:6.0f} ops/s".format(
        control_ops, sharded_control[1]))

    speedup_16 = results[16][1] / single_ops
    rows.append("16-shard speedup: {:.2f}x (required: >= 2x)".format(speedup_16))
    report(
        "E12 — sharded runtime: progression throughput vs the single manager",
        rows,
        slug="sharding",
        data={
            "experiment": "sharded_progression_throughput",
            "instances": INSTANCES,
            "progressions_per_instance": 2,
            "action_latency_seconds": list(ACTION_LATENCY),
            "single": {"elapsed_s": round(single_elapsed, 4),
                       "ops_per_s": round(single_ops, 1)},
            "sharded": {
                str(count): {"elapsed_s": round(elapsed, 4),
                             "ops_per_s": round(ops, 1),
                             "speedup": round(ops / single_ops, 3)}
                for count, (elapsed, ops) in results.items()
            },
            "zero_latency_control": {
                "single_ops_per_s": round(control_ops, 1),
                "sharded16_ops_per_s": round(sharded_control[1], 1),
            },
        },
    )
    assert speedup_16 >= 2.0, (
        "16 shards reached only {:.2f}x the single-manager throughput".format(speedup_16))


def test_bench_cross_shard_monitoring_scales():
    """Index-backed cockpit queries stay cheap while 10k instances progress."""
    from repro.monitoring import MonitoringCockpit

    clock = SimulatedClock()
    environment = build_standard_environment(clock=clock)
    manager = ShardedLifecycleManager(environment, shard_count=16, clock=clock)
    model = _bench_model()
    manager.publish_model(model, actor="coordinator")
    ids = _populate(manager, environment, model, INSTANCES)
    manager.map_instances(ids, lambda shard, iid: shard.start(iid, actor="alice"))
    cockpit = MonitoringCockpit(manager)

    started = time.perf_counter()
    phase_counts = cockpit.phase_counts()
    owner_counts = cockpit.owner_counts()
    status_counts = cockpit.status_counts()
    indexed_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    summary = cockpit.portfolio_summary()
    summary_elapsed = time.perf_counter() - started

    assert phase_counts == {"work": INSTANCES}
    assert owner_counts == {"alice": INSTANCES}
    assert status_counts == {"active": INSTANCES}
    assert summary.total == INSTANCES
    report(
        "E12b — index-backed monitoring over 16 shards",
        [
            "phase/owner/status counts ({} instances): {:6.2f} ms".format(
                INSTANCES, indexed_elapsed * 1000),
            "full portfolio summary                  : {:6.2f} ms".format(
                summary_elapsed * 1000),
        ],
        slug="sharding",
        data={
            "experiment": "cross_shard_monitoring",
            "instances": INSTANCES,
            "indexed_counts_ms": round(indexed_elapsed * 1000, 3),
            "portfolio_summary_ms": round(summary_elapsed * 1000, 3),
        },
    )
