"""E3 (Table II) — the XML action-type definition with binding times."""

from repro.actions import library
from repro.actions.registry import ActionRegistry
from repro.model.parameters import BindingTime
from repro.serialization import action_type_from_xml, action_type_to_xml

from .conftest import report


def _registry():
    registry = ActionRegistry()
    library.register_standard_library(registry)
    return registry


def test_table2_document_structure():
    registry = _registry()
    xml = action_type_to_xml(registry.type(library.CHANGE_ACCESS_RIGHTS))
    for element in ("<action_type", "<name>", "<version_info>", "<parameters>",
                    'bindingTime="', 'required="', "<value>"):
        assert element in xml, "missing Table II element {}".format(element)
    assert 'uri="http://www.liquidpub.org/a/chr"' in xml
    report("E3 / Table II — generated action-type XML", xml.splitlines()[:16])


def test_table2_binding_times_round_trip():
    registry = _registry()
    for action_type in registry.types():
        restored = action_type_from_xml(action_type_to_xml(action_type))
        assert restored.uri == action_type.uri
        for parameter in action_type.parameters:
            restored_parameter = restored.parameter(parameter.name)
            assert restored_parameter is not None
            assert restored_parameter.binding_time is parameter.binding_time
            assert restored_parameter.required == parameter.required


def test_table2_paper_placeholder_tokens_accepted():
    document = """
    <action_type uri="urn:x"><name>X</name><parameters>
      <param bindingTime="[def|inst|call|any]" required="[yes|no]">
        <name>p</name><value></value>
      </param>
    </parameters></action_type>
    """
    action_type = action_type_from_xml(document)
    assert action_type.parameter("p").binding_time is BindingTime.ANY


def test_bench_action_type_to_xml(benchmark):
    action_type = _registry().type(library.CHANGE_ACCESS_RIGHTS)
    xml = benchmark(action_type_to_xml, action_type)
    assert "<action_type" in xml


def test_bench_action_type_from_xml(benchmark):
    xml = action_type_to_xml(_registry().type(library.CHANGE_ACCESS_RIGHTS))
    action_type = benchmark(action_type_from_xml, xml)
    assert action_type.name == "Change Access Rights"


def test_bench_whole_library_round_trip(benchmark):
    registry = _registry()
    documents = [action_type_to_xml(t) for t in registry.types()]

    def parse_all():
        return [action_type_from_xml(document) for document in documents]

    parsed = benchmark(parse_all)
    assert len(parsed) == len(documents)
