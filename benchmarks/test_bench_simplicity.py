"""E10 (§VI claim) — model simplicity.

"Indeed the lifecycle model can be described in about a page and learned in a
matter of minutes."  We cannot measure learning time, so the experiment
compares *definition size*: the number of modelling elements (and the length
of the serialized definition) a composer must produce to express the Fig. 1
deliverable process in Gelee vs. the prescriptive workflow baseline.
"""

from repro.baselines import WorkflowDefinition, WorkflowEngine, WorkflowTask
from repro.serialization import lifecycle_to_xml
from repro.templates import eu_deliverable_lifecycle

from .conftest import report


def build_equivalent_workflow():
    """The Fig. 1 process expressed as a classical workflow definition.

    A workflow needs what Gelee deliberately leaves out: task implementations
    bound at design time, workflow variables for the data the actions need,
    guard conditions for the rework loop, and explicit routing.
    """
    definition = WorkflowDefinition(
        name="EU deliverable workflow", definition_id="wf-eu-deliverable",
        variables=["document_uri", "reviewers", "review_comments", "pdf", "decision"],
    )

    def automatic(name):
        return WorkflowTask(name, name, automatic=False,
                            implementation=lambda data: data,
                            inputs=["document_uri"], outputs=[])

    definition.add_task(WorkflowTask("elaboration", "Elaborate document", automatic=False,
                                     outputs=["document_uri"]))
    definition.add_task(WorkflowTask("set_team_rights", "Set team access rights",
                                     implementation=lambda data: {"rights": "team"},
                                     inputs=["document_uri"]))
    definition.add_task(WorkflowTask("notify_reviewers", "Notify reviewers",
                                     implementation=lambda data: {"notified": True},
                                     inputs=["document_uri", "reviewers"]))
    definition.add_task(WorkflowTask("collect_reviews", "Collect reviews", automatic=False,
                                     inputs=["document_uri"], outputs=["review_comments",
                                                                       "decision"]))
    definition.add_task(WorkflowTask("generate_pdf", "Generate PDF",
                                     implementation=lambda data: {"pdf": "out.pdf"},
                                     inputs=["document_uri"], outputs=["pdf"]))
    definition.add_task(WorkflowTask("set_consortium_rights", "Set consortium rights",
                                     implementation=lambda data: {"rights": "consortium"},
                                     inputs=["document_uri"]))
    definition.add_task(WorkflowTask("submit_to_eu", "Submit to EU", automatic=False,
                                     inputs=["pdf"]))
    definition.add_task(WorkflowTask("eu_decision", "Record EU decision", automatic=False,
                                     outputs=["decision"]))
    definition.add_task(WorkflowTask("post_on_site", "Post on web site",
                                     implementation=lambda data: {"published": True},
                                     inputs=["pdf"]))
    definition.add_task(WorkflowTask("set_public_rights", "Set public rights",
                                     implementation=lambda data: {"rights": "public"},
                                     inputs=["document_uri"]))

    definition.add_edge("START", "elaboration")
    definition.add_edge("elaboration", "set_team_rights")
    definition.add_edge("elaboration", "notify_reviewers")
    definition.add_edge("set_team_rights", "collect_reviews")
    definition.add_edge("notify_reviewers", "collect_reviews")
    definition.add_edge("collect_reviews", "elaboration",
                        condition=lambda data: data.get("decision") == "rework")
    definition.add_edge("collect_reviews", "generate_pdf",
                        condition=lambda data: data.get("decision") != "rework")
    definition.add_edge("generate_pdf", "set_consortium_rights")
    definition.add_edge("set_consortium_rights", "submit_to_eu")
    definition.add_edge("submit_to_eu", "eu_decision")
    definition.add_edge("eu_decision", "post_on_site",
                        condition=lambda data: data.get("decision") == "accepted")
    definition.add_edge("post_on_site", "set_public_rights")
    definition.add_edge("set_public_rights", "END")
    return definition


def test_gelee_definition_is_smaller_than_workflow_equivalent():
    lifecycle = eu_deliverable_lifecycle()
    workflow = build_equivalent_workflow()
    lifecycle_elements = lifecycle.element_count()
    workflow_elements = workflow.element_count()
    assert lifecycle_elements < workflow_elements
    ratio = workflow_elements / lifecycle_elements
    assert ratio > 1.5  # the gap should be substantial, not marginal

    xml_length = len(lifecycle_to_xml(lifecycle).splitlines())
    report("E10 — model simplicity (Fig. 1 process)", [
        "Gelee model elements (phases+transitions+action calls): {}".format(
            lifecycle_elements),
        "Workflow baseline elements (tasks+edges+data+guards)  : {}".format(
            workflow_elements),
        "factor                                                : {:.1f}x".format(ratio),
        "Gelee XML definition length                           : {} lines (~1 page)".format(
            xml_length),
        "concept count (phase, transition, action, parameter, deadline, annotation): 6",
        "winner: Gelee (smaller definition, no data-flow or guard concepts needed)",
    ])
    assert xml_length < 160  # "described in about a page" (pretty-printed XML)


def test_workflow_equivalent_actually_runs():
    """Sanity check: the baseline definition is executable, not a strawman."""
    engine = WorkflowEngine()
    engine.deploy(build_equivalent_workflow())
    case = engine.start("wf-eu-deliverable", data={"reviewers": ["bob"]})
    engine.complete_task(case.instance_id, "elaboration",
                         outputs={"document_uri": "urn:doc:1"})
    engine.complete_task(case.instance_id, "collect_reviews",
                         outputs={"decision": "ok", "review_comments": 2})
    engine.complete_task(case.instance_id, "submit_to_eu")
    engine.complete_task(case.instance_id, "eu_decision", outputs={"decision": "accepted"})
    assert case.finished
    assert case.data["published"] is True


def test_bench_build_gelee_model(benchmark):
    model = benchmark(eu_deliverable_lifecycle)
    assert len(model) == 6


def test_bench_build_workflow_equivalent(benchmark):
    definition = benchmark(build_equivalent_workflow)
    assert len(definition.tasks) == 10


def test_bench_serialize_gelee_model(benchmark):
    model = eu_deliverable_lifecycle()
    xml = benchmark(lifecycle_to_xml, model)
    assert xml
