"""E2 (Table I) — the XML lifecycle definition: generation, parsing, round-trip."""

from repro.serialization import lifecycle_from_xml, lifecycle_to_xml
from repro.templates import eu_deliverable_lifecycle

from .conftest import report


def test_table1_document_structure():
    """The generated document uses exactly the element names of Table I."""
    xml = lifecycle_to_xml(eu_deliverable_lifecycle())
    for element in ("<process", "<name>", "<version_info>", "<version_number>",
                    "<created_by>", "<creation_date>", "<resource>", "<resource_type>",
                    "<phases_list>", "<phase id=", "<action_call>", "<action>",
                    "<parameters>", "<param id=", "<transition_list>", "<transition>",
                    "<from>", "<to>"):
        assert element in xml, "missing Table I element {}".format(element)
    assert "lpAdmin" in xml and "08/07/2008" in xml
    report("E2 / Table I — generated lifecycle XML (first lines)",
           xml.splitlines()[:14])


def test_table1_round_trip_is_lossless_and_stable():
    model = eu_deliverable_lifecycle()
    once = lifecycle_to_xml(model)
    restored = lifecycle_from_xml(once)
    assert restored.phase_ids == model.phase_ids
    assert lifecycle_to_xml(restored) == lifecycle_to_xml(lifecycle_from_xml(
        lifecycle_to_xml(restored)))


def test_bench_lifecycle_to_xml(benchmark):
    model = eu_deliverable_lifecycle()
    xml = benchmark(lifecycle_to_xml, model)
    assert "<process" in xml


def test_bench_lifecycle_from_xml(benchmark):
    xml = lifecycle_to_xml(eu_deliverable_lifecycle())
    model = benchmark(lifecycle_from_xml, xml)
    assert len(model) == 6


def test_bench_xml_round_trip(benchmark):
    model = eu_deliverable_lifecycle()

    def round_trip():
        return lifecycle_from_xml(lifecycle_to_xml(model))

    restored = benchmark(round_trip)
    assert restored.name == model.name
