"""E7 (§II case study) — the LiquidPub-style portfolio of 35 deliverables.

Simulates the paper's motivating project (35 deliverables, heterogeneous
resource types, realistic deviations) and produces the project-manager
monitoring report: status at a glance, delays, deviations.
"""

import pytest

from repro.monitoring import MonitoringCockpit, collect_alerts
from repro.scenarios import generate_project, run_portfolio

from .conftest import report


def test_portfolio_of_35_deliverables_matches_case_study_shape():
    run = run_portfolio(deliverable_count=35, seed=7, deviation_rate=0.3,
                        completion_rate=0.6)
    cockpit = MonitoringCockpit(run.manager)
    summary = cockpit.portfolio_summary()
    assert summary.total == 35
    # the project is mid-flight: some done, some active, some late, some deviating
    assert summary.completed > 0
    assert summary.active > 0
    assert summary.late > 0
    assert summary.with_deviations > 0
    types = {instance.resource.resource_type for instance in run.manager.instances()}
    assert len(types) >= 3  # heterogeneous managing applications

    rows = [
        "deliverables          : {}".format(summary.total),
        "completed / active    : {} / {}".format(summary.completed, summary.active),
        "late (deadline passed): {}".format(summary.late),
        "deviating from plan   : {}".format(summary.with_deviations),
        "resource types in use : {}".format(", ".join(sorted(types))),
        "alerts raised         : {}".format(len(collect_alerts(run.manager))),
    ]
    rows.append("per-phase distribution:")
    for phase, count in sorted(summary.by_phase.items()):
        rows.append("    {:<20s} {}".format(phase, count))
    report("E7 / §II — EU project portfolio monitoring", rows)


def test_portfolio_is_reproducible():
    first = run_portfolio(deliverable_count=12, seed=21)
    second = run_portfolio(deliverable_count=12, seed=21)
    first_summary = MonitoringCockpit(first.manager).portfolio_summary().to_dict()
    second_summary = MonitoringCockpit(second.manager).portfolio_summary().to_dict()
    assert first_summary == second_summary


def test_bench_generate_project(benchmark):
    project = benchmark(generate_project, 35, 7)
    assert len(project.deliverables) == 35


def test_bench_run_portfolio_35(benchmark):
    def run():
        return run_portfolio(deliverable_count=35, seed=7)

    result = benchmark(run)
    assert len(result.manager.instances()) == 35


@pytest.mark.parametrize("size", [10, 35, 80])
def test_bench_monitoring_report_by_portfolio_size(benchmark, size):
    run = run_portfolio(deliverable_count=size, seed=7)
    cockpit = MonitoringCockpit(run.manager)

    def build_report():
        return cockpit.status_table(), cockpit.portfolio_summary()

    table, summary = benchmark(build_report)
    assert summary.total == size


def test_bench_alert_scan_over_portfolio(benchmark):
    run = run_portfolio(deliverable_count=35, seed=7)

    def scan():
        return collect_alerts(run.manager)

    alerts = benchmark(scan)
    assert isinstance(alerts, list)
