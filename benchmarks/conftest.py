"""Shared fixtures and reporting helpers for the benchmark harness.

Each module ``test_bench_*.py`` regenerates one experiment of EXPERIMENTS.md
(E1–E11).  Benchmarks use pytest-benchmark for the timed parts and print the
qualitative rows (who wins, by what factor) so the harness output can be
compared against the paper's claims directly.
"""

import random

import pytest

from repro.clock import SimulatedClock
from repro.plugins import build_standard_environment
from repro.runtime import LifecycleManager
from repro.templates import eu_deliverable_lifecycle


def report(title, rows):
    """Print a small experiment report table (shows up in the bench output)."""
    print()
    print("=" * 72)
    print(title)
    print("-" * 72)
    for row in rows:
        print("  " + row)
    print("=" * 72)


@pytest.fixture
def clock():
    return SimulatedClock()


@pytest.fixture
def environment(clock):
    return build_standard_environment(clock=clock)


@pytest.fixture
def manager(environment, clock):
    return LifecycleManager(environment, clock=clock, rng=random.Random(0))


@pytest.fixture
def eu_model(manager):
    model = eu_deliverable_lifecycle()
    manager.publish_model(model, actor="coordinator")
    return model


def make_deliverable(manager, environment, model, resource_type="Google Doc",
                     owner="alice", title="D1.1", reviewers=("bob", "carol")):
    """Create a resource of the given type and attach a configured instance."""
    adapter = environment.adapter(resource_type)
    descriptor = adapter.create_resource(title, owner=owner, content="content " * 100)
    parameters = {
        call.call_id: {"reviewers": list(reviewers)}
        for _, call in model.action_calls()
        if "notify" in call.action_uri or "sfr" in call.action_uri
    }
    return manager.instantiate(model.uri, descriptor, owner=owner,
                               instantiation_parameters=parameters)


def drive_full_lifecycle(manager, instance, actor="alice"):
    """Drive a Fig. 1 instance from start to the terminal phase."""
    manager.start(instance.instance_id, actor=actor)
    for phase in ("internalreview", "finalassembly", "eureview", "publication", "closed"):
        manager.advance(instance.instance_id, actor=actor, to_phase_id=phase)
    return instance
