"""Shared fixtures and reporting helpers for the benchmark harness.

Each module ``test_bench_*.py`` regenerates one experiment of EXPERIMENTS.md
(E1–E11).  Benchmarks use pytest-benchmark for the timed parts and print the
qualitative rows (who wins, by what factor) so the harness output can be
compared against the paper's claims directly.

Every test collected from this package carries the ``bench`` marker; the
root ``conftest.py`` skips those unless ``--run-bench`` is passed, so the
tier-1 test run collects the whole tree without paying the benchmark cost.

:func:`report` prints the human-readable table and — when given a ``slug``
and ``data`` — also appends a machine-readable record to
``BENCH_<slug>.json`` at the repository root, so successive PRs can track
the performance trajectory without parsing stdout.
"""

import json
import os
import random

import pytest

from repro.benchrunner import bench_run_stamp
from repro.clock import SimulatedClock
from repro.plugins import build_standard_environment
from repro.runtime import LifecycleManager
from repro.templates import eu_deliverable_lifecycle

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
_REPO_ROOT = os.path.dirname(_BENCH_DIR)


def pytest_collection_modifyitems(items):
    """Mark everything collected from the benchmarks package as ``bench``."""
    for item in items:
        if str(item.fspath).startswith(_BENCH_DIR):
            item.add_marker(pytest.mark.bench)


def report(title, rows, slug=None, data=None):
    """Print a small experiment report table (shows up in the bench output).

    Args:
        title: headline of the experiment.
        rows: human-readable result lines.
        slug: when given, the results are also appended as JSON to
            ``BENCH_<slug>.json`` at the repository root.
        data: JSON-compatible dict with the machine-readable measurements;
            defaults to just the printed rows.
    """
    print()
    print("=" * 72)
    print(title)
    print("-" * 72)
    for row in rows:
        print("  " + row)
    print("=" * 72)
    if slug is not None:
        write_bench_json(slug, {"title": title, "rows": list(rows),
                                **(data or {})})


def write_bench_json(slug, record):
    """Append ``record`` to ``BENCH_<slug>.json`` (a list of run records).

    Every record is stamped with the attribution metadata of
    :func:`repro.benchrunner.bench_run_stamp` (git commit, schema version,
    ``BENCH_*`` parameter overrides), so the cross-PR trajectory stays
    attributable and smoke-sized CI runs are distinguishable from real ones.
    """
    record = dict(record)
    record.setdefault("meta", bench_run_stamp())
    path = os.path.join(_REPO_ROOT, "BENCH_{}.json".format(slug))
    records = []
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as handle:
                records = json.load(handle)
        except (OSError, ValueError):
            records = []
        if not isinstance(records, list):
            records = [records]
    records.append(record)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(records, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@pytest.fixture
def clock():
    return SimulatedClock()


@pytest.fixture
def environment(clock):
    return build_standard_environment(clock=clock)


@pytest.fixture
def manager(environment, clock):
    return LifecycleManager(environment, clock=clock, rng=random.Random(0))


@pytest.fixture
def eu_model(manager):
    model = eu_deliverable_lifecycle()
    manager.publish_model(model, actor="coordinator")
    return model


def make_deliverable(manager, environment, model, resource_type="Google Doc",
                     owner="alice", title="D1.1", reviewers=("bob", "carol")):
    """Create a resource of the given type and attach a configured instance."""
    adapter = environment.adapter(resource_type)
    descriptor = adapter.create_resource(title, owner=owner, content="content " * 100)
    parameters = {
        call.call_id: {"reviewers": list(reviewers)}
        for _, call in model.action_calls()
        if "notify" in call.action_uri or "sfr" in call.action_uri
    }
    return manager.instantiate(model.uri, descriptor, owner=owner,
                               instantiation_parameters=parameters)


def drive_full_lifecycle(manager, instance, actor="alice"):
    """Drive a Fig. 1 instance from start to the terminal phase."""
    manager.start(instance.instance_id, actor=actor)
    for phase in ("internalreview", "finalassembly", "eureview", "publication", "closed"):
        manager.advance(instance.instance_id, actor=actor, to_phase_id=phase)
    return instance
