"""E18 — telemetry overhead: the instrumented hot path must stay cheap.

PR 8 threads a metrics registry through dispatch (wait/execution
histograms, completion counter), the gateway and the trace scope.  The
instruments take a lock per update, so the question is whether the hot
path got measurably slower.  The harness runs the same zero-latency
``batchAdvance`` workload twice per trial — once against a live
:class:`~repro.telemetry.MetricsRegistry` and once against a disabled
(no-op) one — interleaved so thermal/alloc drift hits both modes equally,
and compares the best throughput of each mode.  The overhead must stay
under ``BENCH_TELEMETRY_MAX_OVERHEAD_PCT`` (default 3%).

Zero action latency is the adversarial setting: with no simulated
web-service sleep, the per-op cost is pure CPU and the instrument updates
are at their *largest* relative share.  Any real deployment amortises
them further.

Results are printed and appended to ``BENCH_telemetry.json``.  Workload
size scales down via ``BENCH_TELEMETRY_INSTANCES`` for CI smoke runs
(which also loosen the threshold — tiny workloads are noise-dominated).
"""

import os
import time

from repro.actions import library
from repro.clock import SimulatedClock
from repro.model import LifecycleBuilder
from repro.service import GeleeService
from repro.service.v2.dto import AdvanceItem
from repro.telemetry import MetricsRegistry, get_registry, set_registry

from .conftest import report

INSTANCES = int(os.environ.get("BENCH_TELEMETRY_INSTANCES", 4000))
TRIALS = int(os.environ.get("BENCH_TELEMETRY_TRIALS", 5))
MAX_OVERHEAD_PCT = float(os.environ.get("BENCH_TELEMETRY_MAX_OVERHEAD_PCT", 3.0))
SHARDS = 8


def _bench_model():
    builder = LifecycleBuilder("Telemetry bench lifecycle")
    builder.phase("Work")
    builder.phase("Review")
    builder.terminal("End")
    builder.flow("Work", "Review", "End")
    builder.action("Review", library.CHANGE_ACCESS_RIGHTS, "Change access rights",
                   visibility="team")
    return builder.build()


def _run_trial(enabled):
    """One batchAdvance run against a fresh registry; returns ops/s.

    The registry swap happens *before* the service is built: components
    bind their instruments at construction, so build order is the
    isolation boundary between the live and the no-op mode.
    """
    previous = set_registry(MetricsRegistry(enabled=enabled))
    try:
        service = GeleeService(shard_count=SHARDS, clock=SimulatedClock())
        try:
            model = _bench_model()
            service.manager.publish_model(model, actor="coordinator")
            for shard in service.manager.shards:
                shard._dispatcher._latency = (0.0, 0.0)  # noqa: SLF001 - bench knob
            adapter = service.environment.adapter("Google Doc")
            requests = [
                {"model_uri": model.uri,
                 "resource": adapter.create_resource("doc {}".format(index),
                                                     owner="alice"),
                 "owner": "alice"}
                for index in range(INSTANCES)
            ]
            ids = [instance.instance_id
                   for instance in service.manager.batch_instantiate(requests)]
            service.manager.map_instances(
                ids, lambda shard, iid: shard.start_async(iid, actor="alice"))
            service.manager.drain_in_flight(timeout=60.0)
            items = [AdvanceItem(instance_id=iid, to_phase_id="review")
                     for iid in ids]
            started = time.perf_counter()
            result = service.batch_advance_instances(items, actor="alice")
            elapsed = time.perf_counter() - started
            assert all(item.ok for item in result.results)
            if enabled:
                # The run must actually have hit the instruments.
                completed = get_registry().get("gelee_dispatch_completed_total")
                assert completed is not None and completed.value(
                    outcome="completed") >= INSTANCES
            return INSTANCES / elapsed
        finally:
            service.close()
    finally:
        set_registry(previous)


def test_bench_telemetry_overhead():
    """Live instruments must cost < MAX_OVERHEAD_PCT vs a no-op registry."""
    enabled_ops = []
    disabled_ops = []
    for _ in range(TRIALS):
        # Interleaved A/B: drift in either direction cancels out.
        disabled_ops.append(_run_trial(enabled=False))
        enabled_ops.append(_run_trial(enabled=True))
    best_enabled = max(enabled_ops)
    best_disabled = max(disabled_ops)
    overhead_pct = (1.0 - best_enabled / best_disabled) * 100.0

    report(
        "E18 - telemetry: instrumented dispatch overhead "
        "({} instances x {} trials)".format(INSTANCES, TRIALS),
        [
            "registry disabled : {:8.0f} ops/s (best of {})".format(
                best_disabled, TRIALS),
            "registry enabled  : {:8.0f} ops/s (best of {})".format(
                best_enabled, TRIALS),
            "overhead          : {:+.2f}% (budget {:.1f}%)".format(
                overhead_pct, MAX_OVERHEAD_PCT),
        ],
        slug="telemetry",
        data={
            "instances": INSTANCES,
            "trials": TRIALS,
            "shards": SHARDS,
            "ops_per_s_disabled": best_disabled,
            "ops_per_s_enabled": best_enabled,
            "overhead_pct": overhead_pct,
            "max_overhead_pct": MAX_OVERHEAD_PCT,
        },
    )
    assert overhead_pct <= MAX_OVERHEAD_PCT, (
        "telemetry instrumentation costs {:.2f}% (> {:.1f}% budget)".format(
            overhead_pct, MAX_OVERHEAD_PCT))
