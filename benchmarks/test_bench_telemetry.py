"""E18 — telemetry overhead: the instrumented hot path must stay cheap.

PR 8 threads a metrics registry through dispatch (wait/execution
histograms, completion counter, the gateway, the trace scope); PR 9 adds
span recording on the same path (shard hops, dispatch, journal).  Both
instruments take a lock per update, so the question is whether the hot
path got measurably slower.  The harness runs the same zero-latency
``batchAdvance`` workload three times per trial — instruments fully
disabled, metrics registry live, registry *plus* span recording —
interleaved so thermal/alloc drift hits all modes equally, and compares
the best throughput of each mode against the disabled baseline.  Each
overhead must stay under ``BENCH_TELEMETRY_MAX_OVERHEAD_PCT`` (default
3%).

Zero action latency is the adversarial setting: with no simulated
web-service sleep, the per-op cost is pure CPU and the instrument updates
are at their *largest* relative share.  Any real deployment amortises
them further.  Every mode runs under an active ``trace_scope`` so the
span-enabled mode actually records (spans no-op without a trace id) and
the baselines pay the identical ambient-id cost — the A/B isolates the
recording itself.

PR 10 layers the flight recorder on top: history rings capturing every
registry series on a cadence, and the log ring every emitter fans out
into.  A fourth mode runs the same workload with registry + spans live
*plus* an aggressive history-capture loop (250ms cadence — 60-240x
hotter than the real maintenance job) feeding the process log
ring, and is held to two extra budgets: the history/logring layer may
add at most ``BENCH_TELEMETRY_MAX_HISTORY_EXTRA_PCT`` (default 1%) over
the spans mode, and the whole telemetry stack at most
``BENCH_TELEMETRY_MAX_TOTAL_PCT`` (default 4%) over the disabled
baseline.

Results are printed and appended to ``BENCH_telemetry.json``.  Workload
size scales down via ``BENCH_TELEMETRY_INSTANCES`` for CI smoke runs
(which also loosen the threshold — tiny workloads are noise-dominated).
"""

import os
import threading
import time

from repro.actions import library
from repro.clock import SimulatedClock
from repro.model import LifecycleBuilder
from repro.service import GeleeService
from repro.service.v2.dto import AdvanceItem
from repro.telemetry import (
    JsonLogEmitter,
    LogRing,
    MetricHistory,
    MetricsRegistry,
    SpanStore,
    get_log_ring,
    get_registry,
    get_span_store,
    new_trace_id,
    set_log_ring,
    set_registry,
    set_span_store,
    trace_scope,
)

from .conftest import report

INSTANCES = int(os.environ.get("BENCH_TELEMETRY_INSTANCES", 4000))
TRIALS = int(os.environ.get("BENCH_TELEMETRY_TRIALS", 5))
MAX_OVERHEAD_PCT = float(os.environ.get("BENCH_TELEMETRY_MAX_OVERHEAD_PCT", 3.0))
MAX_HISTORY_EXTRA_PCT = float(
    os.environ.get("BENCH_TELEMETRY_MAX_HISTORY_EXTRA_PCT", 1.0))
MAX_TOTAL_PCT = float(os.environ.get("BENCH_TELEMETRY_MAX_TOTAL_PCT", 4.0))
SHARDS = 8


def _bench_model():
    builder = LifecycleBuilder("Telemetry bench lifecycle")
    builder.phase("Work")
    builder.phase("Review")
    builder.terminal("End")
    builder.flow("Work", "Review", "End")
    builder.action("Review", library.CHANGE_ACCESS_RIGHTS, "Change access rights",
                   visibility="team")
    return builder.build()


def _run_trial(registry_enabled, spans_enabled, recorder_enabled=False):
    """One batchAdvance run against fresh instruments; returns ops/s.

    The registry/store swaps happen *before* the service is built:
    components bind their instruments at construction, so build order is
    the isolation boundary between the live and the no-op modes.  The
    span store's per-trace cap is lifted — the whole batch shares one
    bench trace, and a capped store would stop paying recording cost
    mid-run and flatter the result.

    ``recorder_enabled`` additionally runs the PR 10 flight recorder
    during the timed window: a history-capture loop at a 250ms cadence
    (still 60-240x hotter than any real ``history_interval_seconds``)
    walking every live series, each iteration also pushing a log record through an
    emitter into a fresh process log ring.
    """
    previous_registry = set_registry(MetricsRegistry(enabled=registry_enabled))
    previous_store = set_span_store(SpanStore(enabled=spans_enabled,
                                              max_spans_per_trace=10 ** 9))
    previous_ring = set_log_ring(LogRing()) if recorder_enabled else None
    try:
        service = GeleeService(shard_count=SHARDS, clock=SimulatedClock())
        try:
            model = _bench_model()
            service.manager.publish_model(model, actor="coordinator")
            for shard in service.manager.shards:
                shard._dispatcher._latency = (0.0, 0.0)  # noqa: SLF001 - bench knob
            adapter = service.environment.adapter("Google Doc")
            requests = [
                {"model_uri": model.uri,
                 "resource": adapter.create_resource("doc {}".format(index),
                                                     owner="alice"),
                 "owner": "alice"}
                for index in range(INSTANCES)
            ]
            ids = [instance.instance_id
                   for instance in service.manager.batch_instantiate(requests)]
            service.manager.map_instances(
                ids, lambda shard, iid: shard.start_async(iid, actor="alice"))
            service.manager.drain_in_flight(timeout=60.0)
            items = [AdvanceItem(instance_id=iid, to_phase_id="review")
                     for iid in ids]
            history = stop_capture = capture_thread = None
            if recorder_enabled:
                history = MetricHistory(get_registry())
                log = JsonLogEmitter("bench", sink=get_log_ring())
                stop_capture = threading.Event()

                def _capture_loop():
                    while not stop_capture.wait(0.25):
                        history.capture()
                        log.info("history.captured")

                capture_thread = threading.Thread(target=_capture_loop,
                                                  daemon=True)
            with trace_scope(new_trace_id("bench")):
                started = time.perf_counter()
                if capture_thread is not None:
                    capture_thread.start()
                result = service.batch_advance_instances(items, actor="alice")
                if history is not None:
                    # At least one capture always lands inside the window,
                    # whatever the workload size.
                    history.capture()
                    stop_capture.set()
                    capture_thread.join()
                elapsed = time.perf_counter() - started
            assert all(item.ok for item in result.results)
            if recorder_enabled:
                assert history.stats()["captures"] >= 1
                assert history.stats()["series"] > 0
            if registry_enabled:
                # The run must actually have hit the instruments.
                completed = get_registry().get("gelee_dispatch_completed_total")
                assert completed is not None and completed.value(
                    outcome="completed") >= INSTANCES
            if spans_enabled:
                assert get_span_store().stats()["spans_recorded"] >= INSTANCES
            return INSTANCES / elapsed
        finally:
            service.close()
    finally:
        set_registry(previous_registry)
        set_span_store(previous_store)
        if previous_ring is not None:
            set_log_ring(previous_ring)


def test_bench_telemetry_overhead():
    """Live instruments must cost < MAX_OVERHEAD_PCT vs a no-op baseline."""
    modes = [
        ("baseline", dict(registry_enabled=False, spans_enabled=False)),
        ("registry", dict(registry_enabled=True, spans_enabled=False)),
        ("spans", dict(registry_enabled=True, spans_enabled=True)),
        ("full", dict(registry_enabled=True, spans_enabled=True,
                      recorder_enabled=True)),
    ]
    ops = {name: [] for name, _ in modes}
    for trial in range(TRIALS):
        # Interleaved with a rotating start: every mode visits every
        # position in the trial, so monotone drift (thermal, a noisy
        # neighbour ramping up) cannot systematically tax the mode that
        # would otherwise always run last.
        for offset in range(len(modes)):
            name, kwargs = modes[(trial + offset) % len(modes)]
            ops[name].append(_run_trial(**kwargs))
    best_baseline = max(ops["baseline"])
    best_registry = max(ops["registry"])
    best_spans = max(ops["spans"])
    best_full = max(ops["full"])

    def paired_ratios(mode, reference):
        """Per-trial throughput ratios of ``mode`` against ``reference``.

        The four runs of one trial sit seconds apart, so pairing each
        mode with its own trial's reference cancels machine drift that a
        cross-trial best-of cannot.
        """
        return sorted(mode_ops / ref_ops for mode_ops, ref_ops
                      in zip(ops[mode], ops[reference]))

    def overhead_pct(mode, reference="baseline"):
        """The *quietest* paired overhead — the gated figure.

        Interference from a noisy neighbour only ever slows a run down,
        so the pairing with the highest ratio is the best available
        estimate of the noise-free cost (the same reasoning behind
        best-of-N throughput; essential on a single-core box where the
        noise floor dwarfs a few percent).
        """
        return (1.0 - paired_ratios(mode, reference)[-1]) * 100.0

    def median_overhead_pct(mode, reference="baseline"):
        """Median paired overhead — recorded for transparency, not gated."""
        ratios = paired_ratios(mode, reference)
        mid = len(ratios) // 2
        median = (ratios[mid] if len(ratios) % 2
                  else (ratios[mid - 1] + ratios[mid]) / 2.0)
        return (1.0 - median) * 100.0

    registry_overhead_pct = overhead_pct("registry")
    spans_overhead_pct = overhead_pct("spans")
    full_overhead_pct = overhead_pct("full")
    history_extra_pct = overhead_pct("full", reference="spans")

    report(
        "E18 - telemetry: instrumented dispatch overhead "
        "({} instances x {} trials)".format(INSTANCES, TRIALS),
        [
            "all disabled      : {:8.0f} ops/s (best of {})".format(
                best_baseline, TRIALS),
            "registry enabled  : {:8.0f} ops/s ({:+.2f}%)".format(
                best_registry, registry_overhead_pct),
            "registry + spans  : {:8.0f} ops/s ({:+.2f}%)".format(
                best_spans, spans_overhead_pct),
            "+ history/logring : {:8.0f} ops/s ({:+.2f}%, extra {:+.2f}%)".format(
                best_full, full_overhead_pct, history_extra_pct),
            "budget            : {:.1f}% per mode, {:.1f}% history extra, "
            "{:.1f}% total".format(MAX_OVERHEAD_PCT, MAX_HISTORY_EXTRA_PCT,
                                   MAX_TOTAL_PCT),
        ],
        slug="telemetry",
        data={
            "instances": INSTANCES,
            "trials": TRIALS,
            "shards": SHARDS,
            "ops_per_s_disabled": best_baseline,
            "ops_per_s_enabled": best_registry,
            "ops_per_s_spans": best_spans,
            "ops_per_s_full": best_full,
            "overhead_pct": registry_overhead_pct,
            "spans_overhead_pct": spans_overhead_pct,
            "full_overhead_pct": full_overhead_pct,
            "history_extra_pct": history_extra_pct,
            "overhead_median_pct": median_overhead_pct("registry"),
            "spans_overhead_median_pct": median_overhead_pct("spans"),
            "full_overhead_median_pct": median_overhead_pct("full"),
            "history_extra_median_pct": median_overhead_pct(
                "full", reference="spans"),
            "max_overhead_pct": MAX_OVERHEAD_PCT,
            "max_history_extra_pct": MAX_HISTORY_EXTRA_PCT,
            "max_total_pct": MAX_TOTAL_PCT,
        },
    )
    assert registry_overhead_pct <= MAX_OVERHEAD_PCT, (
        "metrics instrumentation costs {:.2f}% (> {:.1f}% budget)".format(
            registry_overhead_pct, MAX_OVERHEAD_PCT))
    assert spans_overhead_pct <= MAX_OVERHEAD_PCT, (
        "span recording costs {:.2f}% (> {:.1f}% budget)".format(
            spans_overhead_pct, MAX_OVERHEAD_PCT))
    assert history_extra_pct <= MAX_HISTORY_EXTRA_PCT, (
        "history/logring layer costs {:.2f}% extra (> {:.1f}% budget)".format(
            history_extra_pct, MAX_HISTORY_EXTRA_PCT))
    assert full_overhead_pct <= MAX_TOTAL_PCT, (
        "full telemetry stack costs {:.2f}% (> {:.1f}% budget)".format(
            full_overhead_pct, MAX_TOTAL_PCT))
