"""E18 — telemetry overhead: the instrumented hot path must stay cheap.

PR 8 threads a metrics registry through dispatch (wait/execution
histograms, completion counter, the gateway, the trace scope); PR 9 adds
span recording on the same path (shard hops, dispatch, journal).  Both
instruments take a lock per update, so the question is whether the hot
path got measurably slower.  The harness runs the same zero-latency
``batchAdvance`` workload three times per trial — instruments fully
disabled, metrics registry live, registry *plus* span recording —
interleaved so thermal/alloc drift hits all modes equally, and compares
the best throughput of each mode against the disabled baseline.  Each
overhead must stay under ``BENCH_TELEMETRY_MAX_OVERHEAD_PCT`` (default
3%).

Zero action latency is the adversarial setting: with no simulated
web-service sleep, the per-op cost is pure CPU and the instrument updates
are at their *largest* relative share.  Any real deployment amortises
them further.  Every mode runs under an active ``trace_scope`` so the
span-enabled mode actually records (spans no-op without a trace id) and
the baselines pay the identical ambient-id cost — the A/B isolates the
recording itself.

Results are printed and appended to ``BENCH_telemetry.json``.  Workload
size scales down via ``BENCH_TELEMETRY_INSTANCES`` for CI smoke runs
(which also loosen the threshold — tiny workloads are noise-dominated).
"""

import os
import time

from repro.actions import library
from repro.clock import SimulatedClock
from repro.model import LifecycleBuilder
from repro.service import GeleeService
from repro.service.v2.dto import AdvanceItem
from repro.telemetry import (
    MetricsRegistry,
    SpanStore,
    get_registry,
    get_span_store,
    new_trace_id,
    set_registry,
    set_span_store,
    trace_scope,
)

from .conftest import report

INSTANCES = int(os.environ.get("BENCH_TELEMETRY_INSTANCES", 4000))
TRIALS = int(os.environ.get("BENCH_TELEMETRY_TRIALS", 5))
MAX_OVERHEAD_PCT = float(os.environ.get("BENCH_TELEMETRY_MAX_OVERHEAD_PCT", 3.0))
SHARDS = 8


def _bench_model():
    builder = LifecycleBuilder("Telemetry bench lifecycle")
    builder.phase("Work")
    builder.phase("Review")
    builder.terminal("End")
    builder.flow("Work", "Review", "End")
    builder.action("Review", library.CHANGE_ACCESS_RIGHTS, "Change access rights",
                   visibility="team")
    return builder.build()


def _run_trial(registry_enabled, spans_enabled):
    """One batchAdvance run against fresh instruments; returns ops/s.

    The registry/store swaps happen *before* the service is built:
    components bind their instruments at construction, so build order is
    the isolation boundary between the live and the no-op modes.  The
    span store's per-trace cap is lifted — the whole batch shares one
    bench trace, and a capped store would stop paying recording cost
    mid-run and flatter the result.
    """
    previous_registry = set_registry(MetricsRegistry(enabled=registry_enabled))
    previous_store = set_span_store(SpanStore(enabled=spans_enabled,
                                              max_spans_per_trace=10 ** 9))
    try:
        service = GeleeService(shard_count=SHARDS, clock=SimulatedClock())
        try:
            model = _bench_model()
            service.manager.publish_model(model, actor="coordinator")
            for shard in service.manager.shards:
                shard._dispatcher._latency = (0.0, 0.0)  # noqa: SLF001 - bench knob
            adapter = service.environment.adapter("Google Doc")
            requests = [
                {"model_uri": model.uri,
                 "resource": adapter.create_resource("doc {}".format(index),
                                                     owner="alice"),
                 "owner": "alice"}
                for index in range(INSTANCES)
            ]
            ids = [instance.instance_id
                   for instance in service.manager.batch_instantiate(requests)]
            service.manager.map_instances(
                ids, lambda shard, iid: shard.start_async(iid, actor="alice"))
            service.manager.drain_in_flight(timeout=60.0)
            items = [AdvanceItem(instance_id=iid, to_phase_id="review")
                     for iid in ids]
            with trace_scope(new_trace_id("bench")):
                started = time.perf_counter()
                result = service.batch_advance_instances(items, actor="alice")
                elapsed = time.perf_counter() - started
            assert all(item.ok for item in result.results)
            if registry_enabled:
                # The run must actually have hit the instruments.
                completed = get_registry().get("gelee_dispatch_completed_total")
                assert completed is not None and completed.value(
                    outcome="completed") >= INSTANCES
            if spans_enabled:
                assert get_span_store().stats()["spans_recorded"] >= INSTANCES
            return INSTANCES / elapsed
        finally:
            service.close()
    finally:
        set_registry(previous_registry)
        set_span_store(previous_store)


def test_bench_telemetry_overhead():
    """Live instruments must cost < MAX_OVERHEAD_PCT vs a no-op baseline."""
    baseline_ops = []
    registry_ops = []
    spans_ops = []
    for _ in range(TRIALS):
        # Interleaved A/B/C: drift in any direction cancels out.
        baseline_ops.append(_run_trial(registry_enabled=False,
                                       spans_enabled=False))
        registry_ops.append(_run_trial(registry_enabled=True,
                                       spans_enabled=False))
        spans_ops.append(_run_trial(registry_enabled=True,
                                    spans_enabled=True))
    best_baseline = max(baseline_ops)
    best_registry = max(registry_ops)
    best_spans = max(spans_ops)
    registry_overhead_pct = (1.0 - best_registry / best_baseline) * 100.0
    spans_overhead_pct = (1.0 - best_spans / best_baseline) * 100.0

    report(
        "E18 - telemetry: instrumented dispatch overhead "
        "({} instances x {} trials)".format(INSTANCES, TRIALS),
        [
            "all disabled      : {:8.0f} ops/s (best of {})".format(
                best_baseline, TRIALS),
            "registry enabled  : {:8.0f} ops/s ({:+.2f}%)".format(
                best_registry, registry_overhead_pct),
            "registry + spans  : {:8.0f} ops/s ({:+.2f}%)".format(
                best_spans, spans_overhead_pct),
            "budget            : {:.1f}% per mode".format(MAX_OVERHEAD_PCT),
        ],
        slug="telemetry",
        data={
            "instances": INSTANCES,
            "trials": TRIALS,
            "shards": SHARDS,
            "ops_per_s_disabled": best_baseline,
            "ops_per_s_enabled": best_registry,
            "ops_per_s_spans": best_spans,
            "overhead_pct": registry_overhead_pct,
            "spans_overhead_pct": spans_overhead_pct,
            "max_overhead_pct": MAX_OVERHEAD_PCT,
        },
    )
    assert registry_overhead_pct <= MAX_OVERHEAD_PCT, (
        "metrics instrumentation costs {:.2f}% (> {:.1f}% budget)".format(
            registry_overhead_pct, MAX_OVERHEAD_PCT))
    assert spans_overhead_pct <= MAX_OVERHEAD_PCT, (
        "span recording costs {:.2f}% (> {:.1f}% budget)".format(
            spans_overhead_pct, MAX_OVERHEAD_PCT))
