"""E9 (§IV.C claim) — universality through action-type late binding.

One Gelee lifecycle definition applies to every resource type whose adapter
implements the referenced action types; a PROSYT-style system needs one
lifecycle definition per artifact type.  The experiment counts definitions
and measures resolution overhead.
"""

import random

from repro.baselines import ArtifactType, ArtifactTypeSystem
from repro.clock import SimulatedClock
from repro.plugins import build_standard_environment
from repro.runtime import LifecycleManager
from repro.templates import document_review_lifecycle

from .conftest import report

DOCUMENT_TYPES = ["Google Doc", "MediaWiki page", "Zoho document", "SVN file"]


def _stack():
    clock = SimulatedClock()
    environment = build_standard_environment(clock=clock)
    manager = LifecycleManager(environment, clock=clock, rng=random.Random(0))
    model = document_review_lifecycle()
    manager.publish_model(model, actor="maria")
    return environment, manager, model


def test_one_definition_covers_k_resource_types():
    environment, manager, model = _stack()
    applicable = manager.applicable_resource_types(model.uri)
    assert set(DOCUMENT_TYPES) <= set(applicable)

    # run the same definition on each type
    reviewer_params = {
        call.call_id: {"reviewers": ["r1", "r2"]}
        for _, call in model.action_calls() if "sfr" in call.action_uri
    }
    for resource_type in DOCUMENT_TYPES:
        descriptor = environment.adapter(resource_type).create_resource(
            "Artifact on " + resource_type, owner="maria")
        instance = manager.instantiate(model.uri, descriptor, owner="maria",
                                       instantiation_parameters=reviewer_params)
        manager.start(instance.instance_id, actor="maria")
        manager.advance(instance.instance_id, actor="maria", to_phase_id="under-review")
        assert not instance.failed_invocations(), instance.failed_invocations()[0].error

    # the PROSYT-style baseline needs one coupled definition per type
    system = ArtifactTypeSystem()
    for resource_type in DOCUMENT_TYPES:
        system.define_type(ArtifactType(resource_type + " review", resource_type,
                                        document_review_lifecycle().copy(new_uri=True)))
    gelee_definitions = 1
    baseline_definitions = system.definitions_needed(DOCUMENT_TYPES)
    assert baseline_definitions == len(DOCUMENT_TYPES)
    assert gelee_definitions < baseline_definitions

    report("E9 — universality: one model, {} resource types".format(len(DOCUMENT_TYPES)), [
        "Gelee lifecycle definitions needed   : 1",
        "PROSYT-style definitions needed      : {}".format(baseline_definitions),
        "Gelee definition elements            : {}".format(model.element_count()),
        "PROSYT-style total definition elements: {}".format(
            system.total_definition_elements()),
        "reduction factor                     : {:.1f}x".format(
            system.total_definition_elements() / model.element_count()),
        "winner: Gelee (same model reused across heterogeneous applications)",
    ])


def test_bench_action_resolution_per_type(benchmark):
    environment, manager, model = _stack()
    resolver = manager.resolver
    calls = [call for _, call in model.action_calls()]
    types_cycle = DOCUMENT_TYPES * 10

    def resolve_everywhere():
        resolved = 0
        for resource_type in types_cycle:
            for call in calls:
                if not resolver.can_resolve(call, resource_type):
                    continue
                # only the review actions declare a "reviewers" parameter
                needs_reviewers = "sfr" in call.action_uri or "notify" in call.action_uri
                parameters = {"reviewers": ["r"]} if needs_reviewers else {}
                resolver.resolve(call, resource_type, instantiation_parameters=parameters)
                resolved += 1
        return resolved

    resolved = benchmark(resolve_everywhere)
    assert resolved > 0


def test_bench_applicability_computation(benchmark):
    environment, manager, model = _stack()

    def applicable():
        return manager.applicable_resource_types(model.uri)

    result = benchmark(applicable)
    assert "Google Doc" in result


def test_bench_instantiation_on_four_types(benchmark):
    environment, manager, model = _stack()

    def instantiate_everywhere():
        instances = []
        for resource_type in DOCUMENT_TYPES:
            descriptor = environment.adapter(resource_type).create_resource(
                "bench", owner="maria")
            instances.append(manager.instantiate(model.uri, descriptor, owner="maria"))
        return instances

    instances = benchmark(instantiate_everywhere)
    assert len(instances) == 4
