"""E15 — temporal automation: timer fire throughput and drift under load.

The acceptance scenario of the scheduler subsystem: a 10k-instance
deployment where every active phase carries a deadline, escalated entirely
by the scheduler — no cockpit polling.  Four measurements:

* **arming throughput** — creating + starting 10k instances on the sharded
  runtime while the scheduler arms one deadline timer per instance off the
  event stream (the overhead the subsystem adds to the hot path);
* **fire throughput** — all 10k deadlines expire, one tick escalates every
  instance along its timeout transition (timer pop + policy + token move);
* **drift under load** — 10k staggered timers fired by coarse periodic
  ticks: mean/max lateness relative to each timer's due instant, i.e. what
  tick granularity costs;
* **pure timer-service rate** — schedule/fire cycles of the bare
  ``TimerService`` heap without any lifecycle work attached.

Results are printed and appended to ``BENCH_scheduler.json``.  Size via
``BENCH_SCHEDULER_INSTANCES`` (default 10000) so CI can smoke-run a tiny
configuration.
"""

import os
import time

from repro.clock import SimulatedClock
from repro.events import BatchingEventBus
from repro.model import LifecycleBuilder
from repro.plugins import build_standard_environment
from repro.runtime import ShardedLifecycleManager
from repro.scheduler import LifecycleScheduler, TimerService
from repro.storage import ExecutionLog

from .conftest import report

INSTANCES = int(os.environ.get("BENCH_SCHEDULER_INSTANCES", "10000"))
SHARDS = 16
DEADLINE_DAYS = 2.0


def _deadline_model():
    builder = LifecycleBuilder("Scheduler bench lifecycle")
    builder.phase("Work")
    builder.phase("Review")
    builder.terminal("End")
    builder.flow("Work", "Review", "End")
    builder.timeout_flow("Work", "Review", days=DEADLINE_DAYS)
    return builder.build()


def _build_runtime():
    clock = SimulatedClock()
    environment = build_standard_environment(clock=clock)
    bus = BatchingEventBus(max_batch=256, clock=clock)
    log = ExecutionLog(bus=bus, max_entries=200_000)
    manager = ShardedLifecycleManager(environment, shard_count=SHARDS,
                                      clock=clock, bus=bus, rng_seed=0)
    scheduler = LifecycleScheduler(manager, bus=bus)
    return clock, environment, bus, log, manager, scheduler


def test_scheduler_throughput_and_drift():
    clock, environment, bus, log, manager, scheduler = _build_runtime()
    model = _deadline_model()
    manager.publish_model(model, actor="coordinator")
    adapter = environment.adapter("Google Doc")

    # --- arming: 10k instances started, one deadline timer armed each ------
    requests = [
        {"model_uri": model.uri,
         "resource": adapter.create_resource("doc {}".format(index), owner="alice"),
         "owner": "alice"}
        for index in range(INSTANCES)
    ]
    started = time.perf_counter()
    ids = [instance.instance_id for instance in manager.batch_instantiate(requests)]
    manager.map_instances(ids, lambda shard, iid: shard.start(iid, actor="alice"))
    bus.flush()
    arm_elapsed = time.perf_counter() - started
    armed = scheduler.timers.pending_count
    assert armed == INSTANCES

    # --- fire: every deadline expires, one tick escalates everything -------
    clock.advance(days=DEADLINE_DAYS, hours=1)
    started = time.perf_counter()
    firings = scheduler.tick()
    bus.flush()
    fire_elapsed = time.perf_counter() - started
    assert len(firings) == INSTANCES
    assert all(firing.handled for firing in firings)
    escalated = sum(1 for iid in ids
                    if manager.instance(iid).current_phase_id == "review")
    assert escalated == INSTANCES
    assert scheduler.status()["escalations"] == INSTANCES

    # --- drift: staggered timers fired by coarse periodic ticks ------------
    drift_timers = TimerService(clock=clock)
    for index in range(INSTANCES):
        drift_timers.schedule("drift:{}".format(index),
                              delay_seconds=float(index % 3600))
    tick_period = 60.0
    fired_total = 0
    started = time.perf_counter()
    for _ in range(int(3600 / tick_period) + 1):
        clock.advance(seconds=tick_period)
        fired_total += len(drift_timers.fire_due())
    drift_elapsed = time.perf_counter() - started
    assert fired_total == INSTANCES
    drift_stats = drift_timers.stats()

    # --- pure timer-service schedule/fire rate ------------------------------
    raw_timers = TimerService(clock=clock)
    count = INSTANCES
    started = time.perf_counter()
    for index in range(count):
        raw_timers.schedule("raw:{}".format(index), delay_seconds=1.0)
    clock.advance(seconds=2)
    raw_fired = len(raw_timers.fire_due())
    raw_elapsed = time.perf_counter() - started
    assert raw_fired == count

    arm_rate = INSTANCES / arm_elapsed
    fire_rate = INSTANCES / fire_elapsed
    raw_rate = (2 * count) / raw_elapsed
    report(
        "E15 — scheduler: {} instances, {} shards".format(INSTANCES, SHARDS),
        [
            "arming (create+start+timer): {:.2f}s  ({:,.0f} inst/s)".format(
                arm_elapsed, arm_rate),
            "escalation tick (fire+advance): {:.2f}s  ({:,.0f} timers/s)".format(
                fire_elapsed, fire_rate),
            "drift @60s ticks: mean {:.1f}s, max {:.1f}s (sim-time lateness)".format(
                drift_stats["mean_drift_seconds"], drift_stats["max_drift_seconds"]),
            "bare TimerService schedule+fire: {:,.0f} ops/s".format(raw_rate),
        ],
        slug="scheduler",
        data={
            "instances": INSTANCES,
            "shards": SHARDS,
            "arm_seconds": round(arm_elapsed, 3),
            "arm_rate_per_s": round(arm_rate, 1),
            "fire_seconds": round(fire_elapsed, 3),
            "fire_rate_per_s": round(fire_rate, 1),
            "escalated": escalated,
            "tick_period_seconds": tick_period,
            "mean_drift_seconds": drift_stats["mean_drift_seconds"],
            "max_drift_seconds": drift_stats["max_drift_seconds"],
            "raw_timer_ops_per_s": round(raw_rate, 1),
        },
    )
