"""E17 — completion-based dispatch: batch advance throughput and replica lag.

The dispatch refactor (docs/DISPATCH.md) split action execution into
*submit* (under the shard lock, instantaneous) and *complete* (a callback
that re-acquires the lock only to apply the outcome), with the simulated
web-service round-trip sleeping on a worker pool in between.  Two figures
decide whether that bought anything:

* **batch advance throughput** — the same ``batchAdvance`` workload on two
  services that differ only in the completion executor.  Inline dispatch
  serialises every round-trip under its shard's lock (a shard's batch takes
  ``instances_per_shard x latency``); pooled dispatch overlaps all of them
  (the whole batch takes roughly ``instances / pool_size x latency`` plus
  the CPU cost).  At full size the pooled service must win by >= 5x.
* **replica apply lag** — a follower that polls ``sync()`` on a timer sees
  a write half a poll interval late on average; a push follower parked in
  ``wait_for`` is woken by the journal append itself.  The push follower's
  mean lag must beat the poll interval (and the measured polling lag).

Results are printed and appended to ``BENCH_dispatch.json``.  Workload
sizes scale down via ``BENCH_DISPATCH_INSTANCES`` / ``BENCH_DISPATCH_WRITES``
for CI smoke runs; the speedup floor relaxes below 5000 instances where
fixed costs dominate.
"""

import os
import shutil
import tempfile
import time

from repro.clock import SimulatedClock
from repro.model import LifecycleBuilder
from repro.actions import library
from repro.persistence import PersistenceConfig
from repro.replication import ReadReplica, ReplicationPrimary, StreamFollower
from repro.service import GeleeService
from repro.service.v2.dto import AdvanceItem

from .conftest import report

INSTANCES = int(os.environ.get("BENCH_DISPATCH_INSTANCES", 10_000))
WRITES = int(os.environ.get("BENCH_DISPATCH_WRITES", 10))
SHARDS = 16
#: Simulated action round-trip (seconds); the paper's actions are web-service
#: calls, so tens of milliseconds is the realistic regime.
ACTION_LATENCY = (0.02, 0.03)
#: Completion pool size for the pooled run: how many round-trips may sleep
#: concurrently.
COMPLETION_WORKERS = int(os.environ.get("BENCH_DISPATCH_WORKERS", 256))
#: Timer cadence of the pre-push polling follower.
POLL_INTERVAL = 0.2
#: Fixed costs dominate small smoke workloads; only demand the full-size
#: speedup when the workload is big enough to amortise them.
REQUIRED_SPEEDUP = 5.0 if INSTANCES >= 5000 else 1.5


def _bench_model():
    builder = LifecycleBuilder("Dispatch bench lifecycle")
    builder.phase("Work")  # no actions: start stays cheap in both runs
    builder.phase("Review")
    builder.terminal("End")
    builder.flow("Work", "Review", "End")
    builder.action("Review", library.CHANGE_ACCESS_RIGHTS, "Change access rights",
                   visibility="team")
    return builder.build()


def _build_service(completion_workers):
    service = GeleeService(shard_count=SHARDS, clock=SimulatedClock(),
                           completion_workers=completion_workers)
    model = _bench_model()
    service.manager.publish_model(model, actor="coordinator")
    # Reach into the shards to set the simulated latency: the bench varies
    # only the executor, so both services must sleep identically per action.
    for shard in service.manager.shards:
        shard._dispatcher._latency = ACTION_LATENCY  # noqa: SLF001 - bench knob
    return service, model


def _populate_and_start(service, model, count):
    adapter = service.environment.adapter("Google Doc")
    requests = [
        {"model_uri": model.uri,
         "resource": adapter.create_resource("doc {}".format(index),
                                             owner="alice"),
         "owner": "alice"}
        for index in range(count)
    ]
    ids = [instance.instance_id
           for instance in service.manager.batch_instantiate(requests)]
    # Work has no actions, so starting is pure token mechanics.
    service.manager.map_instances(
        ids, lambda shard, iid: shard.start_async(iid, actor="alice"))
    service.manager.drain_in_flight(timeout=60.0)
    return ids


def _run_batch_advance(completion_workers):
    service, model = _build_service(completion_workers)
    try:
        ids = _populate_and_start(service, model, INSTANCES)
        items = [AdvanceItem(instance_id=iid, to_phase_id="review")
                 for iid in ids]
        started = time.perf_counter()
        result = service.batch_advance_instances(items, actor="alice")
        elapsed = time.perf_counter() - started
        assert all(item.ok for item in result.results)
        assert service.manager.in_flight_count() == 0
        mode = service.runtime_stats()["dispatch_mode"]
        return elapsed, INSTANCES / elapsed, mode
    finally:
        service.close()


def test_bench_batch_advance_sync_vs_completion():
    """Pooled completions must beat lock-held inline dispatch >= 5x (full size)."""
    inline_elapsed, inline_ops, inline_mode = _run_batch_advance(0)
    pooled_elapsed, pooled_ops, pooled_mode = _run_batch_advance(COMPLETION_WORKERS)
    assert inline_mode == "inline" and pooled_mode == "pooled"
    speedup = pooled_ops / inline_ops
    rows = [
        "workload: batchAdvance over {} instances, {} shards, "
        "action latency {:.0f}-{:.0f} ms".format(
            INSTANCES, SHARDS, ACTION_LATENCY[0] * 1000, ACTION_LATENCY[1] * 1000),
        "inline dispatch (round-trip under shard lock): {:7.2f}s  {:7.0f} ops/s".format(
            inline_elapsed, inline_ops),
        "pooled dispatch ({} completion workers)      : {:7.2f}s  {:7.0f} ops/s".format(
            COMPLETION_WORKERS, pooled_elapsed, pooled_ops),
        "speedup: {:.2f}x (required: >= {:.1f}x at this size)".format(
            speedup, REQUIRED_SPEEDUP),
    ]
    report(
        "E17 — completion-based dispatch: batchAdvance, inline vs pooled",
        rows,
        slug="dispatch",
        data={
            "experiment": "batch_advance_sync_vs_completion",
            "instances": INSTANCES,
            "shards": SHARDS,
            "action_latency_seconds": list(ACTION_LATENCY),
            "completion_workers": COMPLETION_WORKERS,
            "inline": {"elapsed_s": round(inline_elapsed, 4),
                       "ops_per_s": round(inline_ops, 1)},
            "pooled": {"elapsed_s": round(pooled_elapsed, 4),
                       "ops_per_s": round(pooled_ops, 1)},
            "speedup": round(speedup, 3),
            "required_speedup": REQUIRED_SPEEDUP,
        })
    assert speedup >= REQUIRED_SPEEDUP, (
        "pooled dispatch only {:.2f}x faster than inline "
        "(required {:.1f}x)".format(speedup, REQUIRED_SPEEDUP))


def _measure_lags(service, model, replica, writes, on_write_settle):
    """Mean seconds from a primary write until the replica serves it."""
    adapter = service.environment.adapter("Google Doc")
    lags = []
    for index in range(writes):
        started = time.perf_counter()
        instance = service.manager.instantiate(
            model.uri,
            adapter.create_resource("lag probe {}".format(index), owner="alice"),
            owner="alice")
        deadline = started + 10.0
        while time.perf_counter() < deadline:
            if replica.manager.peek_instance(instance.instance_id) is not None:
                break
            time.sleep(0.001)
        lags.append(time.perf_counter() - started)
        on_write_settle()
    return sum(lags) / len(lags), max(lags)


def test_bench_replica_lag_push_vs_poll():
    """A push follower's mean apply lag must beat the poll interval."""
    import threading

    root = tempfile.mkdtemp(prefix="bench-dispatch-")
    try:
        config = PersistenceConfig(os.path.join(root, "primary"),
                                   backend="file", fsync="never")
        service = GeleeService(shard_count=4, clock=SimulatedClock(),
                               persistence=config)
        primary = ReplicationPrimary(service)
        model = _bench_model()
        service.manager.publish_model(model, actor="coordinator")

        # Poll-driven follower: sync() on a POLL_INTERVAL timer, the
        # pre-push design.
        poll_replica = ReadReplica(primary, shard_count=4,
                                   clock=SimulatedClock())
        poll_replica.sync()
        stop_polling = threading.Event()

        def poll_loop():
            while not stop_polling.is_set():
                poll_replica.sync()
                stop_polling.wait(POLL_INTERVAL)

        poller = threading.Thread(target=poll_loop, daemon=True)
        poller.start()
        # Desynchronise the writes from the poll cadence a little.
        poll_avg, poll_max = _measure_lags(
            service, model, poll_replica, WRITES,
            on_write_settle=lambda: time.sleep(POLL_INTERVAL / 3))
        stop_polling.set()
        poller.join(timeout=5.0)

        # Push follower: parked in wait_for, woken by the journal append.
        push_replica = ReadReplica(primary, shard_count=4,
                                   clock=SimulatedClock())
        push_replica.sync()
        follower = StreamFollower(push_replica, wait_timeout=2.0).start()
        try:
            push_avg, push_max = _measure_lags(
                service, model, push_replica, WRITES,
                on_write_settle=lambda: None)
        finally:
            follower.stop()

        rows = [
            "workload: {} primary writes, poll interval {:.0f} ms".format(
                WRITES, POLL_INTERVAL * 1000),
            "poll follower: mean lag {:7.1f} ms  max {:7.1f} ms".format(
                poll_avg * 1000, poll_max * 1000),
            "push follower: mean lag {:7.1f} ms  max {:7.1f} ms".format(
                push_avg * 1000, push_max * 1000),
            "push vs poll interval: {:.1f} ms < {:.0f} ms".format(
                push_avg * 1000, POLL_INTERVAL * 1000),
        ]
        report(
            "E17 — replica apply lag: push (wait_for) vs timer polling",
            rows,
            slug="dispatch",
            data={
                "experiment": "replica_lag_push_vs_poll",
                "writes": WRITES,
                "poll_interval_seconds": POLL_INTERVAL,
                "poll": {"mean_lag_s": round(poll_avg, 5),
                         "max_lag_s": round(poll_max, 5)},
                "push": {"mean_lag_s": round(push_avg, 5),
                         "max_lag_s": round(push_max, 5)},
            })
        assert push_avg < POLL_INTERVAL, (
            "push follower mean lag {:.1f} ms is not below the {:.0f} ms "
            "poll interval".format(push_avg * 1000, POLL_INTERVAL * 1000))
        assert push_avg < poll_avg, (
            "push follower ({:.1f} ms) did not beat the polling follower "
            "({:.1f} ms)".format(push_avg * 1000, poll_avg * 1000))
        service.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)
