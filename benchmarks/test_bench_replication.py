"""E16 — replication: apply throughput, replica lag and promotion latency.

The replication subsystem (:mod:`repro.replication`) keeps a warm standby
in sync by streaming the write-ahead journal through the recovery reducer.
This experiment quantifies the two figures that decide whether failover is
viable:

* **steady-state apply throughput** — how many journal records per second
  a replica reduces into its runtime (bootstrap-free, pure streaming
  apply).  The replica can only stay warm if this comfortably exceeds the
  primary's record production rate;
* **promotion latency** — kill the primary, promote the standby: the final
  stream drain plus scheduler re-arm plus the writable flip, i.e. the
  write-unavailability window of a failover.

Results are printed and appended to ``BENCH_replication.json``.  The
workload size scales down via ``BENCH_REPLICATION_INSTANCES`` for CI smoke
runs (the stamped parameter set keeps those distinguishable).
"""

import os
import shutil
import tempfile
import time

from repro.clock import SimulatedClock
from repro.model import LifecycleBuilder
from repro.persistence import PersistenceConfig
from repro.replication import JournalShippingSource, ReadReplica, ReplicationPrimary
from repro.service import GeleeService

from .conftest import report

INSTANCES = int(os.environ.get("BENCH_REPLICATION_INSTANCES", 10_000))
SHARDS = 16


def _bench_model():
    builder = LifecycleBuilder("Replication bench lifecycle")
    builder.phase("Work", deadline_days=5.0)  # deadline => timer records too
    builder.phase("Review")
    builder.terminal("End")
    builder.flow("Work", "Review", "End")
    return builder.build()


def _drive_wave(service, model, count, offset=0):
    """Create + start ``count`` instances, advance half: ~3.5 records each."""
    adapter = service.environment.adapter("Google Doc")
    requests = [
        {"model_uri": model.uri,
         "resource": adapter.create_resource("doc {}".format(offset + index),
                                             owner="alice"),
         "owner": "alice"}
        for index in range(count)
    ]
    ids = [instance.instance_id
           for instance in service.manager.batch_instantiate(requests)]
    service.manager.map_instances(
        ids, lambda shard, iid: shard.start(iid, actor="alice"))
    service.manager.map_instances(
        ids[: count // 2],
        lambda shard, iid: shard.advance(iid, actor="alice",
                                         to_phase_id="review"))
    return ids


def test_bench_replication_apply_and_promotion():
    root = tempfile.mkdtemp(prefix="bench-replication-")
    rows = []
    data = {"experiment": "replication", "instances": INSTANCES,
            "shards": SHARDS, "apply": {}, "incremental": {}, "promotion": {}}
    try:
        clock = SimulatedClock()
        config = PersistenceConfig(os.path.join(root, "primary"),
                                   backend="file", fsync="never")
        primary = GeleeService(shard_count=SHARDS, clock=clock,
                               persistence=config)
        ReplicationPrimary(primary)
        model = _bench_model()
        primary.manager.publish_model(model, actor="coordinator")
        _drive_wave(primary, model, INSTANCES)
        head = primary.persistence.journal.last_seq

        # -- steady-state apply: a fresh replica streams the whole journal --
        replica = ReadReplica(JournalShippingSource(config),
                              shard_count=SHARDS, clock=clock)
        started = time.perf_counter()
        sync = replica.sync()
        apply_elapsed = time.perf_counter() - started
        apply_rate = sync["applied"] / apply_elapsed
        rows.append("stream apply     : {:8d} records in {:6.2f}s  {:8.0f} rec/s".format(
            sync["applied"], apply_elapsed, apply_rate))
        data["apply"] = {"records": sync["applied"],
                         "elapsed_s": round(apply_elapsed, 4),
                         "records_per_s": round(apply_rate, 1),
                         "journal_head": head}
        assert sync["lag_records"] == 0
        assert replica.service.manager.instance_count() == INSTANCES

        # -- incremental catch-up: a second wave lands, the replica follows --
        wave = max(INSTANCES // 10, 10)
        _drive_wave(primary, model, wave, offset=INSTANCES)
        started = time.perf_counter()
        sync2 = replica.sync()
        inc_elapsed = time.perf_counter() - started
        inc_rate = sync2["applied"] / inc_elapsed
        rows.append("incremental sync : {:8d} records in {:6.2f}s  {:8.0f} rec/s".format(
            sync2["applied"], inc_elapsed, inc_rate))
        data["incremental"] = {"records": sync2["applied"],
                               "elapsed_s": round(inc_elapsed, 4),
                               "records_per_s": round(inc_rate, 1)}

        # -- failover: kill the primary, promote the standby ----------------
        tail = max(wave // 2, 5)
        tail_ids = _drive_wave(primary, model, tail, offset=INSTANCES * 2)
        journal_head = primary.persistence.journal.last_seq
        del primary  # the kill: no close, no checkpoint — journal files only
        started = time.perf_counter()
        promotion = replica.promote()
        promote_ms = (time.perf_counter() - started) * 1000
        rows.append("promotion        : {:8.1f} ms ({} records drained, {} timers)".format(
            promote_ms, promotion["records_drained"],
            promotion["pending_timers"]))
        data["promotion"] = {"duration_ms": round(promote_ms, 2),
                             "records_drained": promotion["records_drained"],
                             "journal_seq": promotion["journal_seq"],
                             "pending_timers": promotion["pending_timers"]}
        assert promotion["journal_seq"] == journal_head
        promoted = replica.service
        assert promoted.manager.instance_count() == INSTANCES + wave + tail
        promoted.manager.advance(tail_ids[-1], actor="alice",
                                 to_phase_id="review")

        report("E16 — replication: apply throughput and promotion latency",
               rows, slug="replication", data=data)
        # A standby is only warm if it applies far faster than one record
        # per millisecond, and failover must complete in seconds.
        assert apply_rate > 1_000
        assert promote_ms < 30_000
    finally:
        shutil.rmtree(root, ignore_errors=True)
