"""E1 (Fig. 1) — the EU Project deliverable lifecycle, executed end to end.

Regenerates the paper's Fig. 1: the five-phase deliverable quality plan with
its actions, executed on a simulated Google Doc and on a simulated MediaWiki
page, and prints the phase/action trace the figure describes.
"""

import random

from repro.clock import SimulatedClock
from repro.plugins import build_standard_environment
from repro.runtime import LifecycleManager
from repro.templates import eu_deliverable_lifecycle
from repro.templates.eu_deliverable import EU_DELIVERABLE_PHASES

from .conftest import drive_full_lifecycle, make_deliverable, report


def _fresh_stack():
    clock = SimulatedClock()
    environment = build_standard_environment(clock=clock)
    manager = LifecycleManager(environment, clock=clock, rng=random.Random(0))
    model = eu_deliverable_lifecycle()
    manager.publish_model(model, actor="coordinator")
    return environment, manager, model


def test_fig1_phase_and_action_trace():
    """Functional reproduction: the trace matches the figure on two resource types."""
    rows = []
    for resource_type in ("Google Doc", "MediaWiki page"):
        environment, manager, model = _fresh_stack()
        instance = make_deliverable(manager, environment, model, resource_type=resource_type)
        drive_full_lifecycle(manager, instance)
        assert [visit.phase_id for visit in instance.visits] == EU_DELIVERABLE_PHASES
        assert instance.is_completed
        assert not instance.failed_invocations()
        assert environment.website.is_published(instance.resource.uri)
        rows.append("{:<16s} phases: {}".format(resource_type,
                                                " -> ".join(v.phase_name for v in instance.visits)))
        for visit in instance.visits:
            for invocation in visit.invocations:
                rows.append("{:<16s}   {:<16s} + {} [{}]".format(
                    "", visit.phase_name, invocation.action_name, invocation.status.value))
    report("E1 / Fig.1 — EU deliverable lifecycle trace", rows)


def test_fig1_action_placement_matches_figure():
    """The actions attached to each phase are exactly the ones drawn in Fig. 1."""
    model = eu_deliverable_lifecycle()
    placement = {phase.phase_id: sorted(call.name for call in phase.actions)
                 for phase in model.phases}
    assert placement == {
        "elaboration": [],
        "internalreview": ["Change access rights", "Notify reviewers"],
        "finalassembly": ["Change access rights", "Generate PDF"],
        "eureview": ["Change access rights", "Notify reviewers"],
        "publication": ["Change access rights", "Post on web site"],
        "closed": [],
    }


def test_bench_full_deliverable_run_googledoc(benchmark):
    """Time a complete Fig. 1 execution (6 phase entries, 8 action invocations)."""

    def run():
        environment, manager, model = _fresh_stack()
        instance = make_deliverable(manager, environment, model)
        drive_full_lifecycle(manager, instance)
        return instance

    instance = benchmark(run)
    assert instance.is_completed


def test_bench_full_deliverable_run_mediawiki(benchmark):
    """Same execution against the MediaWiki adapter (action implementations differ)."""

    def run():
        environment, manager, model = _fresh_stack()
        instance = make_deliverable(manager, environment, model,
                                    resource_type="MediaWiki page")
        drive_full_lifecycle(manager, instance)
        return instance

    instance = benchmark(run)
    assert instance.is_completed


def test_bench_single_phase_entry_with_actions(benchmark):
    """Time one progression event that triggers two actions (Internal Review)."""
    environment, manager, model = _fresh_stack()

    def setup():
        instance = make_deliverable(manager, environment, model)
        manager.start(instance.instance_id, actor="alice")
        return (instance,), {}

    def enter_review(instance):
        manager.advance(instance.instance_id, actor="alice", to_phase_id="internalreview")
        return instance

    result = benchmark.pedantic(enter_review, setup=setup, rounds=30)
    assert result.current_phase_id == "internalreview"
