"""Benchmark harness package.

Making ``benchmarks`` a package lets the ``test_bench_*`` modules import the
shared fixtures with ``from .conftest import ...`` regardless of how pytest
was invoked (``python -m pytest``, ``pytest benchmarks/...``), instead of
failing collection with "attempted relative import with no known parent
package".
"""
