"""E17 — coordination: lease throughput and detection-to-promotion latency.

The coordination subsystem (:mod:`repro.coordination`) adds two costs the
deployment pays continuously and one latency it pays per failure:

* **lease ops/s** — renewals are the heartbeat of leadership and
  ``latest_token`` reads are the fencing check on the write path; both run
  against the shared lease store (in-memory and SQLite CAS), so their
  throughput bounds how aggressively a deployment can heartbeat and how
  cheap per-write fencing is with ``fence_revalidate_seconds=0``;
* **detection → promotion latency** — kill the primary under a *real*
  clock with a tiny lease TTL: how long from the health monitor's verdict
  until the :class:`~repro.coordination.FailoverSupervisor` has won the
  lease and the standby serves writes.  The floor is the remaining lease
  TTL (nobody may usurp a lease that might still renew).

Results are printed and appended to ``BENCH_coordination.json``.  Scale
down via ``BENCH_COORDINATION_OPS`` / ``BENCH_COORDINATION_INSTANCES`` for
CI smoke runs.
"""

import os
import shutil
import tempfile
import time

from repro.coordination import (
    CoordinationConfig,
    FailoverSupervisor,
    HealthMonitor,
    MemoryLeaseStore,
    SQLiteLeaseStore,
)
from repro.model import LifecycleBuilder
from repro.persistence import PersistenceConfig
from repro.replication import JournalShippingSource, ReadReplica
from repro.service import GeleeService

from .conftest import report

OPS = int(os.environ.get("BENCH_COORDINATION_OPS", 5_000))
INSTANCES = int(os.environ.get("BENCH_COORDINATION_INSTANCES", 200))
#: Deliberately tiny so the wall-clock failover window stays benchable;
#: production TTLs are an order of magnitude larger.
TTL_SECONDS = float(os.environ.get("BENCH_COORDINATION_TTL", 0.4))
SHARDS = 4


def _bench_model():
    builder = LifecycleBuilder("Coordination bench lifecycle")
    builder.phase("Work", deadline_days=5.0)
    builder.phase("Review")
    builder.terminal("End")
    builder.flow("Work", "Review", "End")
    return builder.build()


def _seed(service, model, count):
    adapter = service.environment.adapter("Google Doc")
    requests = [
        {"model_uri": model.uri,
         "resource": adapter.create_resource("doc {}".format(index),
                                             owner="alice"),
         "owner": "alice"}
        for index in range(count)
    ]
    ids = [instance.instance_id
           for instance in service.manager.batch_instantiate(requests)]
    service.manager.map_instances(
        ids, lambda shard, iid: shard.start(iid, actor="alice"))
    return ids


def _lease_throughput(store, label, rows, data):
    lease = store.acquire("bench-primary", "node-a", ttl_seconds=60.0)
    started = time.perf_counter()
    for _ in range(OPS):
        store.renew("bench-primary", "node-a", lease.token, 60.0)
    renew_elapsed = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(OPS):
        store.latest_token("bench-primary")
    read_elapsed = time.perf_counter() - started
    renew_rate = OPS / renew_elapsed
    read_rate = OPS / read_elapsed
    rows.append("{:<7} renews   : {:8d} in {:6.3f}s  {:9.0f} ops/s".format(
        label, OPS, renew_elapsed, renew_rate))
    rows.append("{:<7} fencing  : {:8d} in {:6.3f}s  {:9.0f} reads/s".format(
        label, OPS, read_elapsed, read_rate))
    data["lease_ops"][label] = {
        "ops": OPS,
        "renews_per_s": round(renew_rate, 1),
        "token_reads_per_s": round(read_rate, 1),
    }


def test_bench_coordination_leases_and_failover():
    root = tempfile.mkdtemp(prefix="bench-coordination-")
    rows = []
    data = {"experiment": "coordination", "ops": OPS,
            "instances": INSTANCES, "ttl_seconds": TTL_SECONDS,
            "shards": SHARDS, "lease_ops": {}, "failover": {}}
    try:
        # -- lease store throughput: renew (heartbeat) and token read
        #    (per-write fencing) on both backends ------------------------
        _lease_throughput(MemoryLeaseStore(), "memory", rows, data)
        sqlite_store = SQLiteLeaseStore(os.path.join(root, "leases.sqlite3"))
        _lease_throughput(sqlite_store, "sqlite", rows, data)
        sqlite_store.close()

        # -- failover: kill the primary under a real clock, measure the
        #    detection-to-promotion window ------------------------------
        store = MemoryLeaseStore()
        config = PersistenceConfig(os.path.join(root, "primary"),
                                   backend="file", fsync="never")
        primary = GeleeService(shard_count=SHARDS, persistence=config,
                               coordination=CoordinationConfig(
                                   store=store, node_id="primary-node",
                                   ttl_seconds=TTL_SECONDS,
                                   fence_revalidate_seconds=0))
        model = _bench_model()
        primary.manager.publish_model(model, actor="coordinator")
        _seed(primary, model, INSTANCES)
        journal_head = primary.persistence.journal.last_seq

        replica = ReadReplica(JournalShippingSource(config),
                              shard_count=SHARDS, replica_id="standby-node")
        replica.sync()
        alive = {"up": True}
        monitor = HealthMonitor(lambda: alive["up"], failure_threshold=2,
                                probe_interval_seconds=0.02)
        supervisor = FailoverSupervisor(replica, monitor, store=store,
                                        ttl_seconds=TTL_SECONDS,
                                        fence_revalidate_seconds=0)
        assert supervisor.poll()["state"] == "watching"

        # The kill: heartbeats stop, probes fail; only the lease TTL keeps
        # the throne warm now.
        alive["up"] = False
        killed_at = time.perf_counter()
        deadline = killed_at + 30.0
        failover_report = None
        while time.perf_counter() < deadline:
            poll = supervisor.poll()
            if poll["state"] == "failover":
                failover_report = poll
                break
            time.sleep(0.01)
        assert failover_report is not None, "failover never happened"
        wall_seconds = time.perf_counter() - killed_at
        detection_seconds = failover_report["detection_to_promotion_seconds"]
        assert failover_report["promotion"]["journal_seq"] == journal_head

        rows.append("kill→promoted    : {:8.1f} ms wall "
                    "(ttl {:.2f}s)".format(wall_seconds * 1000, TTL_SECONDS))
        rows.append("detect→promoted  : {:8.1f} ms "
                    "(promotion {:.1f} ms)".format(
                        detection_seconds * 1000,
                        failover_report["promotion_ms"]))
        data["failover"] = {
            "kill_to_promotion_s": round(wall_seconds, 4),
            "detection_to_promotion_seconds": round(detection_seconds, 4),
            "promotion_ms": failover_report["promotion_ms"],
            "fencing_token": failover_report["token"],
            "journal_seq": failover_report["promotion"]["journal_seq"],
        }

        # The promoted node serves writes; the benchmark is honest only if
        # the failover actually completed.
        promoted = replica.service
        assert promoted.read_only is False
        assert promoted.manager.instance_count() == INSTANCES

        report("E17 — coordination: lease throughput and failover latency",
               rows, slug="coordination", data=data)
        # The whole window must stay within a few TTLs — detection, the
        # lease-expiry wait and the promotion drain together.
        assert wall_seconds < max(10.0, TTL_SECONDS * 40)
        promoted.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)
