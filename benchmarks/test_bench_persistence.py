"""E14 — durable runtime: journal overhead, checkpoint and cold recovery.

The sharded runtime now journals every kernel event through
:class:`~repro.persistence.PersistenceCoordinator`.  This experiment
quantifies what durability costs and what recovery buys:

* **journal-append overhead per op** — the same 10k-instance progression
  workload as E12, run bare and with persistence at each fsync policy
  (``never`` / ``interval`` / ``always``), reported as ops/s and the
  per-operation overhead in microseconds;
* **checkpoint latency** — flushing 10k dirty instances into the file and
  SQLite stores plus the atomic manifest publish;
* **cold-recovery time** — rebuilding all 10k instances (snapshot + journal
  tail) into a fresh sharded manager, per backend.

Results are printed and appended to ``BENCH_persistence.json``.
"""

import os
import shutil
import tempfile
import time

from repro.actions import library
from repro.clock import SimulatedClock
from repro.events import BatchingEventBus
from repro.model import LifecycleBuilder
from repro.persistence import PersistenceConfig, PersistenceCoordinator, recover_into
from repro.plugins import build_standard_environment
from repro.runtime import ShardedLifecycleManager
from repro.storage import ExecutionLog

from .conftest import report

INSTANCES = 10_000
SHARDS = 16


def _bench_model():
    builder = LifecycleBuilder("Persistence bench lifecycle")
    builder.phase("Work")
    builder.phase("Review")
    builder.terminal("End")
    builder.flow("Work", "Review", "End")
    builder.action("Work", library.CHANGE_ACCESS_RIGHTS, "Change access rights",
                   visibility="team")
    return builder.build()


def _build_runtime():
    clock = SimulatedClock()
    environment = build_standard_environment(clock=clock)
    bus = BatchingEventBus(max_batch=256)
    log = ExecutionLog(bus=bus)
    manager = ShardedLifecycleManager(environment, shard_count=SHARDS,
                                      clock=clock, bus=bus, rng_seed=0)
    return environment, bus, log, manager


def _run_workload(environment, manager):
    """10k instances created and started, then half advanced: 2.5 ops each."""
    model = _bench_model()
    manager.publish_model(model, actor="coordinator")
    adapter = environment.adapter("Google Doc")
    requests = [
        {"model_uri": model.uri,
         "resource": adapter.create_resource("doc {}".format(index), owner="alice"),
         "owner": "alice"}
        for index in range(INSTANCES)
    ]
    started = time.perf_counter()
    ids = [instance.instance_id for instance in manager.batch_instantiate(requests)]
    manager.map_instances(ids, lambda shard, iid: shard.start(iid, actor="alice"))
    manager.map_instances(ids[: INSTANCES // 2],
                          lambda shard, iid: shard.advance(iid, actor="alice",
                                                           to_phase_id="review"))
    elapsed = time.perf_counter() - started
    ops = INSTANCES * 2 + INSTANCES // 2
    return elapsed, ops / elapsed, model


def test_bench_persistence_overhead_checkpoint_recovery():
    root = tempfile.mkdtemp(prefix="bench-persistence-")
    rows = []
    data = {"experiment": "durable_runtime", "instances": INSTANCES,
            "shards": SHARDS, "journal": {}, "checkpoint": {}, "recovery": {}}
    try:
        # -- baseline: no persistence at all --------------------------------
        environment, bus, log, manager = _build_runtime()
        base_elapsed, base_ops, _ = _run_workload(environment, manager)
        bus.flush()
        rows.append("no persistence   : {:6.2f}s  {:8.0f} ops/s  (baseline)".format(
            base_elapsed, base_ops))
        data["journal"]["none"] = {"elapsed_s": round(base_elapsed, 4),
                                   "ops_per_s": round(base_ops, 1)}

        # -- journal overhead per fsync policy ------------------------------
        for policy in ("never", "interval", "always"):
            environment, bus, log, manager = _build_runtime()
            config = PersistenceConfig(os.path.join(root, "fsync-" + policy),
                                       backend="file", fsync=policy)
            coordinator = PersistenceCoordinator(
                manager, log, config.open_journal(), config.open_snapshots(),
                config.open_store(), bus=bus)
            elapsed, ops, _ = _run_workload(environment, manager)
            bus.flush()
            overhead_us = (elapsed - base_elapsed) / (INSTANCES * 2.5) * 1e6
            rows.append(
                "fsync={:8s}: {:6.2f}s  {:8.0f} ops/s  ({:+5.1f} us/op, {:.2f}x)".format(
                    policy, elapsed, ops, overhead_us, elapsed / base_elapsed))
            data["journal"][policy] = {
                "elapsed_s": round(elapsed, 4), "ops_per_s": round(ops, 1),
                "overhead_us_per_op": round(overhead_us, 2),
                "slowdown": round(elapsed / base_elapsed, 3),
                "journal_records": coordinator.journal.last_seq,
            }
            coordinator.close()

        # -- checkpoint latency + cold recovery per backend -----------------
        for backend in ("file", "sqlite"):
            environment, bus, log, manager = _build_runtime()
            config = PersistenceConfig(os.path.join(root, "backend-" + backend),
                                       backend=backend, fsync="interval")
            coordinator = PersistenceCoordinator(
                manager, log, config.open_journal(), config.open_snapshots(),
                config.open_store(), bus=bus)
            _run_workload(environment, manager)
            bus.flush()
            checkpoint = coordinator.checkpoint()
            rows.append("checkpoint {:6s}: {:7.0f} ms for {} instances".format(
                backend, checkpoint["duration_ms"], checkpoint["instances_flushed"]))
            data["checkpoint"][backend] = {
                "duration_ms": checkpoint["duration_ms"],
                "instances_flushed": checkpoint["instances_flushed"],
            }
            coordinator.close()
            del environment, bus, log, manager

            environment2, bus2, log2, manager2 = _build_runtime()
            started = time.perf_counter()
            recovery = recover_into(manager2, log2, config.open_journal(),
                                    config.open_snapshots(), config.open_store())
            cold_ms = (time.perf_counter() - started) * 1000
            assert manager2.instance_count() == INSTANCES
            assert recovery.warnings == []
            rows.append("recovery   {:6s}: {:7.0f} ms cold ({} instances, {} log entries)".format(
                backend, cold_ms, recovery.instances_restored,
                recovery.log_entries_restored))
            data["recovery"][backend] = {
                "duration_ms": round(cold_ms, 1),
                "instances_restored": recovery.instances_restored,
                "log_entries_restored": recovery.log_entries_restored,
                "records_replayed": recovery.records_replayed,
            }

        report(
            "E14 — durable runtime: journal overhead, checkpoint and cold recovery",
            rows, slug="persistence", data=data)
        # Durability must stay affordable: the buffered policies stay within
        # a small multiple of bare throughput (only fsync=always is allowed
        # to be expensive), and a 10k-instance cold start finishes in seconds.
        assert data["journal"]["never"]["slowdown"] < 2.5
        assert data["journal"]["interval"]["slowdown"] < 3.0
        assert data["recovery"]["sqlite"]["duration_ms"] < 30_000
    finally:
        shutil.rmtree(root, ignore_errors=True)
