"""E8 (§IV.B claim) — light-coupling vs. prescriptive instance migration.

The paper claims that decoupling models from instances reduces instance
migration to per-owner *state migration*: model changes never break running
instances, and owners adopt the new version when (and if) they choose.
The baseline workflow engine migrates every instance immediately and fails on
instances whose current task disappeared from the new version.
"""

import itertools
import random

from repro.baselines import WorkflowDefinition, WorkflowEngine, WorkflowTask
from repro.clock import SimulatedClock
from repro.model import Phase, VersionInfo
from repro.plugins import build_standard_environment
from repro.runtime import LifecycleManager
from repro.templates import eu_deliverable_lifecycle

from .conftest import make_deliverable, report

INSTANCES = 40


def _gelee_stack(instances=INSTANCES):
    clock = SimulatedClock()
    environment = build_standard_environment(clock=clock)
    manager = LifecycleManager(environment, clock=clock, rng=random.Random(0))
    model = eu_deliverable_lifecycle()
    manager.publish_model(model, actor="coordinator")
    created = []
    for index in range(instances):
        instance = make_deliverable(manager, environment, model,
                                    title="D{}".format(index))
        manager.start(instance.instance_id, actor="alice")
        if index % 2:
            manager.advance(instance.instance_id, actor="alice",
                            to_phase_id="internalreview")
        created.append(instance)
    return manager, model, created


def _revision_dropping_internal_review(model):
    """A new version that removes the Internal Review phase entirely."""
    revised = model.new_version(created_by="coordinator")
    revised.remove_phase("internalreview")
    revised.add_transition("elaboration", "finalassembly")
    return revised


def _workflow_stack(instances=INSTANCES):
    engine = WorkflowEngine()
    definition = WorkflowDefinition(name="Deliverable", definition_id="wf-deliverable")
    for task_id in ("elaboration", "internalreview", "finalassembly", "eureview",
                    "publication"):
        definition.add_task(WorkflowTask(task_id, task_id, automatic=False))
    definition.add_edge("START", "elaboration")
    definition.add_edge("elaboration", "internalreview")
    definition.add_edge("internalreview", "finalassembly")
    definition.add_edge("finalassembly", "eureview")
    definition.add_edge("eureview", "publication")
    definition.add_edge("publication", "END")
    engine.deploy(definition)
    for index in range(instances):
        case = engine.start("wf-deliverable")
        if index % 2:
            engine.complete_task(case.instance_id, "elaboration")
    return engine, definition


def test_light_coupling_vs_forced_migration():
    # Gelee: publishing v1.1 affects nobody until owners accept.
    manager, model, instances = _gelee_stack()
    revised = _revision_dropping_internal_review(model)
    proposals = manager.propose_change(revised, actor="coordinator")
    untouched = sum(1 for instance in instances if instance.model_version == "1.0")
    assert untouched == len(instances)

    # Owners whose token sits on the removed phase still migrate successfully:
    # the suggestion falls back to an initial phase and the owner may override.
    accepted = 0
    for proposal in proposals:
        manager.accept_change(proposal.proposal_id, actor="alice")
        accepted += 1
    assert accepted == len(instances)
    assert all(instance.model_version == "1.1" for instance in instances)

    # Baseline: immediate migration fails for every case sitting on the
    # removed task.
    engine, definition = _workflow_stack()
    revised_definition = WorkflowDefinition(name="Deliverable",
                                            definition_id="wf-deliverable", version=2)
    for task_id in ("elaboration", "finalassembly", "eureview", "publication"):
        revised_definition.add_task(WorkflowTask(task_id, task_id, automatic=False))
    revised_definition.add_edge("START", "elaboration")
    revised_definition.add_edge("elaboration", "finalassembly")
    revised_definition.add_edge("finalassembly", "eureview")
    revised_definition.add_edge("eureview", "publication")
    revised_definition.add_edge("publication", "END")
    outcome = engine.change_definition(revised_definition)
    assert outcome["failed"] == INSTANCES // 2
    assert outcome["failed"] > 0

    report("E8 — light-coupling vs. prescriptive migration ({} instances)".format(INSTANCES), [
        "Gelee: instances touched at publish time          : 0 / {}".format(INSTANCES),
        "Gelee: owner-accepted state migrations that failed: 0 / {}".format(INSTANCES),
        "Baseline engine: forced migrations failed         : {} / {}".format(
            outcome["failed"], INSTANCES),
        "winner: Gelee (no broken instances; migration reduced to state choice)",
    ])


def test_bench_gelee_propose_change(benchmark):
    manager, model, instances = _gelee_stack()
    counter = itertools.count(1)

    def propose():
        revised = model.copy()
        # mint a unique version number per published revision
        revised.version = VersionInfo(version_number="2.{}".format(next(counter)),
                                      created_by="coordinator")
        revised.add_phase(Phase(phase_id="extra-{}".format(revised.version.version_number),
                                name="Extra"))
        return manager.propose_change(revised, actor="coordinator")

    proposals = benchmark.pedantic(propose, rounds=25)
    assert len(proposals) >= 1


def test_bench_gelee_accept_state_migration(benchmark):
    manager, model, instances = _gelee_stack()
    revised = _revision_dropping_internal_review(model)
    proposals = manager.propose_change(revised, actor="coordinator")
    queue = iter(proposals)

    def accept():
        proposal = next(queue)
        return manager.accept_change(proposal.proposal_id, actor="alice")

    plan = benchmark.pedantic(accept, rounds=min(20, len(proposals)))
    assert plan.to_version == "1.1"


def test_bench_engine_forced_migration(benchmark):
    def migrate():
        engine, definition = _workflow_stack()
        revised = definition.new_version()
        return engine.change_definition(revised)

    outcome = benchmark(migrate)
    assert outcome["migrated"] == INSTANCES
