"""E5 (Fig. 3) — the lifecycle designer: programmatic design session.

Reproduces what the designer screen supports: creating phases, browsing the
action library (filtered by resource-type applicability), connecting phases,
validating and publishing the result as a template.
"""

from repro.actions import library
from repro.storage import TemplateStore
from repro.widgets import DesignerSession
from repro.widgets.renderer import render_designer_html

from .conftest import report


def _design(environment, manager=None):
    session = DesignerSession("Designed deliverable plan", environment.registry,
                              composer="coordinator")
    session.add_phase("Elaboration")
    session.add_phase("Internal Review", deadline_days=14)
    session.add_phase("Final Assembly")
    session.add_phase("Publication")
    session.add_phase("Closed", terminal=True)
    session.flow("Elaboration", "Internal Review", "Final Assembly", "Publication", "Closed")
    session.connect("Internal Review", "Elaboration", label="rework")
    session.add_action("Internal Review", library.CHANGE_ACCESS_RIGHTS, visibility="team")
    session.add_action("Internal Review", library.NOTIFY_REVIEWERS)
    session.add_action("Final Assembly", library.GENERATE_PDF)
    session.add_action("Publication", library.POST_ON_WEBSITE)
    return session


def test_fig3_designer_session(environment, manager):
    session = _design(environment)
    view = session.view_model()
    assert [phase["name"] for phase in view.phases] == [
        "Elaboration", "Internal Review", "Final Assembly", "Publication", "Closed"]
    assert not view.problems
    assert len(view.available_actions) == len(environment.registry.types())

    # the action browser narrows to what the managed resource supports
    photo_actions = {a["uri"] for a in session.browse_actions("Photo album")}
    assert library.SUBMIT_TO_AGENCY not in photo_actions

    # the selected actions determine applicability (paper §IV.A)
    applicable = session.applicable_resource_types()
    assert "Google Doc" in applicable and "MediaWiki page" in applicable

    model = session.publish(manager)
    store = TemplateStore()
    template_id = session.save_as_template(store, template_id="designed-plan")
    assert store.exists(template_id)
    html = render_designer_html(view)
    assert "Internal Review" in html

    report("E5 / Fig.3 — designer session", [
        "phases designed      : {}".format(len(view.phases)),
        "actions attached     : {}".format(sum(len(p['actions']) for p in view.phases)),
        "action library size  : {}".format(len(view.available_actions)),
        "applicable types     : {}".format(", ".join(applicable)),
        "published model      : {} v{}".format(model.name, model.version.version_number),
    ])


def test_bench_designer_full_session(environment, benchmark):
    def design():
        return _design(environment).build()

    model = benchmark(design)
    assert len(model) == 5


def test_bench_action_browser_all(environment, benchmark):
    session = _design(environment)
    actions = benchmark(session.browse_actions)
    assert actions


def test_bench_action_browser_filtered(environment, benchmark):
    session = _design(environment)

    def browse():
        return session.browse_actions("MediaWiki page")

    actions = benchmark(browse)
    assert actions


def test_bench_designer_view_model(environment, benchmark):
    session = _design(environment)
    view = benchmark(session.view_model)
    assert view.phases
