"""E6 (Fig. 4) — the integrated lifecycle execution widget.

Renders the lifecycle + resource side-by-side view for users in different
roles, asserts the visibility rules the paper describes ("different users
could have different views of the same lifecycle"), and measures rendering
throughput.
"""

import random

import pytest

from repro.accesscontrol import AccessPolicy, Role, UserDirectory
from repro.clock import SimulatedClock
from repro.plugins import build_standard_environment
from repro.runtime import LifecycleManager
from repro.templates import eu_deliverable_lifecycle
from repro.widgets import LifecycleWidget
from repro.widgets.renderer import render_widget_html, render_widget_text

from .conftest import make_deliverable, report


@pytest.fixture
def secured_stack():
    clock = SimulatedClock()
    environment = build_standard_environment(clock=clock)
    directory = UserDirectory()
    directory.register_many("coordinator", "alice", "eve")
    directory.assign("coordinator", Role.LIFECYCLE_MANAGER)
    directory.assign("alice", Role.INSTANCE_OWNER)
    directory.assign("eve", Role.STAKEHOLDER)
    policy = AccessPolicy(directory)
    manager = LifecycleManager(environment, clock=clock, access_policy=policy,
                               rng=random.Random(0))
    model = eu_deliverable_lifecycle()
    manager.publish_model(model, actor="coordinator")
    instance = make_deliverable(manager, environment, model)
    manager.start(instance.instance_id, actor="alice")
    manager.advance(instance.instance_id, actor="alice", to_phase_id="internalreview")
    return manager, policy, instance


def test_fig4_widget_views_per_role(secured_stack):
    manager, policy, instance = secured_stack
    owner_view = LifecycleWidget(manager, instance.instance_id, viewer="alice",
                                 policy=policy).view_model()
    stakeholder_view = LifecycleWidget(manager, instance.instance_id, viewer="eve",
                                       policy=policy).view_model()
    anonymous_view = LifecycleWidget(manager, instance.instance_id, viewer=None,
                                     policy=policy).view_model()

    # lifecycle and resource side by side (both panes populated)
    assert owner_view.current_phase_name == "Internal Review"
    assert owner_view.resource_state["application"] == "Google Docs"

    # visibility rules: controls only for the owner, authentication for unknowns
    assert owner_view.controls_enabled and owner_view.suggested_next
    assert not stakeholder_view.controls_enabled and stakeholder_view.history
    assert anonymous_view.requires_authentication

    owner_html = render_widget_html(owner_view)
    stakeholder_html = render_widget_html(stakeholder_view)
    assert "Move to" in owner_html and "Move to" not in stakeholder_html

    report("E6 / Fig.4 — widget visibility by role", [
        "owner (alice)      : controls={} history={} actions shown={}".format(
            owner_view.controls_enabled, bool(owner_view.history),
            bool(owner_view.phases[1]["actions"])),
        "stakeholder (eve)  : controls={} history={}".format(
            stakeholder_view.controls_enabled, bool(stakeholder_view.history)),
        "anonymous          : requires_authentication={}".format(
            anonymous_view.requires_authentication),
        "html sizes         : owner={}B stakeholder={}B".format(
            len(owner_html), len(stakeholder_html)),
    ])


def test_bench_widget_view_model(secured_stack, benchmark):
    manager, policy, instance = secured_stack
    widget = LifecycleWidget(manager, instance.instance_id, viewer="alice", policy=policy)
    view = benchmark(widget.view_model)
    assert view.current_phase == "internalreview"


def test_bench_widget_html_render(secured_stack, benchmark):
    manager, policy, instance = secured_stack
    view = LifecycleWidget(manager, instance.instance_id, viewer="alice",
                           policy=policy).view_model()
    html = benchmark(render_widget_html, view)
    assert "gelee-widget" in html


def test_bench_widget_text_render(secured_stack, benchmark):
    manager, policy, instance = secured_stack
    view = LifecycleWidget(manager, instance.instance_id, viewer="alice",
                           policy=policy).view_model()
    text = benchmark(render_widget_text, view)
    assert "Internal Review" in text


def test_bench_widget_drives_progression(secured_stack, benchmark):
    manager, policy, instance = secured_stack
    widget = LifecycleWidget(manager, instance.instance_id, viewer="alice", policy=policy)

    def toggle():
        widget.move_to("elaboration", annotation="rework")
        widget.move_to("internalreview")
        return widget.view_model()

    view = benchmark(toggle)
    assert view.current_phase == "internalreview"
