"""Tests for the data tier: repositories, execution log, template and definition stores."""

import pytest

from repro.actions import library
from repro.actions.registry import ActionRegistry
from repro.clock import SimulatedClock
from repro.errors import ConcurrencyError, StorageError, TemplateError
from repro.events import Event, EventBus
from repro.resources import Credentials, ResourceDescriptor
from repro.storage import (
    DefinitionStore,
    ExecutionLog,
    FileRepository,
    InMemoryRepository,
    TemplateStore,
)
from repro.templates import eu_deliverable_lifecycle


class TestInMemoryRepository:
    def test_put_get_delete(self):
        repository = InMemoryRepository("test")
        repository.put("a", {"value": 1})
        assert repository.get("a").document == {"value": 1}
        assert repository.exists("a")
        assert repository.delete("a")
        assert not repository.delete("a")
        assert repository.get("a") is None

    def test_versions_increment(self):
        repository = InMemoryRepository()
        assert repository.put("a", {"v": 1}).version == 1
        assert repository.put("a", {"v": 2}).version == 2

    def test_optimistic_concurrency(self):
        repository = InMemoryRepository()
        record = repository.put("a", {"v": 1})
        repository.put("a", {"v": 2}, expected_version=record.version)
        with pytest.raises(ConcurrencyError):
            repository.put("a", {"v": 3}, expected_version=record.version)

    def test_expected_version_zero_means_create_only(self):
        repository = InMemoryRepository()
        repository.put("a", {"v": 1}, expected_version=0)
        with pytest.raises(ConcurrencyError):
            repository.put("a", {"v": 2}, expected_version=0)

    def test_empty_id_rejected(self):
        with pytest.raises(StorageError):
            InMemoryRepository().put("", {})

    def test_require_raises_for_missing(self):
        with pytest.raises(StorageError):
            InMemoryRepository("users").require("ghost")

    def test_find_and_iteration(self):
        repository = InMemoryRepository()
        repository.put("a", {"kind": "x"})
        repository.put("b", {"kind": "y"})
        repository.put("c", {"kind": "x"})
        assert len(repository.find(lambda doc: doc["kind"] == "x")) == 2
        assert repository.ids() == ["a", "b", "c"]
        assert len(list(repository)) == 3
        assert len(repository) == 3


class TestFileRepository:
    def test_persists_across_instances(self, tmp_path):
        directory = str(tmp_path / "store")
        first = FileRepository(directory)
        first.put("model/1", {"name": "Deliverable"})
        first.put("model/2", {"name": "Release"})
        second = FileRepository(directory)
        assert second.get("model/1").document == {"name": "Deliverable"}
        assert second.count() == 2

    def test_delete_removes_file(self, tmp_path):
        directory = str(tmp_path / "store")
        repository = FileRepository(directory)
        repository.put("a", {"x": 1})
        repository.delete("a")
        assert FileRepository(directory).count() == 0

    def test_versions_survive_reload(self, tmp_path):
        directory = str(tmp_path / "store")
        repository = FileRepository(directory)
        repository.put("a", {"v": 1})
        repository.put("a", {"v": 2})
        assert FileRepository(directory).get("a").version == 2

    def test_unsafe_ids_are_sanitised(self, tmp_path):
        repository = FileRepository(str(tmp_path / "store"))
        repository.put("http://example.org/model?x=1", {"ok": True})
        reloaded = FileRepository(str(tmp_path / "store"))
        assert reloaded.get("http://example.org/model?x=1").document == {"ok": True}


class TestExecutionLog:
    def _clock(self):
        return SimulatedClock()

    def test_records_bus_events(self):
        bus = EventBus()
        log = ExecutionLog(bus=bus)
        clock = self._clock()
        bus.publish(Event("instance.created", clock.now(), "inst-1", actor="alice"))
        bus.publish(Event("instance.phase_entered", clock.now(), "inst-1"))
        assert len(log) == 2
        assert log.history_of("inst-1")[0].kind == "instance.created"

    def test_filters(self):
        log = ExecutionLog()
        clock = self._clock()
        log.record("a.one", clock.now(), "s1", actor="alice")
        clock.advance(days=1)
        middle = clock.now()
        log.record("a.two", clock.now(), "s1", actor="bob")
        clock.advance(days=1)
        log.record("b.one", clock.now(), "s2", actor="alice")
        assert log.count(kind="a.") == 2
        assert log.count(subject_id="s2") == 1
        assert len(log.entries(actor="alice")) == 2
        assert len(log.entries(since=middle)) == 2
        assert len(log.entries(until=middle)) == 2  # inclusive boundaries
        assert log.last(kind="a.").kind == "a.two"
        assert log.subjects() == ["s1", "s2"]

    def test_limit_returns_latest(self):
        log = ExecutionLog()
        clock = self._clock()
        for index in range(5):
            log.record("k", clock.now(), "s")
        assert [entry.sequence for entry in log.entries(limit=2)] == [4, 5]

    def test_capacity_bound(self):
        log = ExecutionLog(capacity=3)
        clock = self._clock()
        for index in range(10):
            log.record("k", clock.now(), "s")
        assert len(log) == 3
        assert log.entries()[0].sequence == 8

    def test_counts_by_kind(self):
        log = ExecutionLog()
        clock = self._clock()
        log.record("a", clock.now(), "s")
        log.record("a", clock.now(), "s")
        log.record("b", clock.now(), "s")
        assert log.counts_by_kind() == {"a": 2, "b": 1}


class TestTemplateStore:
    def test_save_load_instantiate(self):
        store = TemplateStore()
        template_id = store.save(eu_deliverable_lifecycle(), template_id="eu-deliverable")
        assert store.exists(template_id)
        loaded = store.load(template_id)
        assert loaded.name == "EU Project deliverable lifecycle"
        fresh = store.instantiate(template_id, name="D7.7 quality plan")
        assert fresh.uri != loaded.uri
        assert fresh.name == "D7.7 quality plan"
        assert fresh.phase_ids == loaded.phase_ids

    def test_unknown_template_raises(self):
        with pytest.raises(TemplateError):
            TemplateStore().load("nope")

    def test_catalog_and_delete(self):
        store = TemplateStore()
        store.save(eu_deliverable_lifecycle(), template_id="eu")
        catalog = store.catalog()
        assert catalog[0]["template_id"] == "eu"
        assert "MediaWiki page" in catalog[0]["resource_types"]
        assert store.delete("eu")
        assert store.template_ids() == []

    def test_file_backed_template_store(self, tmp_path):
        backing = FileRepository(str(tmp_path / "templates"))
        TemplateStore(backing).save(eu_deliverable_lifecycle(), template_id="eu")
        reloaded = TemplateStore(FileRepository(str(tmp_path / "templates")))
        assert reloaded.load("eu").phase_ids == eu_deliverable_lifecycle().phase_ids


class TestDefinitionStore:
    def test_resource_round_trip(self):
        store = DefinitionStore()
        descriptor = ResourceDescriptor(uri="urn:doc:1", resource_type="Google Doc",
                                        display_name="D1", owner="alice",
                                        credentials=Credentials("alice", "secret"))
        store.save_resource(descriptor)
        loaded = store.resource("urn:doc:1")
        assert loaded.display_name == "D1"
        assert loaded.credentials is None  # secrets not persisted by default
        assert store.resources(resource_type="Google Doc")
        assert store.resources(resource_type="SVN file") == []
        assert store.forget_resource("urn:doc:1")

    def test_resource_with_credentials_persisted_when_asked(self):
        store = DefinitionStore()
        descriptor = ResourceDescriptor(uri="urn:doc:2", resource_type="Google Doc",
                                        credentials=Credentials("alice", "secret"))
        store.save_resource(descriptor, include_credentials=True)
        assert store.resource("urn:doc:2").credentials.secret == "secret"

    def test_action_type_round_trip(self):
        store = DefinitionStore()
        registry = ActionRegistry()
        library.register_standard_library(registry)
        original = registry.type(library.CHANGE_ACCESS_RIGHTS)
        store.save_action_type(original)
        loaded = store.action_type(library.CHANGE_ACCESS_RIGHTS)
        assert loaded.name == original.name
        assert {p.name for p in loaded.parameters} == {p.name for p in original.parameters}
        assert store.counts() == {"resources": 0, "action_types": 1}
        assert len(store.action_types()) == 1


class TestSecondaryIndexes:
    def _repo(self):
        repo = InMemoryRepository("docs")
        repo.create_index("owner", lambda document: document.get("owner"))
        return repo

    def test_find_by_answers_from_the_index(self):
        repo = self._repo()
        repo.put("a", {"owner": "alice"})
        repo.put("b", {"owner": "bob"})
        repo.put("c", {"owner": "alice"})
        assert [r.record_id for r in repo.find_by("owner", "alice")] == ["a", "c"]
        assert repo.find_by("owner", "carol") == []
        assert repo.index_keys("owner") == ["alice", "bob"]

    def test_index_follows_updates_and_deletes(self):
        repo = self._repo()
        repo.put("a", {"owner": "alice"})
        repo.put("a", {"owner": "bob"})  # update moves the record
        assert repo.find_by("owner", "alice") == []
        assert [r.record_id for r in repo.find_by("owner", "bob")] == ["a"]
        repo.delete("a")
        assert repo.find_by("owner", "bob") == []
        assert repo.index_keys("owner") == []

    def test_index_backfills_existing_records_and_multi_keys(self):
        repo = InMemoryRepository("docs")
        repo.put("a", {"tags": ["x", "y"]})
        repo.put("b", {"tags": ["y"]})
        repo.put("c", {})
        repo.create_index("tag", lambda document: document.get("tags"))
        assert [r.record_id for r in repo.find_by("tag", "y")] == ["a", "b"]
        assert [r.record_id for r in repo.find_by("tag", "x")] == ["a"]

    def test_duplicate_or_unknown_index_raises(self):
        repo = self._repo()
        with pytest.raises(StorageError):
            repo.create_index("owner", lambda document: None)
        with pytest.raises(StorageError):
            repo.find_by("nope", "x")

    def test_file_repository_maintains_indexes(self, tmp_path):
        repo = FileRepository(str(tmp_path / "docs"))
        repo.create_index("kind", lambda document: document.get("kind"))
        repo.put("a", {"kind": "report"})
        repo.put("b", {"kind": "memo"})
        assert [r.record_id for r in repo.find_by("kind", "memo")] == ["b"]
        repo.delete("b")
        assert repo.find_by("kind", "memo") == []

    def test_definition_store_filters_by_owner_and_type(self):
        store = DefinitionStore()
        for index in range(4):
            store.save_resource(ResourceDescriptor(
                uri="urn:doc:{}".format(index), resource_type="Google Doc",
                owner="alice" if index % 2 == 0 else "bob"))
        store.save_resource(ResourceDescriptor(
            uri="urn:wiki:1", resource_type="MediaWiki page", owner="alice"))
        assert len(store.resources(resource_type="Google Doc")) == 4
        assert len(store.resources(owner="alice")) == 3
        assert len(store.resources(resource_type="Google Doc", owner="alice")) == 2


class TestExecutionLogSubjectIndex:
    def test_history_is_indexed_and_capacity_evicts(self):
        clock = SimulatedClock()
        log = ExecutionLog(capacity=4)
        for index in range(8):
            log.record("instance.phase_entered", clock.now(),
                       "inst-{}".format(index % 2))
        assert len(log) == 4
        assert log.subjects() == ["inst-0", "inst-1"]
        history = log.history_of("inst-1")
        assert [entry.sequence for entry in history] == [6, 8]
        assert log.count(subject_id="inst-0") == 2


class TestFileRepositoryConsistency:
    """A failed disk write must leave memory and disk agreeing (write-then-commit)."""

    def test_failed_write_leaves_memory_unchanged(self, tmp_path, monkeypatch):
        repository = FileRepository(str(tmp_path))
        repository.put("a", {"value": 1})

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.storage.repository.os.replace", broken_replace)
        with pytest.raises(StorageError):
            repository.put("a", {"value": 2})
        monkeypatch.undo()
        # Memory still holds the last durable state, version included.
        assert repository.get("a").document == {"value": 1}
        assert repository.get("a").version == 1
        # And a reload from disk agrees with memory.
        reloaded = FileRepository(str(tmp_path))
        assert reloaded.get("a").document == {"value": 1}
        assert reloaded.get("a").version == 1

    def test_failed_write_does_not_create_phantom_record(self, tmp_path, monkeypatch):
        repository = FileRepository(str(tmp_path))

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.storage.repository.os.replace", broken_replace)
        with pytest.raises(StorageError):
            repository.put("ghost", {"value": 1})
        monkeypatch.undo()
        assert repository.get("ghost") is None
        assert not repository.exists("ghost")
        assert FileRepository(str(tmp_path)).get("ghost") is None

    def test_failed_write_leaves_indexes_unchanged(self, tmp_path, monkeypatch):
        repository = FileRepository(str(tmp_path))
        repository.create_index("owner", lambda document: document.get("owner"))
        repository.put("a", {"owner": "alice"})

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.storage.repository.os.replace", broken_replace)
        with pytest.raises(StorageError):
            repository.put("a", {"owner": "bob"})
        monkeypatch.undo()
        assert [record.record_id for record in repository.find_by("owner", "alice")] == ["a"]
        assert repository.find_by("owner", "bob") == []

    def test_failed_remove_keeps_record(self, tmp_path, monkeypatch):
        repository = FileRepository(str(tmp_path))
        repository.put("a", {"value": 1})

        def broken_unlink(path):
            raise OSError("permission denied")

        monkeypatch.setattr("repro.storage.repository.os.unlink", broken_unlink)
        with pytest.raises(StorageError):
            repository.delete("a")
        monkeypatch.undo()
        # Neither memory nor disk lost the record.
        assert repository.exists("a")
        assert FileRepository(str(tmp_path)).get("a").document == {"value": 1}


class TestFileRepositoryReloadFidelity:
    """A reopened directory behaves exactly like the repository that wrote it."""

    def test_indexes_rebuilt_after_reload(self, tmp_path):
        repository = FileRepository(str(tmp_path))
        repository.put("a", {"owner": "alice", "status": "active"})
        repository.put("b", {"owner": "bob", "status": "active"})
        repository.put("c", {"owner": "alice", "status": "done"})

        reloaded = FileRepository(str(tmp_path))
        reloaded.create_index("owner", lambda document: document.get("owner"))
        reloaded.create_index("status", lambda document: document.get("status"))
        assert [r.record_id for r in reloaded.find_by("owner", "alice")] == ["a", "c"]
        assert [r.record_id for r in reloaded.find_by("status", "active")] == ["a", "b"]
        assert reloaded.index_keys("owner") == ["alice", "bob"]

    def test_expected_version_conflicts_survive_reopen(self, tmp_path):
        repository = FileRepository(str(tmp_path))
        repository.put("a", {"value": 1})
        repository.put("a", {"value": 2})  # version 2 on disk

        reloaded = FileRepository(str(tmp_path))
        # A writer still holding the stale version must conflict after reload.
        with pytest.raises(ConcurrencyError):
            reloaded.put("a", {"value": 3}, expected_version=1)
        # The version read from disk is the one that wins the CAS.
        record = reloaded.put("a", {"value": 3}, expected_version=2)
        assert record.version == 3

    def test_stray_tmp_files_are_skipped(self, tmp_path):
        repository = FileRepository(str(tmp_path))
        repository.put("a", {"value": 1})
        # Simulate a crashed writer: a half-written temp file in the directory.
        (tmp_path / "tmpabc123.tmp").write_text('{"record_id": "ghost", "docu')
        reloaded = FileRepository(str(tmp_path))
        assert reloaded.ids() == ["a"]
        assert reloaded.get("a").document == {"value": 1}


class TestExecutionLogRetention:
    def test_max_entries_bounds_the_log(self):
        clock = SimulatedClock()
        log = ExecutionLog(max_entries=100)
        for index in range(1000):
            log.record("instance.phase_entered", clock.now(), "inst-{}".format(index % 7))
        assert len(log) <= 100
        assert log.dropped_count == 1000 - len(log)
        assert log.max_entries == 100
        # The retained tail is contiguous and newest-last.
        sequences = [entry.sequence for entry in log.entries()]
        assert sequences == list(range(sequences[0], 1001))

    def test_compaction_preserves_keyset_cursors(self):
        clock = SimulatedClock()
        log = ExecutionLog(max_entries=50)
        for index in range(40):
            log.record("k", clock.now(), "subject")
        # Take a cursor, then overflow the log so compaction drops the page
        # the cursor was carved from.
        page, cursor, _total = log.entries_page(subject_id="subject", limit=10)
        assert [entry.sequence for entry in page] == list(range(1, 11))
        assert cursor == 10
        for index in range(200):
            log.record("k", clock.now(), "subject")
        # The cursor still works: it resumes at the oldest *retained* entry
        # newer than the cursor position instead of failing or duplicating.
        page2, cursor2, total2 = log.entries_page(subject_id="subject",
                                                  after_sequence=cursor, limit=10)
        assert len(page2) == 10
        assert all(entry.sequence > cursor for entry in page2)
        assert page2[0].sequence >= cursor + 1
        assert total2 == len(log)
        # Paging to the end terminates with a None cursor.
        while cursor2 is not None:
            page2, cursor2, _ = log.entries_page(subject_id="subject",
                                                 after_sequence=cursor2, limit=50)
        assert page2[-1].sequence == 240

    def test_subject_index_consistent_after_compaction(self):
        clock = SimulatedClock()
        log = ExecutionLog(max_entries=10)
        for index in range(200):
            log.record("k", clock.now(), "inst-{}".format(index % 3))
        retained = log.entries()
        for subject in log.subjects():
            from_index = log.history_of(subject)
            assert from_index == [e for e in retained if e.subject_id == subject]

    def test_dump_restore_round_trip(self):
        clock = SimulatedClock()
        log = ExecutionLog(max_entries=100)
        for index in range(20):
            log.record("instance.phase_entered", clock.now(), "inst-{}".format(index % 2),
                       actor="alice", payload={"phase_id": "p{}".format(index)})
        state = log.dump_state()
        restored = ExecutionLog()
        restored.restore_state(state)
        assert [e.to_dict() for e in restored.entries()] == [e.to_dict() for e in log.entries()]
        assert restored.subjects() == log.subjects()
        # The sequence counter continues where the original left off.
        entry = restored.record("k", clock.now(), "inst-0")
        assert entry.sequence == 21
