"""Unit tests for phases, transitions, deadlines and annotations."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.errors import ModelError
from repro.model import ActionCall, Annotation, Deadline, Phase, Transition, BEGIN, END


class TestPhase:
    def test_named_slugifies_id(self):
        phase = Phase.named("Internal Review")
        assert phase.phase_id == "internal-review"
        assert phase.name == "Internal Review"

    def test_requires_id(self):
        with pytest.raises(ModelError):
            Phase(phase_id="")

    def test_name_defaults_to_id(self):
        assert Phase(phase_id="draft").name == "draft"

    def test_terminal_phase_rejects_actions_at_construction(self):
        with pytest.raises(ModelError):
            Phase(phase_id="end", terminal=True,
                  actions=[ActionCall("urn:a", "A")])

    def test_terminal_phase_rejects_add_action(self):
        phase = Phase(phase_id="end", terminal=True)
        with pytest.raises(ModelError):
            phase.add_action(ActionCall("urn:a", "A"))

    def test_add_action_and_uris(self):
        phase = Phase(phase_id="review")
        phase.add_action(ActionCall("urn:a", "A"))
        phase.add_action(ActionCall("urn:b", "B"))
        assert phase.action_uris() == ["urn:a", "urn:b"]
        assert not phase.is_empty

    def test_empty_phase(self):
        assert Phase(phase_id="elaboration").is_empty

    def test_copy_is_deep(self):
        phase = Phase(phase_id="review", actions=[ActionCall("urn:a", "A", {"x": 1})],
                      deadline=Deadline(days=5), metadata={"k": "v"})
        duplicate = phase.copy()
        duplicate.actions[0].parameters["x"] = 2
        duplicate.metadata["k"] = "changed"
        assert phase.actions[0].parameters["x"] == 1
        assert phase.metadata["k"] == "v"
        assert duplicate.actions[0].call_id == phase.actions[0].call_id

    def test_dict_round_trip(self):
        phase = Phase(phase_id="review", name="Review", terminal=False,
                      actions=[ActionCall("urn:a", "A", {"p": "v"})],
                      deadline=Deadline(days=7), description="desc")
        restored = Phase.from_dict(phase.to_dict())
        assert restored.phase_id == "review"
        assert restored.actions[0].parameters == {"p": "v"}
        assert restored.deadline.days == 7


class TestTransition:
    def test_initial_and_final_flags(self):
        assert Transition(BEGIN, "draft").is_initial
        assert Transition("draft", END).is_final
        assert not Transition("a", "b").is_initial

    def test_equality(self):
        assert Transition("a", "b") == Transition("a", "b")
        assert Transition("a", "b") != Transition("a", "c")

    def test_dict_round_trip(self):
        transition = Transition("a", "b", label="go")
        restored = Transition.from_dict(transition.to_dict())
        assert restored.source == "a"
        assert restored.target == "b"
        assert restored.label == "go"


class TestDeadline:
    def _now(self):
        return datetime(2009, 3, 1, tzinfo=timezone.utc)

    def test_requires_exactly_one_mode(self):
        with pytest.raises(ModelError):
            Deadline()
        with pytest.raises(ModelError):
            Deadline(days=3, due=self._now())

    def test_relative_days_must_not_be_negative(self):
        with pytest.raises(ModelError):
            Deadline(days=-1)

    def test_days_zero_is_due_immediately_on_entry(self):
        """days=0 is a real deadline — due at the entry instant itself."""
        deadline = Deadline(days=0)
        entered = self._now()
        assert deadline.due_at(entered) == entered
        assert deadline.is_expired(entered, entered)
        assert not deadline.is_overdue(entered, entered)
        assert deadline.is_overdue(entered, entered + timedelta(seconds=1))

    def test_boundary_instant_expires_but_is_not_late(self):
        """At exactly the due instant the deadline expires (a timer fires)
        but the instance is not yet *late* (overdue_by == 0)."""
        deadline = Deadline(days=2)
        entered = self._now()
        boundary = entered + timedelta(days=2)
        assert deadline.is_expired(entered, boundary)
        assert not deadline.is_overdue(entered, boundary)
        assert deadline.overdue_by(entered, boundary) == timedelta(0)
        just_after = boundary + timedelta(microseconds=1)
        assert deadline.is_overdue(entered, just_after)

    def test_absolute_due_in_the_past_at_entry(self):
        """An absolute due date already behind the entry instant is overdue
        from the first moment — the scheduler fires it on the next tick."""
        entered = self._now()
        deadline = Deadline(due=entered - timedelta(days=1))
        assert deadline.is_expired(entered, entered)
        assert deadline.is_overdue(entered, entered)
        assert deadline.overdue_by(entered, entered) == timedelta(days=1)

    def test_escalation_policy_validation(self):
        with pytest.raises(ModelError):
            Deadline(days=1, escalation="panic")
        with pytest.raises(ModelError):
            Deadline(days=1, escalation="advance")  # needs timeout_to
        with pytest.raises(ModelError):
            Deadline(days=1, timeout_to="next")  # timeout_to needs advance
        deadline = Deadline(days=1, escalation="advance", timeout_to="next")
        assert deadline.timeout_to == "next"

    def test_escalation_round_trips_through_dict(self):
        deadline = Deadline(days=1, escalation="advance", timeout_to="next",
                            description="auto")
        restored = Deadline.from_dict(deadline.to_dict())
        assert restored.escalation == "advance"
        assert restored.timeout_to == "next"
        invoker = Deadline(days=0, escalation="invoke", escalate_call_id="c1")
        restored = Deadline.from_dict(invoker.to_dict())
        assert restored.days == 0
        assert restored.escalation == "invoke"
        assert restored.escalate_call_id == "c1"

    def test_relative_due_at(self):
        deadline = Deadline(days=10)
        entered = self._now()
        assert deadline.due_at(entered) == entered + timedelta(days=10)

    def test_absolute_due_at(self):
        due = self._now() + timedelta(days=4)
        assert Deadline(due=due).due_at(self._now()) == due

    def test_overdue_detection(self):
        deadline = Deadline(days=2)
        entered = self._now()
        assert not deadline.is_overdue(entered, entered + timedelta(days=1))
        assert deadline.is_overdue(entered, entered + timedelta(days=3))
        assert deadline.overdue_by(entered, entered + timedelta(days=3)) == timedelta(days=1)

    def test_dict_round_trip(self):
        restored = Deadline.from_dict(Deadline(days=5, description="d").to_dict())
        assert restored.days == 5
        assert restored.is_relative


class TestActionCall:
    def test_with_parameters_creates_copy(self):
        call = ActionCall("urn:a", "A", {"x": 1})
        extended = call.with_parameters(y=2)
        assert extended.parameters == {"x": 1, "y": 2}
        assert call.parameters == {"x": 1}
        assert extended.call_id == call.call_id

    def test_definition_bindings(self):
        call = ActionCall("urn:a", "A", {"x": 1})
        bindings = list(call.definition_bindings())
        assert bindings[0].name == "x"
        assert bindings[0].value == 1

    def test_dict_round_trip_preserves_call_id(self):
        call = ActionCall("urn:a", "A", {"x": 1})
        restored = ActionCall.from_dict(call.to_dict())
        assert restored.call_id == call.call_id
        assert restored.action_uri == "urn:a"


class TestAnnotation:
    def test_dict_round_trip(self):
        annotation = Annotation(text="skipped review", author="alice",
                                created_at=datetime(2009, 4, 1, tzinfo=timezone.utc),
                                phase_id="internalreview", kind="deviation")
        restored = Annotation.from_dict(annotation.to_dict())
        assert restored.text == "skipped review"
        assert restored.kind == "deviation"
        assert restored.phase_id == "internalreview"
        assert restored.annotation_id == annotation.annotation_id
