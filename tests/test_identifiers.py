"""Unit tests for URI/identifier helpers."""

import pytest

from repro.errors import ValidationError
from repro.identifiers import (
    callback_uri,
    is_valid_identifier,
    new_id,
    normalize_uri,
    parse_callback_uri,
    require_identifier,
    slugify,
    uri_host,
)


class TestNewId:
    def test_has_prefix(self):
        assert new_id("inst").startswith("inst-")

    def test_is_unique(self):
        assert new_id() != new_id()

    def test_default_prefix(self):
        assert new_id().startswith("id-")


class TestSlugify:
    def test_lowercases_and_hyphenates(self):
        assert slugify("Internal Review") == "internal-review"

    def test_strips_punctuation(self):
        assert slugify("  EU / Review!  ") == "eu-review"

    def test_empty_text_produces_generated_id(self):
        assert slugify("   ") != ""

    def test_idempotent(self):
        once = slugify("Final Assembly")
        assert slugify(once) == once


class TestIdentifierValidation:
    def test_accepts_simple_ids(self):
        assert is_valid_identifier("phase_1")
        assert is_valid_identifier("http://example.org/a/chr") is True

    def test_rejects_empty_and_spaces(self):
        assert not is_valid_identifier("")
        assert not is_valid_identifier("two words")

    def test_require_identifier_raises(self):
        with pytest.raises(ValidationError):
            require_identifier("bad id", "phase id")

    def test_require_identifier_returns_value(self):
        assert require_identifier("ok-1") == "ok-1"


class TestNormalizeUri:
    def test_lowercases_scheme_and_host(self):
        assert normalize_uri("HTTP://Docs.Example.ORG/Doc1") == "http://docs.example.org/Doc1"

    def test_drops_default_ports(self):
        assert normalize_uri("http://example.org:80/x") == "http://example.org/x"
        assert normalize_uri("https://example.org:443/x") == "https://example.org/x"

    def test_keeps_non_default_port(self):
        assert "8080" in normalize_uri("http://example.org:8080/x")

    def test_empty_path_becomes_root(self):
        assert normalize_uri("http://example.org").endswith("/")

    def test_trailing_slash_removed(self):
        assert normalize_uri("http://example.org/wiki/Page/") == "http://example.org/wiki/Page"

    def test_opaque_uri_passes_through(self):
        assert normalize_uri("urn:deliverable:d1.1") == "urn:deliverable:d1.1"

    def test_fragment_preserved(self):
        assert normalize_uri("http://w.org/page#section").endswith("#section")

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            normalize_uri("   ")

    def test_uri_host(self):
        assert uri_host("https://Docs.Google.com/d/1") == "docs.google.com"
        assert uri_host("urn:x") == ""


class TestCallbackUri:
    def test_round_trip(self):
        uri = callback_uri("urn:gelee:runtime", "inst-1", "review", "call-9")
        assert parse_callback_uri(uri) == ("inst-1", "review", "call-9")

    def test_base_trailing_slash_ignored(self):
        uri = callback_uri("http://host/api/", "i", "p", "c")
        assert "//callbacks" not in uri.replace("http://", "")

    def test_parse_rejects_non_callback(self):
        with pytest.raises(ValidationError):
            parse_callback_uri("http://host/api/other/i/p/c")

    def test_parse_rejects_wrong_arity(self):
        with pytest.raises(ValidationError):
            parse_callback_uri("http://host/callbacks/i/p")
