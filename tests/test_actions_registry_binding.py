"""Tests for the action registry, resolution and late binding."""

import pytest

from repro.actions import ActionRegistry, ActionResolver, ActionType, ActionImplementation
from repro.actions import library
from repro.errors import ActionResolutionError, ParameterBindingError, UnknownActionTypeError
from repro.identifiers import parse_callback_uri
from repro.model import ActionCall
from repro.model.parameters import BindingTime, ParameterDefinition


def _noop(context):
    return {"ok": True}


@pytest.fixture
def registry():
    registry = ActionRegistry()
    library.register_standard_library(registry)
    registry.register_implementation(ActionImplementation(
        library.CHANGE_ACCESS_RIGHTS, "Google Doc", _noop))
    registry.register_implementation(ActionImplementation(
        library.CHANGE_ACCESS_RIGHTS, "MediaWiki page", _noop))
    registry.register_implementation(ActionImplementation(
        library.NOTIFY_REVIEWERS, "Google Doc", _noop))
    return registry


class TestRegistryTypes:
    def test_standard_library_registered(self, registry):
        assert registry.has_type(library.CHANGE_ACCESS_RIGHTS)
        assert registry.type(library.GENERATE_PDF).name == "Generate PDF"
        assert registry.stats()["action_types"] >= 10

    def test_unknown_type_raises(self, registry):
        with pytest.raises(UnknownActionTypeError):
            registry.type("urn:nope")

    def test_reregistering_same_name_is_idempotent(self, registry):
        action_type = registry.type(library.GENERATE_PDF)
        assert registry.register_type(ActionType(uri=action_type.uri, name=action_type.name)) \
            is action_type

    def test_reregistering_different_name_rejected(self, registry):
        with pytest.raises(UnknownActionTypeError):
            registry.register_type(ActionType(uri=library.GENERATE_PDF, name="Other"))

    def test_replace_flag_overrides(self, registry):
        replacement = ActionType(uri=library.GENERATE_PDF, name="Export PDF v2")
        registry.register_type(replacement, replace=True)
        assert registry.type(library.GENERATE_PDF).name == "Export PDF v2"

    def test_types_by_category(self, registry):
        grouped = registry.types_by_category()
        assert "sharing" in grouped
        assert any(t.uri == library.CHANGE_ACCESS_RIGHTS for t in grouped["sharing"])


class TestRegistryImplementations:
    def test_implementation_lookup(self, registry):
        implementation = registry.implementation(library.CHANGE_ACCESS_RIGHTS, "Google Doc")
        assert implementation.resource_type == "Google Doc"

    def test_missing_implementation_raises(self, registry):
        with pytest.raises(ActionResolutionError):
            registry.implementation(library.GENERATE_PDF, "Google Doc")

    def test_implementation_requires_known_type(self, registry):
        with pytest.raises(UnknownActionTypeError):
            registry.register_implementation(
                ActionImplementation("urn:unknown", "Google Doc", _noop))

    def test_duplicate_implementation_rejected(self, registry):
        with pytest.raises(ActionResolutionError):
            registry.register_implementation(ActionImplementation(
                library.CHANGE_ACCESS_RIGHTS, "Google Doc", _noop))

    def test_duplicate_implementation_replace(self, registry):
        registry.register_implementation(ActionImplementation(
            library.CHANGE_ACCESS_RIGHTS, "Google Doc", _noop), replace=True)

    def test_actions_for_resource_type(self, registry):
        names = {t.uri for t in registry.actions_for_resource_type("Google Doc")}
        assert names == {library.CHANGE_ACCESS_RIGHTS, library.NOTIFY_REVIEWERS}

    def test_resource_types_for_action(self, registry):
        assert registry.resource_types_for_action(library.CHANGE_ACCESS_RIGHTS) == \
            ["Google Doc", "MediaWiki page"]

    def test_applicable_resource_types_is_intersection(self, registry):
        applicable = registry.applicable_resource_types(
            [library.CHANGE_ACCESS_RIGHTS, library.NOTIFY_REVIEWERS])
        assert applicable == ["Google Doc"]

    def test_applicable_resource_types_without_actions_lists_all(self, registry):
        assert set(registry.applicable_resource_types([])) == {"Google Doc", "MediaWiki page"}


class TestResolver:
    def test_resolve_merges_binding_stages(self, registry):
        resolver = ActionResolver(registry)
        call = ActionCall(library.CHANGE_ACCESS_RIGHTS, "Change access rights",
                          {"visibility": "team"})
        resolved = resolver.resolve(call, "Google Doc",
                                    instantiation_parameters={"editors": ["alice"]},
                                    call_parameters={"readers": ["bob"]})
        assert resolved.parameters["visibility"] == "team"
        assert resolved.parameters["editors"] == ["alice"]
        assert resolved.parameters["readers"] == ["bob"]
        assert resolved.name == "Change access rights"

    def test_resolve_missing_required_parameter(self, registry):
        resolver = ActionResolver(registry)
        call = ActionCall(library.NOTIFY_REVIEWERS, "Notify reviewers")
        with pytest.raises(ParameterBindingError):
            resolver.resolve(call, "Google Doc")

    def test_can_resolve_and_unresolvable(self, registry):
        resolver = ActionResolver(registry)
        ok = ActionCall(library.CHANGE_ACCESS_RIGHTS, "chr", {"visibility": "team"})
        missing = ActionCall(library.GENERATE_PDF, "pdf")
        assert resolver.can_resolve(ok, "Google Doc")
        assert not resolver.can_resolve(missing, "Google Doc")
        assert resolver.unresolvable_calls([ok, missing], "Google Doc") == [missing]

    def test_resolve_all_non_strict_skips(self, registry):
        resolver = ActionResolver(registry)
        calls = [
            ActionCall(library.CHANGE_ACCESS_RIGHTS, "chr", {"visibility": "team"}),
            ActionCall(library.GENERATE_PDF, "pdf"),
        ]
        resolved = resolver.resolve_all(calls, "Google Doc", strict=False)
        assert len(resolved) == 1

    def test_resolve_all_strict_raises(self, registry):
        resolver = ActionResolver(registry)
        calls = [ActionCall(library.GENERATE_PDF, "pdf")]
        with pytest.raises(ActionResolutionError):
            resolver.resolve_all(calls, "Google Doc", strict=True)

    def test_build_invocation_callback_is_parseable(self, registry):
        resolver = ActionResolver(registry)
        call = ActionCall(library.CHANGE_ACCESS_RIGHTS, "chr", {"visibility": "team"})
        resolved = resolver.resolve(call, "Google Doc")
        invocation = resolver.build_invocation(resolved, "https://doc/1", "Google Doc",
                                               "inst-1", "review")
        assert invocation.parameters["visibility"] == "team"
        assert parse_callback_uri(invocation.callback_uri) == ("inst-1", "review", call.call_id)

    def test_signature_override_adds_required_parameter(self, registry):
        strict_impl = ActionImplementation(
            library.GENERATE_PDF, "Google Doc", _noop,
            signature_overrides=[ParameterDefinition("paper_size", BindingTime.ANY,
                                                     required=True)],
        )
        registry.register_implementation(strict_impl)
        resolver = ActionResolver(registry)
        call = ActionCall(library.GENERATE_PDF, "pdf")
        resolved = resolver.resolve(call, "Google Doc")
        # the action type declares a default, so the override is satisfied
        assert resolved.parameters["paper_size"] == "A4"


class TestStandardLibrary:
    def test_every_type_has_name_and_uri(self):
        for action_type in library.standard_action_types():
            assert action_type.uri.startswith("http://www.liquidpub.org/a/")
            assert action_type.name

    def test_paper_chr_uri_is_preserved(self):
        assert library.CHANGE_ACCESS_RIGHTS == "http://www.liquidpub.org/a/chr"

    def test_register_standard_library_is_idempotent(self):
        registry = ActionRegistry()
        library.register_standard_library(registry)
        library.register_standard_library(registry)
        assert registry.stats()["action_types"] == len(library.standard_action_types())

    def test_notify_reviewers_requires_reviewers(self):
        registry = ActionRegistry()
        library.register_standard_library(registry)
        notify = registry.type(library.NOTIFY_REVIEWERS)
        assert notify.parameter("reviewers").required
