"""Tests for the REST facade (transport-independent router)."""

import pytest

from repro.serialization import lifecycle_to_xml
from repro.service import GeleeService, RestRouter
from repro.templates import eu_deliverable_lifecycle


@pytest.fixture
def service(clock):
    from repro.plugins import build_standard_environment

    return GeleeService(environment=build_standard_environment(clock=clock), clock=clock)


@pytest.fixture
def router(service):
    return RestRouter(service)


@pytest.fixture
def published_model_uri(router):
    response = router.post("/templates/eu-deliverable/publish", actor="coordinator")
    assert response.ok
    return response.body["uri"]


def _create_instance(router, service, model_uri, owner="alice", title="D1.1"):
    descriptor = service.environment.adapter("Google Doc").create_resource(title, owner=owner)
    response = router.post("/instances", actor=owner, body={
        "model_uri": model_uri,
        "resource": descriptor.to_dict(),
        "owner": owner,
    })
    assert response.ok, response.body
    return response.body["instance_id"]


class TestModelEndpoints:
    def test_list_templates(self, router):
        response = router.get("/templates")
        assert response.ok
        assert any(t["template_id"] == "eu-deliverable" for t in response.body)

    def test_publish_template_and_list_models(self, router, published_model_uri):
        models = router.get("/models")
        assert any(m["uri"] == published_model_uri for m in models.body)

    def test_publish_model_from_json(self, router):
        model = eu_deliverable_lifecycle()
        model.uri = "urn:gelee:json-model"
        response = router.post("/models", actor="coordinator", body={"model": model.to_dict()})
        assert response.ok
        assert response.body["uri"] == "urn:gelee:json-model"

    def test_publish_model_from_xml(self, router):
        model = eu_deliverable_lifecycle()
        model.uri = "urn:gelee:xml-model"
        response = router.post("/models", actor="coordinator",
                               body={"xml": lifecycle_to_xml(model)})
        assert response.ok
        detail = router.get("/models/detail", uri="urn:gelee:xml-model", format="xml")
        assert detail.ok
        assert "<process" in detail.body["xml"]

    def test_model_detail_json(self, router, published_model_uri):
        detail = router.get("/models/detail", uri=published_model_uri)
        assert detail.ok
        assert len(detail.body["phases"]) == 6

    def test_model_detail_missing_uri_is_400(self, router):
        assert router.get("/models/detail").status == 400

    def test_unknown_model_is_404(self, router):
        assert router.get("/models/detail", uri="urn:missing").status == 404

    def test_unknown_template_is_404(self, router):
        assert router.post("/templates/nope/publish", actor="pm").status == 404

    def test_resource_types_listing(self, router):
        response = router.get("/resource-types")
        assert "Google Doc" in response.body

    def test_register_resource(self, router, service):
        descriptor = service.environment.adapter("Google Doc").create_resource("Doc",
                                                                               owner="alice")
        response = router.post("/resources", body=descriptor.to_dict())
        assert response.ok
        assert response.body["resource_type"] == "Google Doc"


class TestInstanceEndpoints:
    def test_create_start_advance(self, router, service, published_model_uri):
        instance_id = _create_instance(router, service, published_model_uri)
        start = router.post("/instances/{}/start".format(instance_id), actor="alice")
        assert start.body["current_phase_id"] == "elaboration"
        advance = router.post("/instances/{}/advance".format(instance_id), actor="alice",
                              body={"to_phase_id": "internalreview",
                                    "call_parameters": {}})
        assert advance.ok
        detail = router.get("/instances/{}".format(instance_id))
        assert detail.body["current_phase_id"] == "internalreview"

    def test_create_requires_fields(self, router):
        assert router.post("/instances", actor="alice", body={"owner": "alice"}).status == 400

    def test_actor_required_for_moves(self, router, service, published_model_uri):
        instance_id = _create_instance(router, service, published_model_uri)
        response = router.post("/instances/{}/start".format(instance_id))
        assert response.status == 400

    def test_move_and_annotate(self, router, service, published_model_uri):
        instance_id = _create_instance(router, service, published_model_uri)
        router.post("/instances/{}/start".format(instance_id), actor="alice")
        move = router.post("/instances/{}/move".format(instance_id), actor="alice",
                           body={"phase_id": "publication", "annotation": "fast-tracked"})
        assert move.ok
        assert move.body["deviations"] == 1
        note = router.post("/instances/{}/annotations".format(instance_id), actor="alice",
                           body={"text": "published early", "kind": "note"})
        assert note.ok
        history = router.get("/instances/{}/history".format(instance_id))
        assert any(entry["kind"] == "instance.annotated" for entry in history.body)

    def test_unknown_instance_is_404(self, router):
        assert router.get("/instances/inst-unknown").status == 404
        assert router.post("/instances/inst-unknown/start", actor="a").status == 404

    def test_list_instances_filters_by_owner(self, router, service, published_model_uri):
        _create_instance(router, service, published_model_uri, owner="alice")
        _create_instance(router, service, published_model_uri, owner="bob", title="D2.2")
        mine = router.get("/instances", owner="alice")
        assert len(mine.body) == 1

    def test_invalid_move_is_409(self, router, service, published_model_uri):
        instance_id = _create_instance(router, service, published_model_uri)
        router.post("/instances/{}/start".format(instance_id), actor="alice")
        again = router.post("/instances/{}/start".format(instance_id), actor="alice")
        assert again.status == 409

    def test_widget_endpoint(self, router, service, published_model_uri):
        instance_id = _create_instance(router, service, published_model_uri)
        router.post("/instances/{}/start".format(instance_id), actor="alice")
        widget = router.get("/instances/{}/widget".format(instance_id), viewer="alice")
        assert widget.ok
        assert widget.body["current_phase"] == "elaboration"
        assert len(widget.body["phases"]) == 6


class TestCallbackAndPropagation:
    def test_action_callback_roundtrip(self, router, service, published_model_uri):
        instance_id = _create_instance(router, service, published_model_uri)
        router.post("/instances/{}/start".format(instance_id), actor="alice")
        router.post("/instances/{}/advance".format(instance_id), actor="alice",
                    body={"to_phase_id": "internalreview"})
        detail = router.get("/instances/{}".format(instance_id)).body
        visit = detail["visits"][-1]
        call_id = visit["invocations"][0]["call_id"]
        response = router.post(
            "/callbacks/{}/{}/{}".format(instance_id, visit["phase_id"], call_id),
            body={"status": "in progress", "detail": "waiting for second review"})
        assert response.ok
        assert response.body["status"] == "in progress"

    def test_callback_for_unknown_call_is_409(self, router, service, published_model_uri):
        instance_id = _create_instance(router, service, published_model_uri)
        router.post("/instances/{}/start".format(instance_id), actor="alice")
        response = router.post("/callbacks/{}/elaboration/call-x".format(instance_id),
                               body={"status": "completed"})
        assert response.status == 409

    def test_propagation_accept_via_rest(self, router, service, published_model_uri):
        instance_id = _create_instance(router, service, published_model_uri)
        router.post("/instances/{}/start".format(instance_id), actor="alice")
        revised = service.manager.model(published_model_uri).new_version(created_by="pm")
        proposals = router.post("/propagations", actor="coordinator",
                                body={"xml": lifecycle_to_xml(revised)})
        assert proposals.ok and len(proposals.body) == 1
        proposal_id = proposals.body[0]["proposal_id"]
        decision = router.post("/propagations/{}/decision".format(proposal_id), actor="alice",
                               body={"accept": True})
        assert decision.ok
        assert decision.body["to_version"] == "1.1"
        detail = router.get("/instances/{}".format(instance_id))
        assert detail.body["model_version"] == "1.1"

    def test_propagation_reject_via_rest(self, router, service, published_model_uri):
        instance_id = _create_instance(router, service, published_model_uri)
        router.post("/instances/{}/start".format(instance_id), actor="alice")
        revised = service.manager.model(published_model_uri).new_version(created_by="pm")
        proposals = router.post("/propagations", actor="coordinator",
                                body={"xml": lifecycle_to_xml(revised)})
        proposal_id = proposals.body[0]["proposal_id"]
        decision = router.post("/propagations/{}/decision".format(proposal_id), actor="alice",
                               body={"accept": False, "reason": "too busy"})
        assert decision.ok
        assert decision.body["decision"] == "rejected"


class TestMonitoringEndpoints:
    def test_summary_table_alerts(self, router, service, published_model_uri):
        for title in ("D1.1", "D1.2"):
            instance_id = _create_instance(router, service, published_model_uri, title=title)
            router.post("/instances/{}/start".format(instance_id), actor="alice")
        summary = router.get("/monitoring/summary")
        assert summary.body["total"] == 2
        table = router.get("/monitoring/table")
        assert len(table.body) == 2
        alerts = router.get("/monitoring/alerts")
        assert alerts.ok

    def test_unroutable_path_is_404(self, router):
        assert router.get("/nope").status == 404
        assert router.post("/instances/x/unknown", actor="a").status == 404
