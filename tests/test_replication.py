"""Tests for :mod:`repro.replication`: journal streaming, read replicas,
read-only serving, promotion and failover.

The centrepiece mirrors the durability suites: a durable primary serves
load while a warm standby streams its journal; the primary is killed
mid-traffic, the standby is promoted, and nothing that reached the journal
is lost — timers re-armed, writes accepted.
"""

import os
import shutil
import tempfile

import pytest

from repro.clock import SimulatedClock
from repro.client import GeleeApiError, GeleeClient
from repro.errors import (
    JournalTruncatedError,
    ReadOnlyReplicaError,
    ReplicationError,
)
from repro.model import LifecycleBuilder
from repro.persistence import Journal, PersistenceConfig
from repro.persistence.journal import list_segments, scan_last_seq, scan_records
from repro.replication import (
    JournalShippingSource,
    ReadReplica,
    ReplicationPrimary,
)
from repro.service import GeleeService
from repro.service.rest import RestRouter
from repro.service.transport import Request


@pytest.fixture
def root():
    directory = tempfile.mkdtemp(prefix="gelee-replication-")
    yield directory
    shutil.rmtree(directory, ignore_errors=True)


def replication_model(name="Replicated lifecycle"):
    builder = LifecycleBuilder(name)
    builder.phase("Draft", deadline_days=2.0)
    builder.phase("Review")
    builder.terminal("Done")
    builder.flow("Draft", "Review", "Done")
    return builder.build()


def build_primary(root, shard_count=4, backend="file", clock=None):
    config = PersistenceConfig(os.path.join(root, "primary"), backend=backend,
                               fsync="never")
    service = GeleeService(shard_count=shard_count, clock=clock or SimulatedClock(),
                           persistence=config)
    ReplicationPrimary(service)
    return config, service


def seed_instances(service, model, count, prefix="doc"):
    adapter = service.environment.adapter("Google Doc")
    ids = []
    for index in range(count):
        resource = adapter.create_resource("{} {}".format(prefix, index),
                                           owner="alice")
        instance = service.manager.instantiate(model.uri, resource, owner="alice")
        service.manager.start(instance.instance_id, actor="alice")
        ids.append(instance.instance_id)
    return ids


# ======================================================== journal streaming
class TestJournalStreaming:
    def test_cursor_resumes_across_rotation(self, root):
        journal = Journal(os.path.join(root, "journal"), fsync="never",
                          segment_max_records=5)
        clock = SimulatedClock()
        for index in range(17):
            journal.append("test.event", clock.now(), "subject-{}".format(index))
        assert len(journal.segment_files()) > 2
        # A cursor parked inside a sealed (rotated-out) segment resumes
        # exactly where it stopped, across the segment boundary.
        head = [record.seq for record in journal.read(after_seq=3, strict=True)]
        assert head == list(range(4, 18))

    def test_explicit_rotate_mid_stream(self, root):
        journal = Journal(os.path.join(root, "journal"), fsync="never")
        clock = SimulatedClock()
        for index in range(4):
            journal.append("test.event", clock.now(), "s{}".format(index))
        assert journal.rotate() is True
        for index in range(4, 8):
            journal.append("test.event", clock.now(), "s{}".format(index))
        assert [r.seq for r in journal.read(after_seq=2, strict=True)] == [3, 4, 5, 6, 7, 8]

    def test_truncated_cursor_raises_typed_resumable_error(self, root):
        journal = Journal(os.path.join(root, "journal"), fsync="never",
                          segment_max_records=4)
        clock = SimulatedClock()
        for index in range(12):
            journal.append("test.event", clock.now(), "s{}".format(index))
        removed = journal.truncate_through(8)
        assert removed, "expected fully-covered segments to be truncated"
        with pytest.raises(JournalTruncatedError) as excinfo:
            list(journal.read(after_seq=2, strict=True))
        assert excinfo.value.oldest_available > 3
        # The non-strict read (crash recovery over its own snapshot) keeps
        # its historical gap-tolerant behaviour.
        assert [r.seq for r in journal.read(after_seq=2)]

    def test_segment_vanishing_mid_read_is_typed_not_corruption(self, root):
        directory = os.path.join(root, "journal")
        journal = Journal(directory, fsync="never", segment_max_records=3)
        clock = SimulatedClock()
        for index in range(9):
            journal.append("test.event", clock.now(), "s{}".format(index))
        journal.close()
        segments = list_segments(directory)
        # Snapshot the segment list, then a concurrent checkpoint deletes a
        # segment before the reader reaches it.
        os.unlink(os.path.join(directory, segments[1]))
        with pytest.raises(JournalTruncatedError):
            list(scan_records(directory, after_seq=0, segments=segments))

    def test_scan_last_seq_is_read_only_on_torn_tail(self, root):
        directory = os.path.join(root, "journal")
        journal = Journal(directory, fsync="never")
        clock = SimulatedClock()
        for index in range(3):
            journal.append("test.event", clock.now(), "s{}".format(index))
        journal.close()
        path = os.path.join(directory, list_segments(directory)[-1])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 4, "kind": "torn')  # no newline: torn append
        size_before = os.path.getsize(path)
        assert scan_last_seq(directory) == 3
        assert os.path.getsize(path) == size_before, \
            "a follower's read-only scan must never repair the primary's files"
        # The owning process repairs it on reopen, as before.
        assert Journal(directory, fsync="never").last_seq == 3

    def test_shipping_source_batches_and_head(self, root):
        config, primary = build_primary(root)
        model = replication_model()
        primary.manager.publish_model(model, actor="alice")
        seed_instances(primary, model, 6)
        source = JournalShippingSource(config)
        batch = source.read_batch(0, limit=5)
        assert batch.count == 5
        assert batch.next_seq == 5
        # A full batch reports a lower-bound head (no tail scan per batch);
        # it must still prove the follower is not caught up.
        assert batch.next_seq < batch.head_seq <= source.head_seq()
        assert not batch.caught_up
        rest = source.read_batch(batch.next_seq)
        assert rest.head_seq == source.head_seq()  # final batch is exact
        assert rest.caught_up
        # Round-trips through plain dicts for wire shipping.
        from repro.replication import StreamBatch
        clone = StreamBatch.from_dict(batch.to_dict())
        assert [r.seq for r in clone.records] == [r.seq for r in batch.records]


# ============================================================= read replica
class TestReadReplica:
    def test_bootstrap_from_snapshot_and_incremental_sync(self, root):
        clock = SimulatedClock()
        config, primary = build_primary(root, clock=clock)
        model = replication_model()
        primary.manager.publish_model(model, actor="alice")
        ids = seed_instances(primary, model, 8)
        checkpoint = primary.persistence.checkpoint()
        # Post-snapshot traffic lands in the journal tail only.
        primary.manager.advance(ids[0], actor="alice", to_phase_id="review")

        replica = ReadReplica(JournalShippingSource(config), shard_count=4,
                              clock=clock)
        report = replica.sync()
        status = replica.status()
        assert status["snapshot_seq"] == checkpoint["journal_seq"]
        assert status["lag_records"] == 0
        assert report["applied_seq"] > checkpoint["journal_seq"]
        assert replica.service.manager.instance_count() == 8
        assert replica.service.manager.instance(ids[0]).current_phase_id == "review"
        # Deadline timers replicated (7 on Draft; the advanced one cancelled).
        assert replica.service.scheduler.timers.pending_count == 7
        # The execution log followed the stream too.
        assert len(replica.service.execution_log.history_of(ids[0])) == \
            len(primary.execution_log.history_of(ids[0]))

        # Lag is tracked continuously: new primary traffic, not yet synced.
        primary.manager.advance(ids[1], actor="alice", to_phase_id="review")
        replica._head_seq = replica._source.head_seq()
        assert replica.lag_records > 0
        replica.sync()
        assert replica.lag_records == 0

    def test_replica_against_in_process_primary_tracks_followers(self, root):
        clock = SimulatedClock()
        config, primary = build_primary(root, clock=clock)
        model = replication_model()
        primary.manager.publish_model(model, actor="alice")
        seed_instances(primary, model, 4)
        replica = ReadReplica(primary.replication, shard_count=4, clock=clock,
                              replica_id="standby-1")
        replica.sync()
        status = primary.replication_status()
        assert status["role"] == "primary"
        assert "standby-1" in status["followers"]
        assert status["followers"]["standby-1"]["lag_records"] == 0
        assert status["max_follower_lag"] == 0

    def test_replica_shard_layout_matches_primary(self, root):
        config, primary = build_primary(root, shard_count=4)
        model = replication_model()
        primary.manager.publish_model(model, actor="alice")
        seed_instances(primary, model, 12)
        replica = ReadReplica(JournalShippingSource(config), shard_count=4)
        replica.sync()
        assert replica.service.manager.shard_sizes() == \
            primary.manager.shard_sizes()

    def test_double_bootstrap_rejected(self, root):
        config, primary = build_primary(root)
        replica = ReadReplica(JournalShippingSource(config), shard_count=4)
        replica.bootstrap()
        with pytest.raises(ReplicationError):
            replica.bootstrap()


# ========================================================= read-only serving
class TestReadOnlyServing:
    def build_pair(self, root):
        clock = SimulatedClock()
        config, primary = build_primary(root, clock=clock)
        model = replication_model()
        primary.manager.publish_model(model, actor="alice")
        ids = seed_instances(primary, model, 6)
        replica = ReadReplica(JournalShippingSource(config), shard_count=4,
                              clock=clock, primary_hint="gelee-primary:8080")
        replica.sync()
        return primary, replica, ids

    def test_replica_serves_v2_reads(self, root):
        primary, replica, ids = self.build_pair(root)
        router = replica.router()
        listing = router.handle(Request("GET", "/v2/instances", query={}))
        assert listing.status == 200
        assert len(listing.body["data"]) == 6
        detail = router.handle(Request("GET", "/v2/instances/{}".format(ids[0])))
        assert detail.status == 200
        summary = router.handle(Request("GET", "/v2/monitoring/summary"))
        assert summary.status == 200
        assert summary.body["data"]["replication"]["role"] == "replica"
        assert summary.body["data"]["replication"]["lag_records"] == 0
        stats = router.handle(Request("GET", "/v2/runtime/stats"))
        assert stats.body["data"]["read_only"] is True
        assert stats.body["data"]["replication_role"] == "replica"

    def test_replica_rejects_v2_mutations_with_409_and_hint(self, root):
        primary, replica, ids = self.build_pair(root)
        router = replica.router()
        response = router.handle(Request(
            "POST", "/v2/instances/{}:advance".format(ids[0]),
            body={"to_phase_id": "review"}, actor="alice"))
        assert response.status == 409
        assert response.body["error"]["code"] == "REPLICA_READ_ONLY"
        assert response.body["error"]["details"]["primary"] == "gelee-primary:8080"
        # Mutations that never touch the kernel are rejected too.
        timer = router.handle(Request("POST", "/v2/timers",
                                      body={"timer_id": "t1", "delay_seconds": 5}))
        assert timer.status == 409
        assert timer.body["error"]["code"] == "REPLICA_READ_ONLY"

    def test_replica_rejects_v1_mutations(self, root):
        primary, replica, ids = self.build_pair(root)
        router = replica.router()
        response = router.handle(Request(
            "POST", "/instances/{}/advance".format(ids[0]),
            body={"to_phase_id": "review"}, actor="alice"))
        assert response.status == 409
        assert "read replica" in response.body["error"]

    def test_manager_level_read_only_enforcement(self, root):
        primary, replica, ids = self.build_pair(root)
        with pytest.raises(ReadOnlyReplicaError):
            replica.service.manager.advance(ids[0], actor="alice",
                                            to_phase_id="review")
        with pytest.raises(ReadOnlyReplicaError):
            replica.service.manager.publish_model(
                replication_model("Another"), actor="alice")

    def test_client_read_write_split(self, root):
        primary, replica, ids = self.build_pair(root)
        client = GeleeClient.in_process(router=RestRouter(service=primary),
                                        read_router=replica.router(),
                                        actor="alice")
        # GETs answer from the replica...
        assert client.runtime_stats()["read_only"] is True
        page = client.list_instances(page_size=3)
        assert len(page.items) == 3
        # ...writes route to the primary and succeed.
        moved = client.advance(ids[0], to_phase_id="review")
        assert moved["current_phase_id"] == "review"
        # A write forced onto the read endpoint gets the typed 409.
        with pytest.raises(GeleeApiError) as excinfo:
            client.call("POST", "/v2/instances/{}:advance".format(ids[1]),
                        body={"to_phase_id": "review"}, endpoint="read")
        assert excinfo.value.code == "REPLICA_READ_ONLY"
        assert excinfo.value.details["primary"] == "gelee-primary:8080"


# ================================================================ promotion
class TestPromotion:
    def test_scheduler_dormant_until_promoted(self, root):
        clock = SimulatedClock()
        config, primary = build_primary(root, clock=clock)
        model = replication_model()
        primary.manager.publish_model(model, actor="alice")
        ids = seed_instances(primary, model, 3)
        replica = ReadReplica(JournalShippingSource(config), shard_count=4,
                              clock=clock)
        replica.sync()
        assert replica.service.scheduler.timers.pending_count == 3
        clock.advance(days=3)  # every Draft deadline is now overdue
        assert replica.service.scheduler_tick()["fired"] == 0, \
            "a dormant standby must not escalate the primary's deadlines"
        replica.promote()
        fired = replica.service.scheduler_tick()
        assert fired["fired"] == 3
        annotated = replica.service.manager.instance(ids[0])
        assert any(a.kind == "escalation" for a in annotated.annotations)

    def test_promote_flips_writable_and_is_once(self, root):
        config, primary = build_primary(root)
        model = replication_model()
        primary.manager.publish_model(model, actor="alice")
        ids = seed_instances(primary, model, 2)
        replica = ReadReplica(JournalShippingSource(config), shard_count=4)
        replica.sync()
        report = replica.promote()
        assert report["promoted"] is True
        assert report["journal_seq"] == replica.applied_seq
        assert replica.service.read_only is False
        assert replica.role == "primary"
        replica.service.manager.advance(ids[0], actor="alice",
                                        to_phase_id="review")
        with pytest.raises(ReplicationError):
            replica.promote()
        with pytest.raises(ReplicationError):
            replica.sync()

    def test_promote_via_api_on_replica_only(self, root):
        config, primary = build_primary(root)
        model = replication_model()
        primary.manager.publish_model(model, actor="alice")
        seed_instances(primary, model, 2)
        replica = ReadReplica(JournalShippingSource(config), shard_count=4)
        replica.sync()
        # Promote is the one POST the read-only guard lets through.
        response = replica.router().handle(
            Request("POST", "/v2/runtime/replication:promote"))
        assert response.status == 200
        assert response.body["data"]["promoted"] is True
        # On a primary there is nothing to promote: typed 409.
        denied = RestRouter(service=primary).handle(
            Request("POST", "/v2/runtime/replication:promote"))
        assert denied.status == 409
        assert denied.body["error"]["code"] == "REPLICATION_INVALID"

    def test_cold_promote_drains_journal_without_prior_sync(self, root):
        """Promoting a fresh, never-synced replica (built over a dead
        primary's directory) must bootstrap AND drain the journal tail —
        snapshot-only restore would silently drop durable records."""
        config, primary = build_primary(root)
        model = replication_model()
        primary.manager.publish_model(model, actor="alice")
        ids = seed_instances(primary, model, 5)
        journal_head = primary.persistence.journal.last_seq
        del primary  # dies before any checkpoint: no snapshot, journal only

        replica = ReadReplica(JournalShippingSource(config), shard_count=4)
        report = replica.promote()
        assert report["journal_seq"] == journal_head
        assert report["records_drained"] > 0
        assert replica.service.manager.instance_count() == 5
        assert replica.service.manager.instance(ids[0]).current_phase_id == \
            "draft"

    def test_kill_and_failover_under_load(self, root):
        """The acceptance scenario: kill the primary mid-traffic, promote
        the standby, lose nothing that reached the journal."""
        clock = SimulatedClock()
        config, primary = build_primary(root, shard_count=4, clock=clock)
        model = replication_model()
        primary.manager.publish_model(model, actor="alice")
        ids = seed_instances(primary, model, 30)
        primary.persistence.checkpoint()

        replica = ReadReplica(JournalShippingSource(config), shard_count=4,
                              clock=clock, primary_hint="dead-primary")
        replica.sync()

        # Load keeps flowing after the standby's last poll: these writes
        # are durable in the journal but never streamed before the crash.
        for instance_id in ids[:10]:
            primary.manager.advance(instance_id, actor="alice",
                                    to_phase_id="review")
        for instance_id in ids[:5]:
            primary.manager.advance(instance_id, actor="alice",
                                    to_phase_id="done")
        expected_phases = {
            instance_id: primary.manager.instance(instance_id).current_phase_id
            for instance_id in ids
        }
        expected_timers = sorted(
            timer.timer_id
            for timer in primary.scheduler.timers.pending(kind="deadline"))
        journal_head = primary.persistence.journal.last_seq

        # Kill the primary: the process is gone, no clean close, no final
        # checkpoint — only the journal files survive.
        del primary

        report = replica.promote()
        assert report["promoted"] is True
        # Zero loss of journaled entries: the final drain sealed replay at
        # the dead primary's journal head.
        assert report["journal_seq"] == journal_head
        assert report["records_drained"] > 0
        promoted = replica.service
        assert promoted.manager.instance_count() == 30
        for instance_id, phase_id in expected_phases.items():
            assert promoted.manager.instance(instance_id).current_phase_id == \
                phase_id
        # Deadlines re-armed exactly as the primary had them.
        assert sorted(
            timer.timer_id
            for timer in promoted.scheduler.timers.pending(kind="deadline")
        ) == expected_timers
        assert report["retry_states_rebuilt"] == 0
        # The promoted node accepts writes again.
        survivor = ids[20]
        promoted.manager.advance(survivor, actor="alice", to_phase_id="review")
        assert promoted.manager.instance(survivor).current_phase_id == "review"
        # And its deadlines actually fire now.
        clock.advance(days=3)
        assert promoted.scheduler_tick()["fired"] > 0


# ============================================================ misc plumbing
class TestWiring:
    def test_primary_requires_persistence(self):
        service = GeleeService(shard_count=2)
        with pytest.raises(ReplicationError):
            ReplicationPrimary(service)

    def test_replica_rejects_own_persistence(self, root):
        with pytest.raises(Exception):
            GeleeService(read_only=True,
                         persistence=PersistenceConfig(os.path.join(root, "p")))

    def test_connect_builds_read_transport_from_either_half(self):
        client = GeleeClient.connect("primary", 8080, read_host="replica")
        assert client.read_transport is not None
        client = GeleeClient.connect("primary", 8080, read_port=8081)
        assert client.read_transport is not None
        assert GeleeClient.connect("primary", 8080).read_transport is None

    def test_unreplicated_service_reports_disabled(self):
        service = GeleeService(shard_count=2)
        assert service.replication_status() == {"enabled": False,
                                                "role": "primary"}
        with pytest.raises(ReplicationError):
            service.replication_promote()
