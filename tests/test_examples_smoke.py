"""Smoke tests: every shipped example runs to completion.

The examples double as executable documentation, so the suite guarantees they
keep working as the library evolves.
"""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

EXAMPLES = [
    "quickstart.py",
    "eu_project_portfolio.py",
    "hosted_service.py",
    "universal_resources.py",
    "durable_runtime.py",
    "scheduled_operations.py",
    "replicated_service.py",
    "ha_cluster.py",
]


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example, capsys):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, example))
    assert os.path.exists(path), "missing example {}".format(example)
    runpy.run_path(path, run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), "example {} produced no output".format(example)


def test_quickstart_output_mentions_publication(capsys):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "quickstart.py"))
    runpy.run_path(path, run_name="__main__")
    output = capsys.readouterr().out
    assert "Published on the project site: True" in output
    assert "Notifications sent by Google Docs:" in output


def test_portfolio_output_contains_cockpit(capsys):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "eu_project_portfolio.py"))
    runpy.run_path(path, run_name="__main__")
    output = capsys.readouterr().out
    assert "35 deliverables" in output
    assert "Portfolio:" in output
    assert "Phase duration statistics" in output


def test_durable_runtime_output_proves_recovery(capsys):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "durable_runtime.py"))
    runpy.run_path(path, run_name="__main__")
    output = capsys.readouterr().out
    assert "8 instances flushed" in output
    assert "journal records replayed" in output
    assert "History of the first deliverable survived" in output


def test_replicated_service_output_proves_failover(capsys):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "replicated_service.py"))
    runpy.run_path(path, run_name="__main__")
    output = capsys.readouterr().out
    assert "Read endpoint (replica) lists 8 deliverables" in output
    assert "Replica rejects writes: [REPLICA_READ_ONLY]" in output
    assert "Promoted the standby:" in output
    assert "Writes accepted after promotion" in output
    assert "New primary role: primary" in output


def test_ha_cluster_output_proves_automatic_failover(capsys):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "ha_cluster.py"))
    runpy.run_path(path, run_name="__main__")
    output = capsys.readouterr().out
    assert "Primary elected itself: role=leader epoch=1" in output
    assert "Automatic failover in" in output
    assert "Zero loss: un-streamed write survived" in output
    assert "Deposed primary fenced:" in output
    assert "Cluster healed itself" in output


def test_scheduled_operations_output_proves_escalation(capsys):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "scheduled_operations.py"))
    runpy.run_path(path, run_name="__main__")
    output = capsys.readouterr().out
    assert "10 deadline timers armed" in output
    assert "Escalations fired: 10 (10 instances annotated)" in output
    assert "Auto-advanced along the timeout transition: 5" in output
