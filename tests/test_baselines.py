"""Tests for the comparison baselines (workflow engine, PROSYT-style, document-driven)."""

import pytest

from repro.baselines import (
    ArtifactType,
    ArtifactTypeSystem,
    DocumentDrivenWorkflow,
    DocumentRule,
    WorkflowDefinition,
    WorkflowEngine,
    WorkflowTask,
)
from repro.baselines.document_driven import DocumentWorkflowError
from repro.baselines.prosyt import ArtifactTypeError
from repro.baselines.workflow_engine import WorkflowError
from repro.templates import document_review_lifecycle


def build_review_workflow(version=1):
    """A prescriptive equivalent of the document-review lifecycle."""
    definition = WorkflowDefinition(name="Document review", definition_id="wf-review",
                                    version=version, variables=["document", "reviews"])
    definition.add_task(WorkflowTask("draft", "Draft document", automatic=False,
                                     outputs=["document"]))
    definition.add_task(WorkflowTask("review", "Review document", automatic=False,
                                     inputs=["document"], outputs=["reviews"]))
    definition.add_task(WorkflowTask("publish", "Publish", automatic=True,
                                     implementation=lambda data: {"published": True},
                                     inputs=["reviews"]))
    definition.add_edge("START", "draft")
    definition.add_edge("draft", "review")
    definition.add_edge("review", "publish")
    definition.add_edge("publish", "END")
    return definition


class TestWorkflowEngine:
    def test_prescriptive_execution(self):
        engine = WorkflowEngine()
        engine.deploy(build_review_workflow())
        case = engine.start("wf-review")
        assert case.current_tasks == ["draft"]
        engine.complete_task(case.instance_id, "draft", outputs={"document": "v1"})
        engine.complete_task(case.instance_id, "review", outputs={"reviews": 2})
        # The automatic publish task ran and the case finished on its own.
        assert case.finished
        assert case.data["published"] is True

    def test_out_of_order_completion_rejected(self):
        engine = WorkflowEngine()
        engine.deploy(build_review_workflow())
        case = engine.start("wf-review")
        with pytest.raises(WorkflowError):
            engine.complete_task(case.instance_id, "review")

    def test_missing_workflow_data_rejected(self):
        engine = WorkflowEngine()
        engine.deploy(build_review_workflow())
        case = engine.start("wf-review")
        engine.complete_task(case.instance_id, "draft")  # forgot to produce "document"
        with pytest.raises(WorkflowError):
            engine.complete_task(case.instance_id, "review")

    def test_deploy_requires_start_edge(self):
        engine = WorkflowEngine()
        bad = WorkflowDefinition(name="No start")
        bad.add_task(WorkflowTask("a", "A"))
        with pytest.raises(WorkflowError):
            engine.deploy(bad)

    def test_guard_conditions_control_routing(self):
        definition = WorkflowDefinition(name="Guarded", definition_id="wf-guarded")
        definition.add_task(WorkflowTask("check", "Check", automatic=False))
        definition.add_task(WorkflowTask("fix", "Fix", automatic=False))
        definition.add_task(WorkflowTask("ship", "Ship", automatic=False))
        definition.add_edge("START", "check")
        definition.add_edge("check", "fix", condition=lambda data: data.get("bugs", 0) > 0)
        definition.add_edge("check", "ship", condition=lambda data: data.get("bugs", 0) == 0)
        engine = WorkflowEngine()
        engine.deploy(definition)
        buggy = engine.start("wf-guarded", data={"bugs": 3})
        engine.complete_task(buggy.instance_id, "check")
        assert buggy.current_tasks == ["fix"]
        clean = engine.start("wf-guarded", data={"bugs": 0})
        engine.complete_task(clean.instance_id, "check")
        assert clean.current_tasks == ["ship"]

    def test_automatic_migration_fails_for_incompatible_instances(self):
        engine = WorkflowEngine()
        engine.deploy(build_review_workflow())
        compatible = engine.start("wf-review")
        stuck = engine.start("wf-review")
        engine.complete_task(stuck.instance_id, "draft", outputs={"document": "v1"})
        # New version removes the "review" task entirely.
        revised = WorkflowDefinition(name="Document review", definition_id="wf-review",
                                     version=2, variables=["document"])
        revised.add_task(WorkflowTask("draft", "Draft document", automatic=False,
                                      outputs=["document"]))
        revised.add_task(WorkflowTask("publish", "Publish", automatic=False))
        revised.add_edge("START", "draft")
        revised.add_edge("draft", "publish")
        revised.add_edge("publish", "END")
        outcome = engine.change_definition(revised)
        assert outcome["migrated"] == 1      # the case still on "draft"
        assert outcome["failed"] == 1        # the case on the removed "review" task
        assert engine.migration_failures == 1

    def test_element_count_exceeds_gelee_for_same_process(self):
        workflow_elements = build_review_workflow().element_count()
        lifecycle_elements = document_review_lifecycle().element_count()
        assert workflow_elements > lifecycle_elements


class TestProsytBaseline:
    def test_one_lifecycle_per_type(self):
        system = ArtifactTypeSystem()
        system.define_type(ArtifactType("Doc deliverable", "Google Doc",
                                        document_review_lifecycle()))
        with pytest.raises(ArtifactTypeError):
            system.define_type(ArtifactType("Another", "Google Doc",
                                            document_review_lifecycle()))

    def test_needs_one_definition_per_resource_type(self):
        system = ArtifactTypeSystem()
        for resource_type in ("Google Doc", "MediaWiki page", "Zoho document"):
            system.define_type(ArtifactType(resource_type + " lifecycle", resource_type,
                                            document_review_lifecycle().copy(new_uri=True)))
        assert len(system.types()) == 3
        assert system.definitions_needed(["Google Doc", "MediaWiki page", "Zoho document"]) == 3
        assert system.total_definition_elements() >= 3 * document_review_lifecycle().element_count()

    def test_operations_follow_type_lifecycle_only(self):
        system = ArtifactTypeSystem()
        system.define_type(ArtifactType("Doc", "Google Doc", document_review_lifecycle()))
        artifact = system.create_artifact("Google Doc", "urn:doc:1")
        assert artifact.current_phase_id == "draft"
        system.perform_operation(artifact.instance_id, "under-review")
        with pytest.raises(ArtifactTypeError):
            system.perform_operation(artifact.instance_id, "draft-2")
        with pytest.raises(ArtifactTypeError):
            # jumping straight to "done" is not in the type lifecycle
            system.perform_operation(artifact.instance_id, "done")

    def test_runtime_lifecycle_change_not_allowed(self):
        system = ArtifactTypeSystem()
        system.define_type(ArtifactType("Doc", "Google Doc", document_review_lifecycle()))
        with pytest.raises(ArtifactTypeError):
            system.change_type_lifecycle("Google Doc", document_review_lifecycle())

    def test_unknown_type_rejected(self):
        with pytest.raises(ArtifactTypeError):
            ArtifactTypeSystem().create_artifact("Google Doc", "urn:doc:1")


class TestDocumentDrivenBaseline:
    def _workflow(self):
        rules = [
            DocumentRule("enough reviews", "approved",
                         lambda attributes: attributes.get("reviews", 0) >= 2, priority=1),
            DocumentRule("submitted", "in-review",
                         lambda attributes: attributes.get("submitted", False)),
        ]
        return DocumentDrivenWorkflow("drafting", rules, final_states=["approved"])

    def test_rules_drive_state(self):
        workflow = self._workflow()
        document = workflow.register_document("urn:doc:1", reviews=0)
        workflow.update_document(document.document_id, submitted=True)
        assert document.state == "in-review"
        workflow.update_document(document.document_id, reviews=2)
        assert document.state == "approved"
        assert document.history == ["drafting", "in-review", "approved"]

    def test_final_state_blocks_changes(self):
        workflow = self._workflow()
        document = workflow.register_document("urn:doc:1", submitted=True, reviews=5)
        workflow.update_document(document.document_id, touch=True)
        with pytest.raises(DocumentWorkflowError):
            workflow.update_document(document.document_id, more=True)

    def test_out_of_band_edits_rejected(self):
        workflow = self._workflow()
        document = workflow.register_document("urn:doc:1")
        with pytest.raises(DocumentWorkflowError):
            workflow.external_edit(document.document_id, text="sneaky change")
        with pytest.raises(DocumentWorkflowError):
            workflow.force_state(document.document_id, "approved")

    def test_unknown_document(self):
        with pytest.raises(DocumentWorkflowError):
            self._workflow().document("mdoc-missing")
