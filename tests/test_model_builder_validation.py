"""Unit tests for the lifecycle builder and model validation."""

import pytest

from repro.errors import ModelError, ValidationError
from repro.model import LifecycleBuilder, Phase
from repro.model.validation import lifecycle_problems, validate_lifecycle
from repro.model.versioning import VersionInfo


class TestBuilder:
    def test_flow_builds_chain(self):
        model = (
            LifecycleBuilder("Review")
            .phase("Draft")
            .phase("Review")
            .terminal("Done")
            .flow("Draft", "Review", "Done")
            .build()
        )
        assert model.phase_ids == ["draft", "review", "done"]
        assert [p.phase_id for p in model.initial_phases()] == ["draft"]
        assert [p.phase_id for p in model.successors("draft")] == ["review"]

    def test_action_by_phase_name(self):
        model = (
            LifecycleBuilder("X")
            .phase("Review")
            .terminal("Done")
            .action("Review", "urn:notify", "Notify", reviewers=["a"])
            .flow("Review", "Done")
            .build()
        )
        call = model.phase("review").actions[0]
        assert call.action_uri == "urn:notify"
        assert call.parameters == {"reviewers": ["a"]}

    def test_unknown_phase_in_action_raises(self):
        builder = LifecycleBuilder("X").phase("A")
        with pytest.raises(ModelError):
            builder.action("Missing", "urn:a")

    def test_deadline_helper(self):
        model = (
            LifecycleBuilder("X").phase("A").terminal("B").flow("A", "B")
            .deadline("A", days=5).build()
        )
        assert model.phase("a").deadline.days == 5

    def test_auto_chain(self):
        model = (
            LifecycleBuilder("X").auto_chain()
            .phase("One").phase("Two").terminal("End")
            .build()
        )
        assert model.is_modeled_move(None, "one")
        assert model.is_modeled_move("one", "two")
        assert model.is_modeled_move("two", "end")

    def test_loop_adds_back_edge(self):
        model = (
            LifecycleBuilder("X").phase("A").phase("B").terminal("C")
            .flow("A", "B", "C").loop("B", "A").build()
        )
        assert model.is_modeled_move("b", "a")

    def test_flow_needs_two_phases(self):
        with pytest.raises(ModelError):
            LifecycleBuilder("X").phase("A").flow("A")

    def test_for_resource_types_deduplicates(self):
        model = (
            LifecycleBuilder("X").for_resource_types("Google Doc", "Google Doc")
            .phase("A").terminal("B").flow("A", "B").build()
        )
        assert model.suggested_resource_types == ["Google Doc"]

    def test_metadata_and_describe(self):
        model = (
            LifecycleBuilder("X").describe("docs").metadata(project="LiquidPub")
            .phase("A").terminal("B").flow("A", "B").build()
        )
        assert model.description == "docs"
        assert model.metadata["project"] == "LiquidPub"

    def test_build_validates(self):
        builder = LifecycleBuilder("X")
        with pytest.raises(ValidationError):
            builder.build()

    def test_peek_skips_validation(self):
        assert len(LifecycleBuilder("X").peek()) == 0

    def test_terminal_shortcut(self):
        model = LifecycleBuilder("X").phase("A").terminal("End").flow("A", "End").build()
        assert model.phase("end").terminal


class TestValidation:
    def test_empty_model_is_error(self):
        report = lifecycle_problems(LifecycleBuilder("X").peek())
        assert not report.ok

    def test_missing_name_is_error(self):
        builder = LifecycleBuilder(" ")
        builder.phase("A")
        report = lifecycle_problems(builder.peek())
        assert any("name" in problem for problem in report.errors)

    def test_no_begin_is_warning_only(self):
        builder = LifecycleBuilder("X").phase("A").terminal("B")
        builder.transition("A", "B")
        report = lifecycle_problems(builder.peek())
        assert report.ok
        assert any("BEGIN" in warning for warning in report.warnings)

    def test_no_terminal_is_warning(self):
        builder = LifecycleBuilder("X").phase("A").phase("B")
        builder.flow("A", "B")
        report = lifecycle_problems(builder.peek())
        assert report.ok
        assert any("end phase" in warning for warning in report.warnings)

    def test_unreachable_phase_is_warning(self):
        builder = LifecycleBuilder("X").phase("A").phase("Orphan").terminal("B")
        builder.flow("A", "B")
        report = lifecycle_problems(builder.peek())
        assert any("not reachable" in warning for warning in report.warnings)

    def test_self_loop_is_warning(self):
        builder = LifecycleBuilder("X").phase("A").terminal("B")
        builder.flow("A", "B")
        builder.transition("A", "A")
        report = lifecycle_problems(builder.peek())
        assert any("self-transition" in warning for warning in report.warnings)

    def test_blank_action_uri_is_error(self):
        builder = LifecycleBuilder("X").phase("A").terminal("B")
        builder.flow("A", "B")
        builder.peek().phase("a").actions.append(
            __import__("repro.model.actions", fromlist=["ActionCall"]).ActionCall("  ", "bad")
        )
        report = lifecycle_problems(builder.peek())
        assert not report.ok

    def test_validate_lifecycle_raises_with_all_problems(self):
        builder = LifecycleBuilder("")
        with pytest.raises(ValidationError) as excinfo:
            validate_lifecycle(builder.peek())
        assert excinfo.value.problems

    def test_terminal_with_outgoing_is_warning(self):
        builder = LifecycleBuilder("X").phase("A").terminal("B")
        builder.flow("A", "B")
        builder.transition("B", "A")
        report = lifecycle_problems(builder.peek())
        assert any("outgoing" in warning for warning in report.warnings)


class TestVersionInfo:
    def test_bump_minor(self):
        assert VersionInfo("1.0").bump().version_number == "1.1"
        assert VersionInfo("2.9").bump().version_number == "2.10"

    def test_bump_weird_version_appends(self):
        assert VersionInfo("beta").bump().version_number == "beta.1"

    def test_parse_paper_date(self):
        info = VersionInfo.parse_paper_date("1.0", "lpAdmin", "08/07/2008")
        assert info.creation_date.isoformat() == "2008-07-08"

    def test_dict_round_trip(self):
        info = VersionInfo.parse_paper_date("1.0", "lpAdmin", "08/07/2008")
        restored = VersionInfo.from_dict(info.to_dict())
        assert restored == info
