"""Tests for the built-in templates and the EU project scenario generator."""

import pytest

from repro.actions import library
from repro.model.validation import validate_lifecycle
from repro.monitoring import MonitoringCockpit
from repro.runtime.instance import InstanceStatus
from repro.scenarios import generate_project, run_portfolio
from repro.templates import (
    builtin_templates,
    document_review_lifecycle,
    eu_deliverable_lifecycle,
    photo_story_lifecycle,
    simple_publication_lifecycle,
    software_release_lifecycle,
)
from repro.templates.eu_deliverable import EU_DELIVERABLE_PHASES


class TestEuDeliverableTemplate:
    def test_phases_match_fig1(self):
        model = eu_deliverable_lifecycle()
        assert model.phase_ids == EU_DELIVERABLE_PHASES
        assert model.name == "EU Project deliverable lifecycle"
        assert model.phase("closed").terminal

    def test_actions_match_fig1(self):
        model = eu_deliverable_lifecycle()
        by_phase = {phase.phase_id: [c.action_uri for c in phase.actions]
                    for phase in model.phases}
        assert by_phase["elaboration"] == []
        assert set(by_phase["internalreview"]) == {library.CHANGE_ACCESS_RIGHTS,
                                                   library.NOTIFY_REVIEWERS}
        assert set(by_phase["finalassembly"]) == {library.GENERATE_PDF,
                                                  library.CHANGE_ACCESS_RIGHTS}
        assert set(by_phase["eureview"]) == {library.CHANGE_ACCESS_RIGHTS,
                                             library.NOTIFY_REVIEWERS}
        assert set(by_phase["publication"]) == {library.POST_ON_WEBSITE,
                                                library.CHANGE_ACCESS_RIGHTS}
        assert by_phase["closed"] == []

    def test_main_flow_and_rework_loop(self):
        model = eu_deliverable_lifecycle()
        for source, target in zip(EU_DELIVERABLE_PHASES, EU_DELIVERABLE_PHASES[1:]):
            assert model.is_modeled_move(source, target)
        assert model.is_modeled_move("internalreview", "elaboration")

    def test_version_info_matches_paper_example(self):
        model = eu_deliverable_lifecycle()
        assert model.version.created_by == "lpAdmin"
        assert model.version.creation_date.isoformat() == "2008-07-08"

    def test_deadlines_option(self):
        model = eu_deliverable_lifecycle(deadline_days={"elaboration": 20})
        assert model.phase("elaboration").deadline.days == 20
        assert model.phase("publication").deadline is None

    def test_fixed_reviewers_option(self):
        model = eu_deliverable_lifecycle(internal_reviewers=["bob"])
        notify = [c for c in model.phase("internalreview").actions
                  if c.action_uri == library.NOTIFY_REVIEWERS][0]
        assert notify.parameters["reviewers"] == ["bob"]


class TestOtherTemplates:
    @pytest.mark.parametrize("factory", [
        document_review_lifecycle,
        software_release_lifecycle,
        photo_story_lifecycle,
        simple_publication_lifecycle,
    ])
    def test_templates_are_valid(self, factory):
        model = factory()
        report = validate_lifecycle(model)
        assert report.ok
        assert model.terminal_phases()

    def test_builtin_catalog(self):
        templates = builtin_templates()
        assert "eu-deliverable" in templates
        assert len(templates) == 5
        assert all(len(model) >= 3 for model in templates.values())


class TestProjectGenerator:
    def test_default_size_matches_paper(self):
        project = generate_project()
        assert len(project.deliverables) == 35
        assert project.name == "LiquidPub"

    def test_deterministic_for_same_seed(self):
        first = generate_project(seed=11)
        second = generate_project(seed=11)
        assert [d.title for d in first.deliverables] == [d.title for d in second.deliverables]
        assert [d.owner for d in first.deliverables] == [d.owner for d in second.deliverables]

    def test_different_seed_changes_assignment(self):
        first = generate_project(seed=1)
        second = generate_project(seed=2)
        assert [d.owner for d in first.deliverables] != [d.owner for d in second.deliverables]

    def test_owners_and_reviewers_are_partners(self):
        project = generate_project(deliverable_count=20)
        for deliverable in project.deliverables:
            assert deliverable.owner in project.partners
            assert all(reviewer in project.partners for reviewer in deliverable.reviewers)
            assert deliverable.owner not in deliverable.reviewers

    def test_deliverables_by_owner_partitions(self):
        project = generate_project(deliverable_count=15)
        grouped = project.deliverables_by_owner()
        assert sum(len(items) for items in grouped.values()) == 15


class TestPortfolioRun:
    def test_small_portfolio_runs_end_to_end(self):
        run = run_portfolio(deliverable_count=10, seed=5)
        assert len(run.project.deliverables) == 10
        assert all(d.instance_id for d in run.project.deliverables)
        instances = run.manager.instances()
        assert len(instances) == 10
        assert run.completed == sum(1 for i in instances
                                    if i.status is InstanceStatus.COMPLETED)

    def test_deviation_rate_zero_produces_no_deviations(self):
        run = run_portfolio(deliverable_count=8, seed=5, deviation_rate=0.0)
        assert run.deviations == 0
        assert all(not instance.deviations() for instance in run.manager.instances())

    def test_deviation_rate_one_produces_deviations(self):
        run = run_portfolio(deliverable_count=8, seed=5, deviation_rate=1.0)
        assert run.deviations > 0

    def test_monitoring_over_generated_portfolio(self):
        run = run_portfolio(deliverable_count=12, seed=3, completion_rate=0.5)
        cockpit = MonitoringCockpit(run.manager)
        summary = cockpit.portfolio_summary()
        assert summary.total == 12
        assert summary.completed + summary.active + summary.not_started == 12
        assert cockpit.status_table()

    def test_resources_span_multiple_applications(self):
        run = run_portfolio(deliverable_count=20, seed=9)
        types = {instance.resource.resource_type for instance in run.manager.instances()}
        assert len(types) >= 2

    def test_with_policy_enforces_roles(self):
        run = run_portfolio(deliverable_count=5, seed=3, with_policy=True)
        assert run.policy is not None
        assert run.manager.instances()

    def test_reviewer_notifications_reach_the_applications(self):
        run = run_portfolio(deliverable_count=10, seed=5, deviation_rate=0.0,
                            completion_rate=1.0)
        notified = 0
        for adapter in run.environment.adapters.values():
            application = getattr(adapter, "application", None)
            if application is None or not hasattr(application, "notifications"):
                continue
            notified += len(application.notifications())
        assert notified > 0
