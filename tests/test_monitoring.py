"""Tests for the monitoring cockpit, timelines and alerts."""

import pytest

from repro.monitoring import MonitoringCockpit, collect_alerts, instance_timeline
from repro.monitoring.alerts import AlertSeverity
from repro.templates import eu_deliverable_lifecycle


@pytest.fixture
def deadline_model(manager):
    """The Fig. 1 lifecycle with tight deadlines, for delay reporting."""
    model = eu_deliverable_lifecycle(deadline_days={"elaboration": 10, "internalreview": 5})
    model.uri = "urn:gelee:deadline-model"
    manager.publish_model(model, actor="coordinator")
    return model


def _make_instance(manager, model, environment, owner="alice", title="D1.1"):
    descriptor = environment.adapter("Google Doc").create_resource(title, owner=owner)
    parameters = {
        call.call_id: {"reviewers": ["bob"]}
        for _, call in model.action_calls() if "notify" in call.action_uri
    }
    return manager.instantiate(model.uri, descriptor, owner=owner,
                               instantiation_parameters=parameters)


class TestStatusTable:
    def test_row_contents(self, manager, environment, deadline_model, clock):
        instance = _make_instance(manager, deadline_model, environment)
        manager.start(instance.instance_id, actor="alice")
        clock.advance(days=3)
        cockpit = MonitoringCockpit(manager)
        row = cockpit.status_row(instance)
        assert row.phase_id == "elaboration"
        assert row.days_in_phase == pytest.approx(3, abs=0.01)
        assert row.overdue_days == 0
        assert not row.is_late
        assert row.owner == "alice"

    def test_overdue_detection(self, manager, environment, deadline_model, clock):
        instance = _make_instance(manager, deadline_model, environment)
        manager.start(instance.instance_id, actor="alice")
        clock.advance(days=14)
        row = MonitoringCockpit(manager).status_row(instance)
        assert row.is_late
        assert row.overdue_days == pytest.approx(4, abs=0.01)

    def test_table_sorted_by_lateness(self, manager, environment, deadline_model, clock):
        late = _make_instance(manager, deadline_model, environment, title="Late one")
        manager.start(late.instance_id, actor="alice")
        clock.advance(days=20)
        fresh = _make_instance(manager, deadline_model, environment, title="Fresh one")
        manager.start(fresh.instance_id, actor="alice")
        rows = MonitoringCockpit(manager).status_table()
        assert rows[0].resource_name == "Late one"
        assert len(MonitoringCockpit(manager).late_instances()) == 1

    def test_not_started_instance_row(self, manager, environment, deadline_model):
        instance = _make_instance(manager, deadline_model, environment)
        row = MonitoringCockpit(manager).status_row(instance)
        assert row.status == "created"
        assert row.phase_id is None
        assert row.days_in_phase == 0


class TestPortfolioSummary:
    def test_counts(self, manager, environment, deadline_model, clock):
        first = _make_instance(manager, deadline_model, environment, title="A")
        second = _make_instance(manager, deadline_model, environment, title="B", owner="bob")
        third = _make_instance(manager, deadline_model, environment, title="C")
        manager.start(first.instance_id, actor="alice")
        manager.start(second.instance_id, actor="bob")
        manager.move_to(second.instance_id, actor="bob", phase_id="closed")
        clock.advance(days=30)
        summary = MonitoringCockpit(manager).portfolio_summary()
        assert summary.total == 3
        assert summary.active == 1
        assert summary.completed == 1
        assert summary.not_started == 1
        assert summary.late == 1
        assert summary.by_owner == {"alice": 2, "bob": 1}
        assert summary.by_phase["(not started)"] == 1

    def test_completion_rate_and_deviations(self, manager, environment, deadline_model):
        first = _make_instance(manager, deadline_model, environment, title="A")
        second = _make_instance(manager, deadline_model, environment, title="B")
        manager.start(first.instance_id, actor="alice")
        manager.move_to(first.instance_id, actor="alice", phase_id="closed")
        manager.start(second.instance_id, actor="alice")
        manager.move_to(second.instance_id, actor="alice", phase_id="publication",
                        annotation="skipping reviews")
        cockpit = MonitoringCockpit(manager)
        assert cockpit.completion_rate() == pytest.approx(0.5)
        assert len(cockpit.deviating_instances()) >= 1

    def test_completion_rate_empty_portfolio(self, manager):
        assert MonitoringCockpit(manager).completion_rate() == 0.0

    def test_phase_duration_statistics(self, manager, environment, deadline_model, clock):
        instance = _make_instance(manager, deadline_model, environment)
        manager.start(instance.instance_id, actor="alice")
        clock.advance(days=4)
        manager.advance(instance.instance_id, actor="alice", to_phase_id="internalreview")
        statistics = MonitoringCockpit(manager).phase_duration_statistics()
        assert statistics["Elaboration"]["count"] == 1
        assert statistics["Elaboration"]["mean_days"] == pytest.approx(4, abs=0.01)

    def test_render_text_contains_rows(self, manager, environment, deadline_model):
        instance = _make_instance(manager, deadline_model, environment, title="Readable row")
        manager.start(instance.instance_id, actor="alice")
        text = MonitoringCockpit(manager).render_text()
        assert "Readable row" in text
        assert "Portfolio:" in text


class TestTimeline:
    def test_interleaves_visits_actions_annotations(self, manager, environment, deadline_model,
                                                    clock):
        instance = _make_instance(manager, deadline_model, environment)
        manager.start(instance.instance_id, actor="alice")
        clock.advance(days=1)
        manager.advance(instance.instance_id, actor="alice", to_phase_id="internalreview")
        manager.annotate(instance.instance_id, "alice", "waiting for partner input")
        entries = instance_timeline(instance)
        kinds = [entry.kind for entry in entries]
        assert kinds[0] == "phase_entered"
        assert "action" in kinds
        assert "annotation" in kinds
        assert kinds.index("phase_left") < kinds.index("annotation")

    def test_completed_marker(self, manager, environment, deadline_model):
        instance = _make_instance(manager, deadline_model, environment)
        manager.start(instance.instance_id, actor="alice")
        manager.move_to(instance.instance_id, actor="alice", phase_id="closed")
        entries = instance_timeline(instance)
        assert entries[-1].kind == "completed"

    def test_deviation_marked_in_title(self, manager, environment, deadline_model):
        instance = _make_instance(manager, deadline_model, environment)
        manager.start(instance.instance_id, actor="alice")
        manager.move_to(instance.instance_id, actor="alice", phase_id="publication")
        entries = [e for e in instance_timeline(instance) if e.kind == "phase_entered"]
        assert "(deviation)" in entries[-1].title


class TestAlerts:
    def test_overdue_alert_severity_scales(self, manager, environment, deadline_model, clock):
        instance = _make_instance(manager, deadline_model, environment)
        manager.start(instance.instance_id, actor="alice")
        clock.advance(days=12)  # 2 days over the 10-day elaboration deadline
        alerts = collect_alerts(manager)
        assert any(alert.severity is AlertSeverity.WARNING and "overdue" in alert.message
                   for alert in alerts)
        clock.advance(days=10)  # now far over the deadline
        alerts = collect_alerts(manager)
        assert any(alert.severity is AlertSeverity.CRITICAL for alert in alerts)

    def test_stuck_alert_without_deadline(self, manager, environment, eu_model, clock):
        instance = _make_instance(manager, eu_model, environment)
        manager.start(instance.instance_id, actor="alice")
        clock.advance(days=45)
        alerts = collect_alerts(manager, stuck_after_days=30)
        assert any("no progress" in alert.message for alert in alerts)

    def test_failed_action_alert(self, manager, environment, eu_model):
        descriptor = environment.adapter("Google Doc").create_resource("D", owner="alice")
        instance = manager.instantiate(eu_model.uri, descriptor, owner="alice")
        manager.start(instance.instance_id, actor="alice")
        manager.advance(instance.instance_id, actor="alice", to_phase_id="internalreview")
        alerts = collect_alerts(manager)
        assert any("failed" in alert.message for alert in alerts)

    def test_deviation_alert_threshold(self, manager, environment, eu_model):
        instance = _make_instance(manager, eu_model, environment)
        manager.start(instance.instance_id, actor="alice")
        manager.move_to(instance.instance_id, actor="alice", phase_id="publication")
        manager.move_to(instance.instance_id, actor="alice", phase_id="elaboration")
        alerts = collect_alerts(manager, deviation_threshold=2)
        assert any("off-model" in alert.message for alert in alerts)

    def test_healthy_portfolio_has_no_alerts(self, manager, environment, eu_model):
        instance = _make_instance(manager, eu_model, environment)
        manager.start(instance.instance_id, actor="alice")
        assert collect_alerts(manager) == []
