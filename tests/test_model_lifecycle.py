"""Unit tests for the LifecycleModel graph operations."""

import pytest

from repro.errors import DuplicatePhaseError, ModelError, UnknownPhaseError
from repro.model import ActionCall, LifecycleModel, Phase, BEGIN, END


def build_simple_model():
    model = LifecycleModel(name="Doc lifecycle")
    model.add_phase(Phase(phase_id="draft", name="Draft"))
    model.add_phase(Phase(phase_id="review", name="Review",
                          actions=[ActionCall("urn:notify", "Notify")]))
    model.add_phase(Phase(phase_id="done", name="Done", terminal=True))
    model.add_transition(BEGIN, "draft")
    model.add_transition("draft", "review")
    model.add_transition("review", "done")
    return model


class TestPhaseManagement:
    def test_add_and_get_phase(self):
        model = build_simple_model()
        assert model.phase("draft").name == "Draft"
        assert len(model) == 3
        assert "draft" in model

    def test_duplicate_phase_rejected(self):
        model = build_simple_model()
        with pytest.raises(DuplicatePhaseError):
            model.add_phase(Phase(phase_id="draft"))

    def test_unknown_phase_raises(self):
        with pytest.raises(UnknownPhaseError):
            build_simple_model().phase("missing")

    def test_remove_phase_drops_transitions(self):
        model = build_simple_model()
        model.remove_phase("review")
        assert not model.has_phase("review")
        assert all("review" not in (t.source, t.target) for t in model.transitions)

    def test_rename_phase(self):
        model = build_simple_model()
        model.rename_phase("draft", "Drafting")
        assert model.phase("draft").name == "Drafting"

    def test_terminal_phases(self):
        model = build_simple_model()
        assert [p.phase_id for p in model.terminal_phases()] == ["done"]


class TestTransitions:
    def test_add_transition_validates_endpoints(self):
        model = build_simple_model()
        with pytest.raises(UnknownPhaseError):
            model.add_transition("draft", "missing")
        with pytest.raises(UnknownPhaseError):
            model.add_transition("missing", "draft")

    def test_begin_to_end_rejected(self):
        model = build_simple_model()
        with pytest.raises(ModelError):
            model.add_transition(BEGIN, END)

    def test_duplicate_transition_not_added_twice(self):
        model = build_simple_model()
        before = len(model.transitions)
        model.add_transition("draft", "review")
        assert len(model.transitions) == before

    def test_remove_transition(self):
        model = build_simple_model()
        model.remove_transition("draft", "review")
        assert model.successors("draft") == []

    def test_initial_phases_from_begin(self):
        model = build_simple_model()
        assert [p.phase_id for p in model.initial_phases()] == ["draft"]

    def test_initial_phase_fallback_without_begin(self):
        model = LifecycleModel(name="x")
        model.add_phase(Phase(phase_id="only"))
        assert [p.phase_id for p in model.initial_phases()] == ["only"]

    def test_successors_and_predecessors(self):
        model = build_simple_model()
        assert [p.phase_id for p in model.successors("draft")] == ["review"]
        assert [p.phase_id for p in model.predecessors("review")] == ["draft"]

    def test_is_modeled_move(self):
        model = build_simple_model()
        assert model.is_modeled_move("draft", "review")
        assert not model.is_modeled_move("draft", "done")
        assert model.is_modeled_move(None, "draft")
        assert not model.is_modeled_move(None, "review")


class TestQueries:
    def test_action_calls_and_uris(self):
        model = build_simple_model()
        pairs = model.action_calls()
        assert len(pairs) == 1
        assert pairs[0][0] == "review"
        assert model.referenced_action_uris() == {"urn:notify"}

    def test_reachable_phases(self):
        model = build_simple_model()
        model.add_phase(Phase(phase_id="orphan"))
        reachable = model.reachable_phases()
        assert "orphan" not in reachable
        assert {"draft", "review", "done"} <= reachable

    def test_element_count(self):
        model = build_simple_model()
        # 3 phases + 3 transitions + 1 action call
        assert model.element_count() == 7


class TestCopyAndVersioning:
    def test_copy_is_independent(self):
        model = build_simple_model()
        duplicate = model.copy()
        duplicate.phase("draft").name = "Changed"
        duplicate.add_phase(Phase(phase_id="extra"))
        assert model.phase("draft").name == "Draft"
        assert not model.has_phase("extra")
        assert duplicate.uri == model.uri

    def test_copy_with_new_uri(self):
        model = build_simple_model()
        assert model.copy(new_uri=True).uri != model.uri

    def test_new_version_bumps(self):
        model = build_simple_model()
        revised = model.new_version(created_by="pm")
        assert revised.version.version_number == "1.1"
        assert revised.version.created_by == "pm"
        assert model.version.version_number == "1.0"

    def test_dict_round_trip(self):
        model = build_simple_model()
        restored = LifecycleModel.from_dict(model.to_dict())
        assert restored.name == model.name
        assert restored.phase_ids == model.phase_ids
        assert len(restored.transitions) == len(model.transitions)
        assert restored.phase("review").actions[0].action_uri == "urn:notify"
