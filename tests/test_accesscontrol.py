"""Tests for users, roles, permissions and widget visibility rules."""

import pytest

from repro.accesscontrol import AccessPolicy, Permission, Role, User, UserDirectory
from repro.accesscontrol.policy import VisibilityRules
from repro.errors import PermissionDeniedError, ValidationError


class TestUserDirectory:
    def test_register_and_lookup(self):
        directory = UserDirectory()
        directory.register(User("alice", display_name="Alice", organization="unitn"))
        assert directory.known("alice")
        assert directory.user("alice").organization == "unitn"
        assert not directory.known("mallory")

    def test_register_many(self):
        directory = UserDirectory()
        directory.register_many("a", "b", "c")
        assert len(directory.users()) == 3

    def test_user_requires_id(self):
        with pytest.raises(ValidationError):
            User("  ")

    def test_assign_and_query_roles(self):
        directory = UserDirectory()
        directory.assign("alice", Role.INSTANCE_OWNER, "inst-1")
        directory.assign("alice", Role.STAKEHOLDER)
        assert directory.has_role("alice", Role.INSTANCE_OWNER, "inst-1")
        assert not directory.has_role("alice", Role.INSTANCE_OWNER, "inst-2")
        assert directory.has_role("alice", Role.STAKEHOLDER, "anything")  # global scope
        assert Role.STAKEHOLDER in directory.roles_of("alice")

    def test_assign_unknown_user_registers_them(self):
        directory = UserDirectory()
        directory.assign("ghost", Role.TOKEN_OWNER, "inst-1")
        assert directory.known("ghost")

    def test_revoke(self):
        directory = UserDirectory()
        directory.assign("alice", Role.TOKEN_OWNER, "inst-1")
        directory.revoke("alice", Role.TOKEN_OWNER, "inst-1")
        assert not directory.has_role("alice", Role.TOKEN_OWNER, "inst-1")

    def test_users_with_role(self):
        directory = UserDirectory()
        directory.assign("alice", Role.LIFECYCLE_MANAGER)
        directory.assign("bob", Role.LIFECYCLE_MANAGER, "model-1")
        assert directory.users_with_role(Role.LIFECYCLE_MANAGER) == ["alice", "bob"]
        assert directory.users_with_role(Role.LIFECYCLE_MANAGER, scope="model-2") == ["alice"]


class TestAccessPolicy:
    def test_manager_can_do_everything(self, policy):
        assert policy.allows("coordinator", Permission.PUBLISH_MODEL.value, "model-1")
        assert policy.allows("coordinator", Permission.MOVE_TOKEN.value, "inst-1")

    def test_stakeholder_can_only_view(self, policy):
        assert policy.allows("eve", Permission.VIEW.value, "inst-1")
        assert not policy.allows("eve", Permission.MOVE_TOKEN.value, "inst-1")
        assert not policy.allows("eve", Permission.PUBLISH_MODEL.value, "model-1")

    def test_scoped_instance_owner(self, policy):
        policy.grant_instance_owner("alice", "inst-1")
        assert policy.allows("alice", Permission.MOVE_TOKEN.value, "inst-1")
        assert not policy.allows("alice", Permission.MOVE_TOKEN.value, "inst-2")

    def test_unknown_operation_treated_as_view(self, policy):
        assert policy.allows("eve", "something.unknown", "x")

    def test_open_world_lets_unknown_users_act(self, directory):
        open_policy = AccessPolicy(directory, open_world=True)
        assert open_policy.allows("stranger", Permission.MOVE_TOKEN.value, "inst-1")
        assert not open_policy.allows("eve", Permission.MOVE_TOKEN.value, "inst-1")


class TestManagerEnforcement:
    def _setup(self, secured_manager, policy, google_doc):
        from repro.templates import eu_deliverable_lifecycle

        model = eu_deliverable_lifecycle()
        secured_manager.publish_model(model, actor="coordinator")
        policy.grant_instance_owner("alice", model.uri)
        instance = secured_manager.instantiate(model.uri, google_doc, owner="alice")
        return model, instance

    def test_publish_requires_manager_role(self, secured_manager):
        from repro.templates import document_review_lifecycle

        with pytest.raises(PermissionDeniedError):
            secured_manager.publish_model(document_review_lifecycle(), actor="eve")

    def test_owner_moves_token_stakeholder_cannot(self, secured_manager, policy, google_doc):
        model, instance = self._setup(secured_manager, policy, google_doc)
        secured_manager.start(instance.instance_id, actor="alice")
        with pytest.raises(PermissionDeniedError):
            secured_manager.advance(instance.instance_id, actor="eve",
                                    to_phase_id="internalreview")

    def test_token_owner_may_move(self, secured_manager, policy, google_doc):
        model, instance = self._setup(secured_manager, policy, google_doc)
        instance.grant_token_ownership("bob")
        secured_manager.start(instance.instance_id, actor="bob")
        assert instance.current_phase_id == "elaboration"

    def test_global_manager_may_move_any_token(self, secured_manager, policy, google_doc):
        model, instance = self._setup(secured_manager, policy, google_doc)
        secured_manager.start(instance.instance_id, actor="coordinator")
        assert instance.is_active


class TestVisibilityRules:
    def test_no_policy_shows_everything(self, manager, eu_instance):
        rules = VisibilityRules.for_user(None, "anyone", eu_instance)
        assert rules.show_controls and rules.show_history
        assert not rules.requires_authentication

    def test_unknown_user_requires_authentication(self, policy, manager, eu_instance):
        rules = VisibilityRules.for_user(policy, "stranger", eu_instance)
        assert rules.requires_authentication
        assert not rules.show_controls

    def test_owner_gets_controls(self, policy, directory, manager, eu_instance):
        directory.register_many("alice")
        rules = VisibilityRules.for_user(policy, "alice", eu_instance)
        assert rules.show_controls  # alice is the instance owner

    def test_stakeholder_gets_read_only_view(self, policy, manager, eu_instance):
        rules = VisibilityRules.for_user(policy, "eve", eu_instance)
        assert not rules.show_controls
        assert rules.show_history
