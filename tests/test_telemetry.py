"""Tests for :mod:`repro.telemetry` and the observability surface.

Covers the metrics registry (instruments, exposition, isolation), trace
propagation from the gateway through dispatch to the journal and the
replication stream (PR 8's correlation story), the ``/v2/metrics`` and
``/v2/runtime/telemetry`` routes on primary and replica, the stable
``runtime_stats`` dispatch schema, and the structured log emitter.

PR 9 adds the span layer and the SLO engine: span-tree construction and
thread-hop parenting, the ``SpanStore`` ring with slow-trace retention,
the end-to-end span chain for one request (gateway → shard → dispatch →
journal, and across replication/promotion), SLO rule evaluation with
firing/clearing edges published as journaled bus events, and the
``/v2/runtime/traces`` / ``/v2/runtime/alerts`` wire surface.
"""

import io
import json
import os
import shutil
import tempfile
import threading

import pytest

from repro.actions import library
from repro.clock import SimulatedClock
from repro.client import GeleeClient
from repro.model import LifecycleBuilder
from repro.persistence import PersistenceConfig
from repro.persistence.journal import scan_records
from repro.replication import JournalShippingSource, ReadReplica, ReplicationPrimary
from repro.service import GeleeService
from repro.service.rest import RestRouter
from repro.telemetry import (
    JsonLogEmitter,
    LogRing,
    MetricHistory,
    MetricsRegistry,
    SamplingProfiler,
    SloEngine,
    SloRule,
    SpanContext,
    SpanStore,
    TimedLock,
    TraceContext,
    current_span_context,
    current_span_id,
    current_trace_id,
    default_slo_rules,
    get_log_ring,
    get_registry,
    get_span_store,
    new_trace_id,
    reset_loggers,
    set_log_ring,
    set_registry,
    set_span_store,
    span_scope,
    trace_scope,
)
from repro.telemetry.log import get_logger
from repro.telemetry.registry import DEFAULT_FAST_BUCKETS
from repro.workers import WorkerPool


@pytest.fixture(autouse=True)
def fresh_registry():
    """Each test gets its own process registry (components bind at build)."""
    previous = set_registry(MetricsRegistry())
    yield get_registry()
    set_registry(previous)


@pytest.fixture(autouse=True)
def fresh_span_store():
    """Each test gets its own process span store (instrumented code looks
    it up per-span, so swapping the default is full isolation)."""
    previous = get_span_store()
    store = set_span_store(SpanStore())
    yield store
    set_span_store(previous)


@pytest.fixture(autouse=True)
def fresh_log_ring():
    """Each test gets its own process log ring (emitters fan out into the
    live default, so swapping it isolates the records)."""
    previous = set_log_ring(LogRing())
    yield get_log_ring()
    set_log_ring(previous)


@pytest.fixture
def root():
    directory = tempfile.mkdtemp(prefix="gelee-telemetry-")
    yield directory
    shutil.rmtree(directory, ignore_errors=True)


def simple_model(name="Telemetry lifecycle"):
    builder = LifecycleBuilder(name)
    builder.phase("Draft")
    builder.phase("Review")
    builder.terminal("Done")
    builder.flow("Draft", "Review", "Done")
    return builder.build()


def make_instance(service, model):
    adapter = service.environment.adapter("Google Doc")
    resource = adapter.create_resource("telemetry doc", owner="alice")
    instance = service.manager.instantiate(model.uri, resource, owner="alice")
    return instance.instance_id


# =========================================================== registry basics
class TestRegistry:
    def test_counter_accumulates_per_label_set(self, fresh_registry):
        counter = fresh_registry.counter("demo_total", "Demo.", labelnames=("kind",))
        counter.inc(kind="a")
        counter.inc(2, kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 3
        assert counter.value(kind="b") == 1

    def test_counter_rejects_decrease_and_wrong_labels(self, fresh_registry):
        counter = fresh_registry.counter("demo_total", "Demo.", labelnames=("kind",))
        with pytest.raises(ValueError):
            counter.inc(-1, kind="a")
        with pytest.raises(ValueError):
            counter.inc(other="a")

    def test_gauge_set_inc_dec(self, fresh_registry):
        gauge = fresh_registry.gauge("demo_gauge", "Demo.")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6

    def test_histogram_buckets_and_summary(self, fresh_registry):
        histogram = fresh_registry.histogram(
            "demo_seconds", "Demo.", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        cell = histogram.snapshot()["series"][0]
        assert cell["count"] == 4
        assert cell["sum"] == pytest.approx(55.55)

    def test_get_or_create_is_idempotent_but_typed(self, fresh_registry):
        first = fresh_registry.counter("demo_total", "Demo.")
        assert fresh_registry.counter("demo_total", "Demo.") is first
        with pytest.raises(ValueError):
            fresh_registry.gauge("demo_total", "Demo.")
        with pytest.raises(ValueError):
            fresh_registry.counter("demo_total", "Demo.", labelnames=("kind",))

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("demo_total", "Demo.")
        counter.inc()
        histogram = registry.histogram("demo_seconds", "Demo.",
                                       buckets=DEFAULT_FAST_BUCKETS)
        histogram.observe(1.0)
        assert counter.value() == 0
        assert registry.snapshot()["enabled"] is False

    def test_prometheus_exposition_shape(self, fresh_registry):
        fresh_registry.counter("demo_total", "Demo counter.",
                               labelnames=("kind",)).inc(kind='with "quotes"')
        fresh_registry.gauge("demo_gauge", "Demo gauge.").set(3)
        fresh_registry.histogram("demo_seconds", "Demo histogram.",
                                 buckets=(0.5, 1.0)).observe(0.7)
        text = fresh_registry.render_prometheus()
        assert text.endswith("\n")
        assert "# HELP demo_total Demo counter." in text
        assert "# TYPE demo_total counter" in text
        assert 'demo_total{kind="with \\"quotes\\""} 1' in text
        assert "demo_gauge 3" in text
        # Cumulative buckets plus the +Inf catch-all and _sum/_count.
        assert 'demo_seconds_bucket{le="0.5"} 0' in text
        assert 'demo_seconds_bucket{le="1"} 1' in text
        assert 'demo_seconds_bucket{le="+Inf"} 1' in text
        assert "demo_seconds_count 1" in text

    def test_snapshot_stamps_clock(self):
        clock = SimulatedClock()
        registry = MetricsRegistry(clock=clock)
        snapshot = registry.snapshot()
        assert snapshot["scraped_at"] == clock.now().isoformat()

    def test_timer_context_manager_observes(self, fresh_registry):
        histogram = fresh_registry.histogram("demo_seconds", "Demo.",
                                             buckets=DEFAULT_FAST_BUCKETS)
        with fresh_registry.time_histogram(histogram):
            pass
        assert histogram.snapshot()["series"][0]["count"] == 1

    def test_label_escaping_survives_hostile_values(self, fresh_registry):
        """Backslash, newline and quote in one label value must scrape as
        a single well-formed line (Prometheus text format escaping)."""
        hostile = 'back\\slash\nnew"line'
        fresh_registry.counter("demo_total", "Demo.",
                               labelnames=("path",)).inc(path=hostile)
        text = fresh_registry.render_prometheus()
        lines = [line for line in text.splitlines()
                 if line.startswith("demo_total{")]
        assert len(lines) == 1
        assert lines[0] == 'demo_total{path="back\\\\slash\\nnew\\"line"} 1'

    def test_help_escaping_keeps_exposition_line_based(self, fresh_registry):
        fresh_registry.gauge("demo_gauge", "Line one\nline two \\ done.").set(1)
        text = fresh_registry.render_prometheus()
        assert "# HELP demo_gauge Line one\\nline two \\\\ done." in text


# ================================================================== tracing
class TestTracing:
    def test_scope_nesting_restores_previous(self):
        assert current_trace_id() is None
        with trace_scope("outer"):
            assert current_trace_id() == "outer"
            with trace_scope("inner"):
                assert current_trace_id() == "inner"
            assert current_trace_id() == "outer"
        assert current_trace_id() is None

    def test_none_scope_is_noop(self):
        with trace_scope("outer"):
            with trace_scope(None):
                assert current_trace_id() == "outer"

    def test_ensure_reuses_active_id(self):
        with trace_scope("outer"):
            with TraceContext.ensure("tick"):
                assert current_trace_id() == "outer"
        with TraceContext.ensure("tick"):
            assert current_trace_id().startswith("tick-")

    def test_ids_are_unique(self):
        assert new_trace_id() != new_trace_id()

    def test_scope_is_thread_local(self):
        seen = {}

        def worker():
            seen["in_thread"] = current_trace_id()

        with trace_scope("main-only"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["in_thread"] is None


# ======================================================= gateway middleware
class TestGatewayObservability:
    def test_request_id_header_echoed_and_fresh(self):
        router = RestRouter()
        first = router.get("/v2/models")
        second = router.get("/v2/models")
        assert first.headers["X-Request-Id"].startswith("req-")
        assert second.headers["X-Request-Id"] != first.headers["X-Request-Id"]
        assert first.body["meta"]["request_id"] == first.headers["X-Request-Id"]

    def test_inbound_request_id_honoured_over_http(self):
        from urllib.request import Request as UrlRequest, urlopen

        from repro.service.http import GeleeHttpServer

        service = GeleeService()
        server = GeleeHttpServer(RestRouter(service)).start()
        try:
            call = UrlRequest(server.base_url + "/v2/models",
                              headers={"X-Request-Id": "req-upstream-7"})
            with urlopen(call) as response:
                envelope = json.loads(response.read().decode("utf-8"))
                assert response.headers["X-Request-Id"] == "req-upstream-7"
            assert envelope["meta"]["request_id"] == "req-upstream-7"
            # A blank header does not suppress minting.
            call = UrlRequest(server.base_url + "/v2/models",
                              headers={"X-Request-Id": "  "})
            with urlopen(call) as response:
                assert response.headers["X-Request-Id"].startswith("req-")
        finally:
            server.stop()
            service.close()

    def test_request_id_in_error_envelope(self):
        router = RestRouter()
        response = router.get("/v2/instances/missing")
        assert response.status == 404
        assert response.body["error"]["code"] == "INSTANCE_NOT_FOUND"
        assert response.body["meta"]["request_id"] == \
            response.headers["X-Request-Id"]

    def test_timing_middleware_records_stats_and_series(self, fresh_registry):
        router = RestRouter()
        router.get("/v2/models")
        router.get("/v2/instances/missing")
        snapshot = router.stats.snapshot()
        assert snapshot["requests"] == 2
        assert snapshot["errors"] == 1
        counter = fresh_registry.get("gelee_api_requests_total")
        assert counter.value(route="GET /v2/models", status="200") == 1
        assert counter.value(route="GET /v2/instances/{instance_id}",
                             status="404") == 1
        latency = fresh_registry.get("gelee_api_request_seconds")
        series = latency.snapshot()["series"]
        assert sum(cell["count"] for cell in series) == 2


# =============================================== request-id → journal → replica
class TestTracePropagation:
    def test_origin_request_id_reaches_journal_and_replica(self, root):
        config = PersistenceConfig(os.path.join(root, "primary"), fsync="never")
        service = GeleeService(shard_count=2, clock=SimulatedClock(),
                               persistence=config)
        ReplicationPrimary(service)
        model = simple_model()
        router = RestRouter(service=service)
        response = router.post("/v2/models", body={"model": model.to_dict()},
                               actor="alice")
        assert response.status == 201
        request_id = response.headers["X-Request-Id"]

        records = [record for record in scan_records(config.journal_directory)
                   if record.payload.get("origin_request_id") == request_id]
        assert records, "journal record should carry the gateway request id"

        replica = ReadReplica(JournalShippingSource(config), shard_count=2,
                              clock=SimulatedClock())
        replica.sync()
        entries = [entry for entry in replica.service.execution_log.entries()
                   if entry.payload.get("origin_request_id") == request_id]
        assert entries, "replica's applied copy should carry the same id"
        service.close()

    def test_dispatcher_carries_trace_across_worker_pool(self):
        service = GeleeService(shard_count=2, clock=SimulatedClock(),
                               completion_workers=2)
        model = simple_model()
        service.manager.publish_model(model, actor="alice")
        instance_id = make_instance(service, model)
        router = RestRouter(service=service)
        response = router.post(
            "/v2/instances/{}:start".format(instance_id), actor="alice")
        assert response.status == 200
        request_id = response.headers["X-Request-Id"]
        service.manager.drain_in_flight(timeout=5.0)
        entries = [entry for entry in service.execution_log.entries()
                   if entry.payload.get("origin_request_id") == request_id]
        assert entries, "pooled completion events should keep the request id"
        service.close()

    def test_scheduler_tick_gets_tick_origin(self, fresh_registry):
        service = GeleeService(shard_count=2, clock=SimulatedClock())
        captured = []
        original = service.scheduler.timers.fire_due

        def spy(**kwargs):
            captured.append(current_trace_id())
            return original(**kwargs)

        service.scheduler.timers.fire_due = spy
        service.scheduler.tick()
        assert captured and captured[0].startswith("tick-")
        service.close()


# ============================================================== wire surface
class TestTelemetryRoutes:
    def test_metrics_route_is_plain_text(self, fresh_registry):
        router = RestRouter(shard_count=2)
        response = router.get("/v2/metrics")
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        assert isinstance(response.body, str)
        assert "# TYPE gelee_api_requests_total counter" in response.body
        assert "# TYPE gelee_dispatch_wait_seconds histogram" in response.body
        assert "gelee_dispatch_in_flight 0" in response.body

    def test_telemetry_route_returns_envelope_snapshot(self):
        router = RestRouter(shard_count=2)
        response = router.get("/v2/runtime/telemetry")
        assert response.status == 200
        data = response.body["data"]
        assert data["enabled"] is True
        assert data["node"]["replication_role"] == "primary"
        names = {metric["name"] for metric in data["metrics"]}
        assert "gelee_api_requests_total" in names

    def test_metrics_on_primary_and_replica(self, root):
        config = PersistenceConfig(os.path.join(root, "primary"), fsync="never")
        service = GeleeService(shard_count=2, clock=SimulatedClock(),
                               persistence=config)
        ReplicationPrimary(service)
        model = simple_model()
        primary_router = RestRouter(service=service)
        primary_router.post("/v2/models", body={"model": model.to_dict()},
                            actor="alice")
        replica = ReadReplica(JournalShippingSource(config), shard_count=2,
                              clock=SimulatedClock())
        replica.sync()
        primary_text = primary_router.get("/v2/metrics").body
        assert "gelee_journal_last_seq" in primary_text
        replica_text = replica.router().get("/v2/metrics").body
        assert "gelee_replication_lag_records 0" in replica_text
        assert "gelee_replication_records_applied_total" in replica_text
        service.close()

    def test_monitoring_summary_includes_telemetry_rollup(self):
        router = RestRouter(shard_count=2)
        router.get("/v2/models")
        summary = router.get("/v2/monitoring/summary").body["data"]
        rollup = summary["telemetry"]
        assert rollup["enabled"] is True
        assert rollup["api_requests"] >= 1

    def test_client_sdk_metrics_and_telemetry(self):
        client = GeleeClient.in_process(shard_count=2, actor="alice")
        text = client.metrics()
        assert isinstance(text, str)
        assert "# TYPE gelee_api_request_seconds histogram" in text
        status = client.telemetry_status()
        assert status["enabled"] is True
        assert any(metric["name"] == "gelee_api_requests_total"
                   for metric in status["metrics"])


# ======================================================== runtime_stats schema
class TestRuntimeStatsSchema:
    DISPATCH_KEYS = {"mode", "in_flight", "queue_depth", "worker_pool"}

    def test_single_manager_schema(self):
        service = GeleeService(clock=SimulatedClock())
        stats = service.runtime_stats()
        assert set(stats["dispatch"]) == self.DISPATCH_KEYS
        assert stats["dispatch"]["mode"] == "inline"
        assert stats["dispatch"]["worker_pool"] is None
        service.close()

    def test_sharded_pooled_schema_surfaces_queue_depth(self):
        service = GeleeService(shard_count=4, clock=SimulatedClock(),
                               completion_workers=2)
        stats = service.runtime_stats()
        assert set(stats["dispatch"]) == self.DISPATCH_KEYS
        assert stats["dispatch"]["mode"] == "pooled"
        assert stats["dispatch"]["worker_pool"]["workers"] >= 1
        assert stats["dispatch"]["queue_depth"] == \
            stats["dispatch"]["worker_pool"]["queued"]
        # Legacy flat keys stay for older dashboards.
        assert stats["dispatch_mode"] == "pooled"
        assert stats["in_flight_actions"] == stats["dispatch"]["in_flight"]
        service.close()


# ================================================================ structured log
class TestJsonLog:
    def test_emits_json_lines_with_trace_id(self):
        sink = io.StringIO()
        clock = SimulatedClock()
        log = JsonLogEmitter("test", sink=sink, clock=clock)
        with trace_scope("req-abc"):
            log.info("event.one", answer=42)
        log.warning("event.two")
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert lines[0]["event"] == "event.one"
        assert lines[0]["trace_id"] == "req-abc"
        assert lines[0]["answer"] == 42
        assert lines[0]["component"] == "test"
        assert "trace_id" not in lines[1]
        assert lines[1]["level"] == "warning"

    def test_min_level_filters(self):
        sink = io.StringIO()
        log = JsonLogEmitter("test", sink=sink, min_level="warning")
        log.debug("dropped")
        log.info("dropped")
        log.error("kept")
        lines = sink.getvalue().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "kept"


# ==================================================================== spans
class TestSpanScope:
    def test_nested_spans_parent_on_the_enclosing_span(self, fresh_span_store):
        with trace_scope("req-1"):
            with span_scope("outer") as outer:
                assert current_span_id() == outer.span_id
                with span_scope("inner") as inner:
                    assert inner.parent_id == outer.span_id
                assert current_span_id() == outer.span_id
        assert current_span_id() is None
        doc = fresh_span_store.trace("req-1")
        assert doc["span_count"] == 2
        (root,) = doc["tree"]
        assert root["name"] == "outer"
        assert [child["name"] for child in root["children"]] == ["inner"]

    def test_no_trace_id_means_no_span(self, fresh_span_store):
        with span_scope("orphan") as span:
            assert span is None
        assert fresh_span_store.stats()["spans_recorded"] == 0

    def test_disabled_store_still_activates_trace_id(self):
        """The flat correlation layer must not regress when span
        recording is off — origin_request_id propagation rides on it."""
        set_span_store(SpanStore(enabled=False))
        context = SpanContext("req-flat", None)
        with span_scope("hop", context=context) as span:
            assert span is None
            assert current_trace_id() == "req-flat"
        assert current_trace_id() is None

    def test_raising_block_marks_error_and_restores_state(self, fresh_span_store):
        """Satellite: nesting/restoration must survive an exception —
        both the trace id and the active span id roll back."""
        with trace_scope("req-err"):
            with pytest.raises(RuntimeError):
                with span_scope("outer"):
                    with span_scope("inner"):
                        raise RuntimeError("boom")
            assert current_span_id() is None
            assert current_trace_id() == "req-err"
        assert current_trace_id() is None
        doc = fresh_span_store.trace("req-err")
        by_name = {span["name"]: span for span in doc["spans"]}
        assert by_name["inner"]["status"] == "error"
        assert by_name["inner"]["error"] == "RuntimeError"
        assert by_name["outer"]["status"] == "error"

    def test_trace_scope_restores_previous_id_when_block_raises(self):
        with trace_scope("outer"):
            with pytest.raises(ValueError):
                with trace_scope("inner"):
                    assert current_trace_id() == "inner"
                    raise ValueError("boom")
            assert current_trace_id() == "outer"
        assert current_trace_id() is None

    def test_context_handoff_parents_across_threads(self, fresh_span_store):
        """The worker-pool discipline: capture on submit, re-activate on
        the worker — the hop becomes a tree edge, not a new root."""
        captured = {}

        def worker(context):
            with span_scope("worker.task", context=context) as span:
                captured["trace_id"] = current_trace_id()
                captured["span"] = span

        with trace_scope("req-hop"):
            with span_scope("submit") as submit_span:
                context = current_span_context()
                assert context.trace_id == "req-hop"
                assert context.span_id == submit_span.span_id
                thread = threading.Thread(target=worker, args=(context,))
                thread.start()
                thread.join()
        assert captured["trace_id"] == "req-hop"
        assert captured["span"].parent_id == submit_span.span_id
        (root,) = fresh_span_store.trace("req-hop")["tree"]
        assert root["name"] == "submit"
        assert root["children"][0]["name"] == "worker.task"

    def test_span_ids_are_unique_and_duration_measured(self):
        assert len({span_scope("x")._name for _ in range(1)}) == 1  # smoke
        from repro.telemetry import new_span_id
        assert new_span_id() != new_span_id()
        with trace_scope("req-t"):
            with span_scope("timed") as span:
                pass
        assert span.end is not None and span.end >= span.start
        assert span.to_dict()["duration_ms"] >= 0


class TestSpanStore:
    def _record(self, store, trace_id, name="op", parent=None):
        with trace_scope(trace_id):
            with span_scope(name, store=store) as span:
                pass
        return span

    def test_ring_evicts_oldest_trace(self):
        store = SpanStore(max_traces=2, slow_threshold_seconds=999)
        for trace_id in ("t1", "t2", "t3"):
            self._record(store, trace_id)
        assert store.trace("t1") is None
        assert store.trace("t2") is not None
        assert store.trace("t3") is not None
        stats = store.stats()
        assert stats["traces"] == 2
        assert stats["traces_evicted"] == 1
        assert stats["slow_traces"] == 0

    def test_slow_traces_survive_ring_churn(self):
        store = SpanStore(max_traces=2, slow_threshold_seconds=0.5)
        slow = self._record(store, "t-slow")
        slow.end = slow.start + 2.0  # forge a 2s trace
        self._record(store, "t2")
        self._record(store, "t3")  # evicts t-slow from the ring
        doc = store.trace("t-slow")
        assert doc is not None
        assert doc["retained"] == "slow"
        summaries = {row["trace_id"]: row for row in store.traces()}
        assert summaries["t-slow"]["retained"] == "slow"
        assert summaries["t3"]["retained"] == "ring"

    def test_per_trace_span_cap_counts_overflow(self):
        store = SpanStore(max_spans_per_trace=3)
        for _ in range(5):
            self._record(store, "t-big")
        doc = store.trace("t-big")
        assert doc["span_count"] == 3
        assert doc["dropped_spans"] == 2
        assert store.stats()["spans_dropped"] == 2

    def test_orphan_parent_becomes_root(self):
        store = SpanStore()
        with trace_scope("t-orphan"):
            with span_scope("late", store=store,
                            context=SpanContext("t-orphan", "gone")):
                pass
        (root,) = store.trace("t-orphan")["tree"]
        assert root["name"] == "late"
        assert root["parent_id"] == "gone"

    def test_traces_listing_is_newest_first_and_limited(self):
        store = SpanStore()
        for trace_id in ("t1", "t2", "t3"):
            self._record(store, trace_id)
        rows = store.traces(limit=2)
        assert len(rows) == 2
        assert rows[0]["started_at"] >= rows[1]["started_at"]

    def test_reset_clears_everything(self):
        store = SpanStore()
        self._record(store, "t1")
        store.reset()
        assert store.trace("t1") is None
        assert store.stats()["spans_recorded"] == 0


# ============================================= request → span tree, end to end
def action_model(name="Traced lifecycle"):
    builder = LifecycleBuilder(name)
    builder.phase("Work")
    builder.terminal("End")
    builder.flow("Work", "End")
    builder.action("Work", library.CHANGE_ACCESS_RIGHTS, "Change access rights",
                   visibility="team")
    return builder.build()


class TestSpanPipeline:
    def test_one_request_id_yields_the_full_span_chain(self, root,
                                                       fresh_span_store):
        """The acceptance path: one X-Request-Id retrieves a tree with
        gateway → shard → dispatch wait/execute → journal append spans."""
        config = PersistenceConfig(os.path.join(root, "primary"), fsync="never")
        service = GeleeService(shard_count=4, persistence=config,
                               completion_workers=2)
        try:
            model = action_model()
            service.manager.install_model(model)
            instance_id = make_instance(service, model)
            router = RestRouter(service=service)
            response = router.post(
                "/v2/instances/{}:start".format(instance_id), actor="alice")
            assert response.status == 200
            request_id = response.headers["X-Request-Id"]
            service.manager.drain_in_flight(timeout=10.0)

            detail = router.get("/v2/runtime/traces/{}".format(request_id))
            assert detail.status == 200
            doc = detail.body["data"]
            names = {span["name"] for span in doc["spans"]}
            assert {"gateway.request", "shard.apply", "action.dispatch",
                    "dispatch.wait", "dispatch.execute",
                    "journal.append"} <= names
            # The tree nests causally: gateway at the root, the journal
            # write under the shard hop, the dispatch wait/execute under
            # the pooled action span (itself parented across the pool).
            (gateway,) = doc["tree"]
            assert gateway["name"] == "gateway.request"
            assert gateway["attrs"]["status"] == 200
            shard = next(child for child in gateway["children"]
                         if child["name"] == "shard.apply")
            child_names = {child["name"] for child in shard["children"]}
            assert "journal.append" in child_names
            assert "action.dispatch" in child_names
            dispatch = next(child for child in shard["children"]
                            if child["name"] == "action.dispatch")
            assert {"dispatch.wait", "dispatch.execute"} <= \
                {child["name"] for child in dispatch["children"]}
        finally:
            service.close()

    def test_traces_listing_route_and_not_found(self, fresh_span_store):
        router = RestRouter(shard_count=2)
        response = router.get("/v2/models")
        request_id = response.headers["X-Request-Id"]
        listing = router.get("/v2/runtime/traces", limit=5)
        assert listing.status == 200
        data = listing.body["data"]
        assert data["store"]["enabled"] is True
        assert any(row["trace_id"] == request_id for row in data["traces"])
        missing = router.get("/v2/runtime/traces/req-nope")
        assert missing.status == 404
        assert missing.body["error"]["code"] == "TRACE_NOT_FOUND"

    def test_worker_pool_boundary_keeps_spans_in_the_request_trace(
            self, fresh_span_store):
        """Satellite: spans opened on pooled completion workers land in
        the submitting request's trace, parented across the hop."""
        service = GeleeService(shard_count=2, completion_workers=2)
        try:
            model = action_model()
            service.manager.install_model(model)
            instance_id = make_instance(service, model)
            router = RestRouter(service=service)
            response = router.post(
                "/v2/instances/{}:start".format(instance_id), actor="alice")
            request_id = response.headers["X-Request-Id"]
            service.manager.drain_in_flight(timeout=10.0)
            doc = fresh_span_store.trace(request_id)
            dispatch = next(span for span in doc["spans"]
                            if span["name"] == "action.dispatch")
            assert dispatch["trace_id"] == request_id
            assert dispatch["parent_id"] is not None
            parents = {span["span_id"] for span in doc["spans"]}
            assert dispatch["parent_id"] in parents
        finally:
            service.close()

    def test_replication_apply_extends_the_request_trace(self, root,
                                                         fresh_span_store):
        """A request's timeline keeps growing on the follower: applies
        are spanned under the origin request id, and the trace is
        retrievable from the promoted node after failover."""
        config = PersistenceConfig(os.path.join(root, "primary"), fsync="never")
        service = GeleeService(shard_count=2, clock=SimulatedClock(),
                               persistence=config)
        ReplicationPrimary(service)
        model = simple_model()
        router = RestRouter(service=service)
        response = router.post("/v2/models", body={"model": model.to_dict()},
                               actor="alice")
        request_id = response.headers["X-Request-Id"]

        replica = ReadReplica(JournalShippingSource(config), shard_count=2,
                              clock=SimulatedClock())
        replica.sync()
        doc = fresh_span_store.trace(request_id)
        applies = [span for span in doc["spans"]
                   if span["name"] == "replication.apply"]
        assert applies, "sync should span each apply under the origin id"
        assert all(span["attrs"]["replica_id"] == replica.replica_id
                   for span in applies)

        service.close()
        replica.promote()
        promote_traces = [row for row in fresh_span_store.traces()
                          if row["root"] == "replication.promote"]
        assert promote_traces, "promotion should record its own span"
        after = replica.router().get("/v2/runtime/traces/{}".format(request_id))
        assert after.status == 200
        names = {span["name"] for span in after.body["data"]["spans"]}
        assert "replication.apply" in names
        assert "gateway.request" in names


# ================================================================ SLO engine
class TestSloEngine:
    def _engine(self, rules, clock=None, publish=None):
        return SloEngine(rules=rules, registry=get_registry(),
                         clock=clock or SimulatedClock(), publish=publish)

    def test_error_rate_fires_and_resolves_on_windowed_deltas(self):
        counter = get_registry().counter(
            "gelee_api_requests_total", "Demo.", labelnames=("route", "status"))
        events = []
        engine = self._engine(
            [SloRule("err", "error-rate", threshold=0.5, min_samples=2)],
            publish=lambda kind, rule, payload: events.append((kind, payload)))
        counter.inc(4, route="GET /x", status="500")
        result = engine.evaluate()
        assert [t["kind"] for t in result["transitions"]] == ["alert.fired"]
        assert result["firing"][0]["value"] == 1.0
        # The *window* recovers even though the cumulative ratio cannot.
        counter.inc(10, route="GET /x", status="200")
        result = engine.evaluate()
        assert [t["kind"] for t in result["transitions"]] == ["alert.resolved"]
        assert engine.firing() == []
        assert [kind for kind, _ in events] == ["alert.fired", "alert.resolved"]
        assert events[0][1]["severity"] == "warn"
        assert events[0][1]["value"] == 1.0

    def test_error_rate_holds_below_min_samples(self):
        counter = get_registry().counter(
            "gelee_api_requests_total", "Demo.", labelnames=("route", "status"))
        engine = self._engine(
            [SloRule("err", "error-rate", threshold=0.1, min_samples=10)])
        counter.inc(3, route="GET /x", status="500")
        result = engine.evaluate()
        assert result["transitions"] == []
        assert engine.firing() == []
        # And an idle window later never flaps a firing alert back to ok.
        counter.inc(20, route="GET /x", status="500")
        assert engine.evaluate()["firing"]
        result = engine.evaluate()  # zero new samples: hold, not resolve
        assert result["transitions"] == []
        assert engine.firing()

    def test_error_status_prefixes_are_configurable(self):
        counter = get_registry().counter(
            "gelee_api_requests_total", "Demo.", labelnames=("route", "status"))
        engine = self._engine(
            [SloRule("err4xx", "error-rate", threshold=0.5,
                     error_status_prefixes=("4", "5"))])
        counter.inc(3, route="GET /x", status="404")
        result = engine.evaluate()
        assert result["firing"][0]["value"] == 1.0

    def test_latency_quantile_reports_bucket_bound(self):
        histogram = get_registry().histogram(
            "gelee_api_request_seconds", "Demo.", buckets=(0.1, 1.0, 5.0))
        engine = self._engine(
            [SloRule("p99", "latency-quantile", threshold=2.0,
                     quantile=0.5, min_samples=2)])
        for _ in range(10):
            histogram.observe(0.05)
        result = engine.evaluate()
        assert result["transitions"] == []
        alert = result["firing"] or None
        assert alert is None
        # The next window is dominated by slow requests: median jumps to
        # the 5.0 bucket bound, over the 2.0 threshold.
        for _ in range(10):
            histogram.observe(3.0)
        result = engine.evaluate()
        assert [t["kind"] for t in result["transitions"]] == ["alert.fired"]
        assert result["firing"][0]["value"] == 5.0

    def test_latency_quantile_overflow_breaches_as_inf(self):
        histogram = get_registry().histogram(
            "gelee_api_request_seconds", "Demo.", buckets=(0.1,))
        engine = self._engine(
            [SloRule("p99", "latency-quantile", threshold=10.0,
                     quantile=0.9, min_samples=1)])
        histogram.observe(99.0)  # beyond every bound: implicit +Inf bucket
        result = engine.evaluate()
        assert result["firing"][0]["value"] == float("inf")

    def test_heartbeat_miss_fires_on_stalled_renewals(self):
        histogram = get_registry().histogram(
            "gelee_election_heartbeat_seconds", "Demo.", buckets=(0.1, 1.0))
        events = []
        engine = self._engine(
            [SloRule("hb", "heartbeat-miss", threshold=0)],
            publish=lambda kind, rule, payload: events.append(kind))
        histogram.observe(0.01)
        assert engine.evaluate()["transitions"] == []  # baseline sighting
        assert engine.evaluate()["firing"], "no renewals since last eval"
        histogram.observe(0.01)  # renewals resume
        result = engine.evaluate()
        assert [t["kind"] for t in result["transitions"]] == ["alert.resolved"]
        assert events == ["alert.fired", "alert.resolved"]

    def test_gauge_kind_clears_when_instrument_disappears(self):
        gauge = get_registry().gauge("gelee_replication_lag_records", "Demo.")
        engine = self._engine(
            [SloRule("lag", "replication-lag", threshold=10)])
        gauge.set(50)
        assert engine.evaluate()["firing"]
        # A fresh registry (promotion rebuilds the node) has no lag gauge.
        set_registry(MetricsRegistry())
        engine._registry = get_registry()  # rebind like a rebuilt service
        result = engine.evaluate()
        assert [t["kind"] for t in result["transitions"]] == ["alert.resolved"]

    def test_rule_validation_and_lifecycle(self):
        with pytest.raises(ValueError):
            SloRule("bad", "no-such-kind", threshold=1)
        with pytest.raises(ValueError):
            SloRule("bad", "latency-quantile", threshold=1, quantile=1.5)
        engine = self._engine([])
        rule = engine.add_rule(SloRule("one", "replication-lag", threshold=1))
        with pytest.raises(ValueError):
            engine.add_rule(SloRule("one", "replication-lag", threshold=2))
        assert [r.name for r in engine.rules] == ["one"]
        engine.remove_rule("one")
        assert engine.rules == []
        assert rule.to_dict()["metric"] == "gelee_replication_lag_records"

    def test_default_catalog_covers_every_kind(self):
        rules = default_slo_rules()
        assert {rule.kind for rule in rules} == set(
            ("error-rate", "latency-quantile", "replication-lag",
             "in-flight-saturation", "heartbeat-miss"))
        # The stock thresholds stay quiet on a healthy idle service.
        engine = self._engine(rules)
        assert engine.evaluate()["transitions"] == []

    def test_status_shape(self):
        engine = self._engine(default_slo_rules())
        engine.evaluate()
        status = engine.status()
        assert len(status["rules"]) == len(status["alerts"]) == 5
        assert status["firing"] == 0
        assert status["evaluations"] == 1
        assert status["last_evaluated_at"] is not None


# ============================================================== alert surface
class TestAlertSurface:
    def _breach_rule(self):
        return SloRule("demo-errors", "error-rate", threshold=0.1,
                       error_status_prefixes=("4", "5"), min_samples=1,
                       severity="page", description="Demo breach rule.")

    def test_alert_events_are_published_and_journaled(self, root):
        config = PersistenceConfig(os.path.join(root, "primary"), fsync="never")
        service = GeleeService(shard_count=2, clock=SimulatedClock(),
                               persistence=config,
                               slo_rules=[self._breach_rule()])
        try:
            router = RestRouter(service=service)
            router.get("/v2/instances/missing")  # a 404 breaches the rule
            result = router.post("/v2/runtime/alerts:evaluate").body["data"]
            assert [t["kind"] for t in result["transitions"]] == ["alert.fired"]
            router.get("/v2/models")  # healthy window
            result = router.post("/v2/runtime/alerts:evaluate").body["data"]
            assert [t["kind"] for t in result["transitions"]] == \
                ["alert.resolved"]
            kinds = [record.kind for record
                     in scan_records(config.journal_directory)
                     if record.kind.startswith("alert.")]
            assert kinds == ["alert.fired", "alert.resolved"]
            fired = next(record for record
                         in scan_records(config.journal_directory)
                         if record.kind == "alert.fired")
            assert fired.actor == "slo-engine"
            assert fired.subject_id == "demo-errors"
            assert fired.payload["severity"] == "page"
        finally:
            service.close()

    def test_alerts_route_and_cockpit_rollup(self):
        service = GeleeService(shard_count=2, clock=SimulatedClock(),
                               slo_rules=[self._breach_rule()])
        try:
            router = RestRouter(service=service)
            router.get("/v2/instances/missing")
            service.evaluate_slos()
            status = router.get("/v2/runtime/alerts").body["data"]
            assert status["firing"] == 1
            (alert,) = [a for a in status["alerts"] if a["state"] == "firing"]
            assert alert["rule"] == "demo-errors"
            assert alert["fired_at"] is not None
            assert "node_id" in status
            summary = router.get("/v2/monitoring/summary").body["data"]
            rollup = summary["alerts"]
            assert rollup["firing"] == 1
            assert rollup["firing_rules"][0]["rule"] == "demo-errors"
            assert rollup["firing_rules"][0]["severity"] == "page"
        finally:
            service.close()

    def test_scheduler_job_evaluates_periodically(self):
        from repro.scheduler import SchedulerConfig

        clock = SimulatedClock()
        service = GeleeService(shard_count=2, clock=clock,
                               scheduler=SchedulerConfig(
                                   slo_interval_seconds=30.0),
                               slo_rules=[self._breach_rule()])
        try:
            assert service.scheduler.timers.get(
                "maintenance:slo-evaluate") is not None
            router = RestRouter(service=service)
            router.get("/v2/instances/missing")
            clock.advance(seconds=31.0)
            service.scheduler.tick()
            assert service.slo.firing(), "the recurring job should evaluate"
        finally:
            service.close()

    def test_client_sdk_traces_and_alerts(self, fresh_span_store):
        client = GeleeClient.in_process(shard_count=2, actor="alice")
        client.list_models()
        listing = client.traces(limit=3)
        assert listing["store"]["enabled"] is True
        assert listing["traces"]
        trace_id = listing["traces"][0]["trace_id"]
        doc = client.trace(trace_id)
        assert doc["trace_id"] == trace_id
        assert doc["tree"]
        result = client.evaluate_alerts()
        assert result["rules_evaluated"] == 5
        status = client.alerts()
        assert status["firing"] == 0

    def test_telemetry_snapshot_is_stamped(self, root):
        clock = SimulatedClock()
        service = GeleeService(shard_count=2, clock=clock)
        try:
            router = RestRouter(service=service)
            data = router.get("/v2/runtime/telemetry").body["data"]
            assert data["captured_at"] == clock.now().isoformat()
            assert "node_id" in data["node"]
        finally:
            service.close()

    def test_telemetry_snapshot_node_id_from_coordination(self, root):
        from repro.coordination import CoordinationConfig

        config = PersistenceConfig(os.path.join(root, "primary"), fsync="never")
        service = GeleeService(
            shard_count=2, clock=SimulatedClock(), persistence=config,
            coordination=CoordinationConfig(
                node_id="node-a", directory=os.path.join(root, "coord")))
        try:
            router = RestRouter(service=service)
            data = router.get("/v2/runtime/telemetry").body["data"]
            assert data["node"]["node_id"] == "node-a"
        finally:
            service.close()


# =============================================================== metric history
class _StubCounter:
    """A registry instrument stand-in whose value the test fully controls
    (the real Counter can only go up, so a restart-style reset needs one)."""

    def __init__(self, name, value=0.0):
        self.name = name
        self.value = value

    def snapshot(self):
        return {"name": self.name, "type": "counter",
                "series": [{"labels": {}, "value": self.value}]}


class _StubRegistry:
    def __init__(self, *instruments):
        self._instruments = list(instruments)

    def instruments(self):
        return list(self._instruments)


class TestMetricHistory:
    def make(self, registry=None, **kwargs):
        clock = SimulatedClock()
        history = MetricHistory(registry or get_registry(), clock=clock,
                                **kwargs)
        return history, clock

    def test_counter_points_are_deltas(self, fresh_registry):
        counter = fresh_registry.counter("jobs_total", "jobs")
        history, clock = self.make()
        counter.inc(5)
        history.capture()
        clock.advance(seconds=10)
        counter.inc(3)
        history.capture()
        result = history.query(series="jobs_total")
        assert result["series_matched"] == 1
        points = result["series"][0]["points"]
        assert [value for _, value in points] == [5.0, 3.0]
        assert points[0][0] < points[1][0]

    def test_counter_reset_midwindow_never_goes_negative(self):
        counter = _StubCounter("jobs_total", 50.0)
        history, clock = self.make(registry=_StubRegistry(counter))
        history.capture()
        clock.advance(seconds=10)
        counter.value = 58.0
        history.capture()
        clock.advance(seconds=10)
        counter.value = 3.0  # the process restarted: cumulative fell
        history.capture()
        points = history.query(series="jobs_total")["series"][0]["points"]
        assert [value for _, value in points] == [50.0, 8.0, 3.0]
        assert all(value >= 0 for _, value in points)

    def test_gauge_points_are_raw_values(self, fresh_registry):
        gauge = fresh_registry.gauge("depth", "queue depth")
        history, clock = self.make()
        for value in (4, 9, 2):
            gauge.set(value)
            history.capture()
            clock.advance(seconds=1)
        points = history.query(series="depth")["series"][0]["points"]
        assert [value for _, value in points] == [4.0, 9.0, 2.0]

    def test_histogram_fans_out_derived_series(self, fresh_registry):
        histogram = fresh_registry.histogram(
            "latency_seconds", "latency", buckets=(0.1, 1.0, 10.0))
        history, clock = self.make()
        for value in (0.05, 0.05, 0.5, 20.0):
            histogram.observe(value)
        history.capture()
        result = history.query(series="latency_seconds")
        names = {row["name"] for row in result["series"]}
        assert names == {"latency_seconds:rate", "latency_seconds:mean",
                         "latency_seconds:p50", "latency_seconds:p99"}
        by_name = {row["name"]: row["points"] for row in result["series"]}
        assert by_name["latency_seconds:rate"][0][1] == 4
        assert by_name["latency_seconds:mean"][0][1] == pytest.approx(
            (0.05 + 0.05 + 0.5 + 20.0) / 4)
        # p50: rank 2 of 4 falls in the 0.1 bucket; p99 past the last
        # bound lands in the implicit +Inf bucket.
        assert by_name["latency_seconds:p50"][0][1] == 0.1
        assert by_name["latency_seconds:p99"][0][1] == float("inf")

    def test_histogram_quantiles_use_interval_deltas(self, fresh_registry):
        histogram = fresh_registry.histogram(
            "latency_seconds", "latency", buckets=(0.1, 1.0, 10.0))
        history, clock = self.make()
        for _ in range(100):
            histogram.observe(0.05)
        history.capture()
        clock.advance(seconds=10)
        # This interval is all-slow; a cumulative quantile would still
        # answer 0.1, the interval quantile must say 10.0.
        for _ in range(10):
            histogram.observe(5.0)
        history.capture()
        points = history.query(
            series="latency_seconds:p50")["series"][0]["points"]
        assert [value for _, value in points] == [0.1, 10.0]

    def test_downsample_tier_promotion(self, fresh_registry):
        gauge = fresh_registry.gauge("depth", "queue depth")
        history, clock = self.make(max_points=100, downsample_every=3)
        for value in (1, 2, 3, 4, 5, 6, 7):
            gauge.set(value)
            history.capture()
            clock.advance(seconds=1)
        coarse = history.query(series="depth",
                               tier="downsampled")["series"][0]["points"]
        # 7 raw points promote 2 coarse points (3+3, one pending).
        assert len(coarse) == 2
        ts, mean, low, high, count = coarse[0]
        assert (mean, low, high, count) == (2.0, 1.0, 3.0, 3)
        ts, mean, low, high, count = coarse[1]
        assert (mean, low, high, count) == (5.0, 4.0, 6.0, 3)

    def test_empty_window_query_lists_series_without_points(self, fresh_registry):
        gauge = fresh_registry.gauge("depth", "queue depth")
        history, clock = self.make()
        gauge.set(1)
        history.capture()
        clock.advance(hours=1)
        result = history.query(series="depth", window_seconds=60)
        assert result["series_matched"] == 1
        assert result["series"][0]["points"] == []
        assert history.query(series="no_such_metric")["series_matched"] == 0

    def test_step_decimates_points(self, fresh_registry):
        gauge = fresh_registry.gauge("depth", "queue depth")
        history, clock = self.make()
        for value in range(10):
            gauge.set(value)
            history.capture()
            clock.advance(seconds=1)
        points = history.query(series="depth",
                               step_seconds=3)["series"][0]["points"]
        assert [value for _, value in points] == [0.0, 3.0, 6.0, 9.0]

    def test_raw_ring_wraps_keeping_newest(self, fresh_registry):
        gauge = fresh_registry.gauge("depth", "queue depth")
        history, clock = self.make(max_points=4)
        for value in range(10):
            gauge.set(value)
            history.capture()
            clock.advance(seconds=1)
        points = history.query(series="depth")["series"][0]["points"]
        assert [value for _, value in points] == [6.0, 7.0, 8.0, 9.0]
        timestamps = [ts for ts, _ in points]
        assert timestamps == sorted(timestamps)

    def test_wraparound_under_concurrent_writers(self, fresh_registry):
        gauge = fresh_registry.gauge("depth", "queue depth")
        history, _ = self.make(max_points=8)
        errors = []

        def hammer():
            try:
                for value in range(50):
                    gauge.set(value)
                    history.capture()
                    history.query(series="depth")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        points = history.query(series="depth")["series"][0]["points"]
        assert len(points) == 8
        assert all(point is not None and len(point) == 2 for point in points)
        assert history.stats()["captures"] == 200

    def test_max_series_cap_counts_drops(self, fresh_registry):
        for index in range(4):
            fresh_registry.gauge("g{}".format(index), "gauge").set(index)
        history, _ = self.make(max_series=2)
        history.capture()
        stats = history.stats()
        assert stats["series"] == 2
        assert stats["dropped_series"] == 2

    def test_disabled_history_is_a_noop(self, fresh_registry):
        fresh_registry.gauge("depth", "queue depth").set(1)
        history, _ = self.make(enabled=False)
        assert history.capture() == 0
        assert history.stats()["captures"] == 0

    def test_recent_deltas_latest_counter_point(self, fresh_registry):
        counter = fresh_registry.counter("gelee_api_requests_total", "reqs",
                                         labelnames=("route",))
        history, clock = self.make()
        counter.inc(5, route="GET /v2/instances")
        history.capture()
        clock.advance(seconds=5)
        counter.inc(2, route="GET /v2/instances")
        history.capture()
        deltas = history.recent_deltas(("gelee_api_requests_total",))
        assert deltas == {
            'gelee_api_requests_total{route="GET /v2/instances"}': 2.0}

    def test_validation(self, fresh_registry):
        with pytest.raises(ValueError):
            MetricHistory(fresh_registry, max_points=0)
        with pytest.raises(ValueError):
            MetricHistory(fresh_registry, downsample_every=1)
        with pytest.raises(ValueError):
            MetricHistory(fresh_registry, quantiles=(1.5,))
        history, _ = self.make()
        with pytest.raises(ValueError):
            history.query(tier="weekly")


# ==================================================================== log ring
class TestLogRing:
    def test_append_stamps_sequence_and_copies(self):
        ring = LogRing(capacity=4)
        record = {"ts": "2026-01-01T00:00:00", "level": "info", "event": "a"}
        ring.append(record)
        stored = ring.query()[0]
        assert stored["seq"] == 1
        assert "seq" not in record  # the caller's dict is untouched
        stored["event"] = "mutated"
        assert ring.query()[0]["event"] == "a"  # query hands out copies

    def test_eviction_keeps_newest(self):
        ring = LogRing(capacity=3)
        for index in range(5):
            ring.append({"event": "e{}".format(index)})
        records = ring.query()
        assert [record["event"] for record in records] == ["e2", "e3", "e4"]
        stats = ring.stats()
        assert stats["size"] == 3 and stats["appended"] == 5
        assert stats["dropped"] == 2

    def test_query_filters_and_limit(self):
        ring = LogRing()
        ring.append({"ts": "T1", "level": "debug", "component": "gateway",
                     "trace_id": "req-1", "event": "a"})
        ring.append({"ts": "T2", "level": "warning",
                     "component": "replication.stream", "trace_id": "req-2",
                     "event": "b"})
        ring.append({"ts": "T3", "level": "error", "component": "gateway",
                     "trace_id": "req-1", "event": "c"})
        assert [r["event"] for r in ring.query(trace_id="req-1")] == ["a", "c"]
        assert [r["event"] for r in ring.query(level="warning")] == ["b", "c"]
        assert [r["event"]
                for r in ring.query(component="replication")] == ["b"]
        assert [r["event"] for r in ring.query(since="T2")] == ["b", "c"]
        assert [r["event"] for r in ring.query(limit=1)] == ["c"]
        with pytest.raises(ValueError):
            ring.query(level="loud")

    def test_disabled_ring_drops_appends(self):
        ring = LogRing(capacity=4, enabled=False)
        ring.append({"event": "a"})
        assert ring.query() == []

    def test_emitter_fans_out_into_default_ring(self, fresh_log_ring):
        sink = io.StringIO()
        log = JsonLogEmitter("test", sink=sink)
        with trace_scope("req-ring"):
            log.info("ring.event", answer=42)
        assert json.loads(sink.getvalue())["event"] == "ring.event"
        records = fresh_log_ring.query(trace_id="req-ring")
        assert len(records) == 1
        assert records[0]["answer"] == 42

    def test_ring_as_sink_is_not_double_appended(self, fresh_log_ring):
        log = JsonLogEmitter("test", sink=fresh_log_ring)
        log.info("once")
        assert len(fresh_log_ring.query()) == 1

    def test_callable_sink_is_serialised_under_the_lock(self):
        seen = []
        log = JsonLogEmitter("test", sink=seen.append)
        threads = [threading.Thread(target=log.info, args=("event",))
                   for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(seen) == 8

    def test_reset_loggers_clears_the_cache(self):
        first = get_logger("reset-demo")
        assert get_logger("reset-demo") is first
        reset_loggers()
        assert get_logger("reset-demo") is not first


# ============================================================ contention tools
class TestTimedLock:
    def test_samples_every_acquisition_when_asked(self, fresh_registry):
        lock = TimedLock(site="unit", sample_every=1)
        for _ in range(5):
            with lock:
                pass
        snapshot = fresh_registry.get("gelee_lock_wait_seconds").snapshot()
        series = snapshot["series"]
        assert len(series) == 1
        assert series[0]["labels"] == {"site": "unit"}
        assert series[0]["count"] == 5

    def test_first_acquisition_is_always_sampled(self, fresh_registry):
        lock = TimedLock(site="unit", sample_every=16)
        with lock:
            pass
        snapshot = fresh_registry.get("gelee_lock_wait_seconds").snapshot()
        assert snapshot["series"][0]["count"] == 1

    def test_wraps_reentrant_lock_semantics(self, fresh_registry):
        lock = TimedLock(site="unit")
        with lock:
            with lock:  # re-entrant like the RLock it wraps
                pass
        assert lock.acquire(blocking=False)
        lock.release()

    def test_condition_over_wrapped_lock(self, fresh_registry):
        lock = TimedLock(site="unit")
        condition = threading.Condition(lock.wrapped)
        ready = []

        def waiter():
            with condition:
                ready.append(True)
                condition.wait(timeout=5)
                ready.append("woken")

        thread = threading.Thread(target=waiter)
        thread.start()
        while not ready:
            pass
        with lock:  # the TimedLock and the condition share ownership
            condition.notify_all()
        thread.join(timeout=5)
        assert ready == [True, "woken"]


class TestQueueDepthCapture:
    def test_worker_pool_observes_depth_per_submit(self, fresh_registry):
        gate = threading.Event()
        pool = WorkerPool(1, name="depth-test")
        try:
            handles = [pool.submit(gate.wait, 5) for _ in range(4)]
            gate.set()
            for handle in handles:
                handle.get(timeout=5)
        finally:
            pool.close()
        snapshot = fresh_registry.get("gelee_queue_depth").snapshot()
        series = {tuple(sorted(row["labels"].items())): row
                  for row in snapshot["series"]}
        row = series[(("pool", "depth-test"),)]
        assert row["count"] == 4
        # With one blocked worker, at least one submit saw a backlog.
        assert row["sum"] >= 1


class TestSamplingProfiler:
    def test_sample_once_folds_other_threads(self):
        profiler = SamplingProfiler()
        release = threading.Event()

        def parked():
            release.wait(5)

        thread = threading.Thread(target=parked, name="parked")
        thread.start()
        try:
            folded = profiler.sample_once()
        finally:
            release.set()
            thread.join()
        assert folded >= 1
        status = profiler.status()
        assert status["samples"] == 1
        assert status["flame"]["name"] == "process"
        assert status["flame"]["value"] >= 1
        labels = {child["name"] for child in status["flame"]["children"]}
        assert any("(" in label for label in labels)

    def test_start_stop_and_reset(self):
        profiler = SamplingProfiler(interval_seconds=0.005)
        assert profiler.start() is True
        assert profiler.start() is False  # already running
        assert profiler.running
        assert profiler.stop() is True
        assert profiler.stop() is False
        assert not profiler.running
        profiler.reset()
        status = profiler.status()
        assert status["samples"] == 0 and status["nodes"] == 1

    def test_interval_is_clamped(self):
        profiler = SamplingProfiler(interval_seconds=0.0)
        assert profiler.interval_seconds >= 0.005

    def test_node_budget_truncates(self):
        profiler = SamplingProfiler(max_nodes=16)
        with profiler._lock:
            for index in range(64):
                profiler._fold_locked(
                    ["f{} (mod.py:{})".format(index, index)])
        status = profiler.status()
        assert status["nodes"] <= 16
        assert status["truncated_stacks"] > 0


# ================================================================ cluster view
class TestClusterView:
    def test_single_node_view(self):
        router = RestRouter(shard_count=2)
        data = router.get("/v2/runtime/cluster").body["data"]
        assert data["partial"] is False
        assert data["node_count"] == 1
        assert data["unreachable"] == 0
        row = data["nodes"][0]
        assert row["reachable"] is True and row["via"] == "self"
        assert row["role"] == "primary"
        assert data["reported_by"] == row["node_id"]
        assert "history" in row and "alerts" in row

    def test_two_nodes_merge_in_process(self):
        router_a = RestRouter(shard_count=2)
        router_b = RestRouter(shard_count=2)
        router_a.service.cluster_register("node-b", router=router_b)
        data = router_a.get("/v2/runtime/cluster").body["data"]
        assert data["node_count"] == 2
        assert data["partial"] is False
        via = {row["via"] for row in data["nodes"]}
        assert via == {"self", "in-process"}

    def test_unreachable_peer_marks_partial_not_error(self):
        router = RestRouter(shard_count=2)
        router.service.cluster_register("dead-node", host="127.0.0.1", port=9)
        response = router.get("/v2/runtime/cluster")
        assert response.status == 200  # fan-out never fails the view
        data = response.body["data"]
        assert data["partial"] is True
        assert data["unreachable"] == 1
        dead = [row for row in data["nodes"]
                if row["node_id"] == "dead-node"][0]
        assert dead["reachable"] is False
        assert dead["error"]["code"] == "NODE_UNREACHABLE"
        assert dead["error"]["details"]["node_id"] == "dead-node"

    def test_register_route_and_validation(self):
        router = RestRouter(shard_count=2)
        created = router.post("/v2/runtime/cluster:register",
                              body={"node_id": "peer-1",
                                    "url": "http://127.0.0.1:9"})
        assert created.status == 201
        assert created.body["data"]["transport"] == "http"
        assert created.body["data"]["endpoint"] == "127.0.0.1:9"
        missing = router.post("/v2/runtime/cluster:register",
                              body={"node_id": "peer-2"})
        assert missing.status == 400
        bad_url = router.post("/v2/runtime/cluster:register",
                              body={"node_id": "peer-3", "url": "nonsense"})
        assert bad_url.status == 400

    def test_replacing_a_peer_registration(self):
        router = RestRouter(shard_count=2)
        other = RestRouter(shard_count=2)
        view = router.service.cluster
        view.register("peer", router=other)
        assert view.peers()[0]["transport"] == "in-process"
        view.register("peer", host="127.0.0.1", port=9)
        assert view.peers()[0]["transport"] == "http"
        assert view.deregister("peer") is True
        assert view.deregister("peer") is False

    def test_discovered_leader_without_transport_is_reported(self, root):
        from repro.coordination import CoordinationConfig, MemoryLeaseStore

        store = MemoryLeaseStore()
        config = PersistenceConfig(os.path.join(root, "primary"),
                                   fsync="never")
        service = GeleeService(
            shard_count=2, clock=SimulatedClock(), persistence=config,
            coordination=CoordinationConfig(store=store, node_id="node-a"))
        try:
            router = RestRouter(service=service)
            # The leader is node-a itself -> deduplicated, not unreachable.
            data = router.get("/v2/runtime/cluster").body["data"]
            assert data["node_count"] == 1 and not data["partial"]
        finally:
            service.close()


# ======================================================= observability routes
class TestObservabilityRoutes:
    def test_history_route_capture_and_query(self):
        clock = SimulatedClock()
        service = GeleeService(shard_count=2, clock=clock)
        try:
            router = RestRouter(service=service)
            router.get("/v2/models")
            captured = router.post("/v2/runtime/telemetry/history:capture")
            assert captured.status == 200
            assert captured.body["data"]["points_recorded"] > 0
            clock.advance(seconds=30)
            router.get("/v2/models")
            router.post("/v2/runtime/telemetry/history:capture")
            data = router.get("/v2/runtime/telemetry/history",
                              series="gelee_api_requests_total").body["data"]
            assert data["captures"] == 2
            assert data["series_matched"] >= 1
            for row in data["series"]:
                assert row["kind"] == "counter"
                assert row["points"]
            windowed = router.get("/v2/runtime/telemetry/history",
                                  series="gelee_api_requests_total",
                                  window="10").body["data"]
            assert all(len(row["points"]) <= 1 for row in windowed["series"])
            bad = router.get("/v2/runtime/telemetry/history", tier="weekly")
            assert bad.status == 400
            not_a_number = router.get("/v2/runtime/telemetry/history",
                                      window="soon")
            assert not_a_number.status == 400
        finally:
            service.close()

    def test_scheduler_drives_history_captures(self):
        from repro.scheduler import SchedulerConfig

        clock = SimulatedClock()
        service = GeleeService(
            shard_count=2, clock=clock,
            scheduler=SchedulerConfig(history_interval_seconds=30))
        try:
            router = RestRouter(service=service)
            router.get("/v2/models")
            clock.advance(seconds=31)
            service.scheduler.tick()
            assert service.history.stats()["captures"] == 1
            clock.advance(seconds=31)
            service.scheduler.tick()
            assert service.history.stats()["captures"] == 2
        finally:
            service.close()

    def test_logs_route_filters_by_trace_id(self, fresh_log_ring):
        router = RestRouter(shard_count=2)
        response = router.get("/v2/models")
        request_id = response.headers["X-Request-Id"]
        data = router.get("/v2/runtime/logs",
                          trace_id=request_id).body["data"]
        assert data["records"]
        record = data["records"][-1]
        assert record["trace_id"] == request_id
        assert record["event"] == "request.handled"
        assert record["component"] == "gateway"
        assert record["route"] == "GET /v2/models"
        assert data["stats"]["size"] >= 1
        bad = router.get("/v2/runtime/logs", level="loud")
        assert bad.status == 400

    def test_gateway_client_errors_still_log_at_info(self, fresh_log_ring):
        router = RestRouter(shard_count=2)
        router.get("/v2/instances/i-missing")
        records = fresh_log_ring.query(component="gateway")
        assert records[-1]["status"] == 404
        assert records[-1]["level"] == "info"

    def test_profile_routes(self):
        router = RestRouter(shard_count=2)
        idle = router.get("/v2/runtime/profile").body["data"]
        assert idle["running"] is False and idle["samples"] == 0
        started = router.post("/v2/runtime/profile:start",
                              body={"interval_seconds": 0.005})
        assert started.status == 200
        assert started.body["data"]["running"] is True
        stopped = router.post("/v2/runtime/profile:stop")
        assert stopped.body["data"]["running"] is False
        final = router.get("/v2/runtime/profile").body["data"]
        assert final["flame"]["name"] == "process"

    def test_replica_serves_observability_posts(self, root):
        config = PersistenceConfig(os.path.join(root, "primary"),
                                   fsync="never")
        service = GeleeService(shard_count=2, clock=SimulatedClock(),
                               persistence=config)
        ReplicationPrimary(service)
        replica = ReadReplica(JournalShippingSource(config), shard_count=2,
                              clock=SimulatedClock())
        replica.sync()
        router = replica.router()
        assert router.post(
            "/v2/runtime/telemetry/history:capture").status == 200
        assert router.post("/v2/runtime/profile:start").status == 200
        assert router.post("/v2/runtime/profile:stop").status == 200
        # Writes stay guarded.
        denied = router.post("/v2/models", body={"model": {}})
        assert denied.status == 409
        service.close()

    def test_monitoring_summary_observability_rollup(self):
        router = RestRouter(shard_count=2)
        router.post("/v2/runtime/telemetry/history:capture")
        summary = router.get("/v2/monitoring/summary").body["data"]
        rollup = summary["observability"]
        assert rollup["history"]["captures"] == 1
        assert rollup["logs"]["capacity"] >= 1
        assert rollup["profiler"]["running"] is False

    def test_client_sdk_observability_methods(self):
        client = GeleeClient.in_process(shard_count=2, actor="alice")
        client.capture_history()
        history = client.telemetry_history(series="gelee_api_requests_total")
        assert history["captures"] == 1
        logs = client.logs(component="gateway")
        assert logs["records"]
        cluster = client.cluster()
        assert cluster["node_count"] == 1
        self_row = client.cluster_self()
        assert self_row["node_id"] == cluster["reported_by"]
        registered = client.register_cluster_node("peer",
                                                  url="http://127.0.0.1:9")
        assert registered["transport"] == "http"
        assert client.cluster()["partial"] is True
        client.profile_start(interval_seconds=0.005)
        assert client.profile()["running"] is True
        assert client.profile_stop()["running"] is False


# ============================================================ span re-anchoring
class TestSpanStoreAnchors:
    def test_to_wall_maps_perf_to_wall_clock(self):
        import time as _time

        store = SpanStore()
        now_wall = _time.time()
        mapped = store.to_wall(_time.perf_counter())
        assert abs(mapped - now_wall) < 1.0

    def test_each_store_carries_its_own_anchor(self):
        store_a = SpanStore()
        store_b = SpanStore()
        store_b.reanchor()
        assert store_a._anchor_perf <= store_b._anchor_perf

    def test_reanchor_refreshes_the_mapping(self):
        import time as _time

        store = SpanStore()
        perf_before = store._anchor_perf
        _time.sleep(0.01)
        store.reanchor()
        # The anchor pair moved forward; the wall mapping stays accurate.
        # (The two clocks are read a hair apart, so the *mapping* of a
        # fixed perf instant may jitter by sub-microsecond either way —
        # only the anchors themselves are strictly monotonic.)
        assert store._anchor_perf > perf_before
        assert abs(store.to_wall(_time.perf_counter()) - _time.time()) < 1.0
