"""Tests for :mod:`repro.telemetry` and the observability surface.

Covers the metrics registry (instruments, exposition, isolation), trace
propagation from the gateway through dispatch to the journal and the
replication stream (PR 8's correlation story), the ``/v2/metrics`` and
``/v2/runtime/telemetry`` routes on primary and replica, the stable
``runtime_stats`` dispatch schema, and the structured log emitter.
"""

import io
import json
import os
import shutil
import tempfile
import threading

import pytest

from repro.clock import SimulatedClock
from repro.client import GeleeClient
from repro.model import LifecycleBuilder
from repro.persistence import PersistenceConfig
from repro.persistence.journal import scan_records
from repro.replication import JournalShippingSource, ReadReplica, ReplicationPrimary
from repro.service import GeleeService
from repro.service.rest import RestRouter
from repro.telemetry import (
    JsonLogEmitter,
    MetricsRegistry,
    TraceContext,
    current_trace_id,
    get_registry,
    new_trace_id,
    set_registry,
    trace_scope,
)
from repro.telemetry.registry import DEFAULT_FAST_BUCKETS


@pytest.fixture(autouse=True)
def fresh_registry():
    """Each test gets its own process registry (components bind at build)."""
    previous = set_registry(MetricsRegistry())
    yield get_registry()
    set_registry(previous)


@pytest.fixture
def root():
    directory = tempfile.mkdtemp(prefix="gelee-telemetry-")
    yield directory
    shutil.rmtree(directory, ignore_errors=True)


def simple_model(name="Telemetry lifecycle"):
    builder = LifecycleBuilder(name)
    builder.phase("Draft")
    builder.phase("Review")
    builder.terminal("Done")
    builder.flow("Draft", "Review", "Done")
    return builder.build()


def make_instance(service, model):
    adapter = service.environment.adapter("Google Doc")
    resource = adapter.create_resource("telemetry doc", owner="alice")
    instance = service.manager.instantiate(model.uri, resource, owner="alice")
    return instance.instance_id


# =========================================================== registry basics
class TestRegistry:
    def test_counter_accumulates_per_label_set(self, fresh_registry):
        counter = fresh_registry.counter("demo_total", "Demo.", labelnames=("kind",))
        counter.inc(kind="a")
        counter.inc(2, kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 3
        assert counter.value(kind="b") == 1

    def test_counter_rejects_decrease_and_wrong_labels(self, fresh_registry):
        counter = fresh_registry.counter("demo_total", "Demo.", labelnames=("kind",))
        with pytest.raises(ValueError):
            counter.inc(-1, kind="a")
        with pytest.raises(ValueError):
            counter.inc(other="a")

    def test_gauge_set_inc_dec(self, fresh_registry):
        gauge = fresh_registry.gauge("demo_gauge", "Demo.")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6

    def test_histogram_buckets_and_summary(self, fresh_registry):
        histogram = fresh_registry.histogram(
            "demo_seconds", "Demo.", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        cell = histogram.snapshot()["series"][0]
        assert cell["count"] == 4
        assert cell["sum"] == pytest.approx(55.55)

    def test_get_or_create_is_idempotent_but_typed(self, fresh_registry):
        first = fresh_registry.counter("demo_total", "Demo.")
        assert fresh_registry.counter("demo_total", "Demo.") is first
        with pytest.raises(ValueError):
            fresh_registry.gauge("demo_total", "Demo.")
        with pytest.raises(ValueError):
            fresh_registry.counter("demo_total", "Demo.", labelnames=("kind",))

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("demo_total", "Demo.")
        counter.inc()
        histogram = registry.histogram("demo_seconds", "Demo.",
                                       buckets=DEFAULT_FAST_BUCKETS)
        histogram.observe(1.0)
        assert counter.value() == 0
        assert registry.snapshot()["enabled"] is False

    def test_prometheus_exposition_shape(self, fresh_registry):
        fresh_registry.counter("demo_total", "Demo counter.",
                               labelnames=("kind",)).inc(kind='with "quotes"')
        fresh_registry.gauge("demo_gauge", "Demo gauge.").set(3)
        fresh_registry.histogram("demo_seconds", "Demo histogram.",
                                 buckets=(0.5, 1.0)).observe(0.7)
        text = fresh_registry.render_prometheus()
        assert text.endswith("\n")
        assert "# HELP demo_total Demo counter." in text
        assert "# TYPE demo_total counter" in text
        assert 'demo_total{kind="with \\"quotes\\""} 1' in text
        assert "demo_gauge 3" in text
        # Cumulative buckets plus the +Inf catch-all and _sum/_count.
        assert 'demo_seconds_bucket{le="0.5"} 0' in text
        assert 'demo_seconds_bucket{le="1"} 1' in text
        assert 'demo_seconds_bucket{le="+Inf"} 1' in text
        assert "demo_seconds_count 1" in text

    def test_snapshot_stamps_clock(self):
        clock = SimulatedClock()
        registry = MetricsRegistry(clock=clock)
        snapshot = registry.snapshot()
        assert snapshot["scraped_at"] == clock.now().isoformat()

    def test_timer_context_manager_observes(self, fresh_registry):
        histogram = fresh_registry.histogram("demo_seconds", "Demo.",
                                             buckets=DEFAULT_FAST_BUCKETS)
        with fresh_registry.time_histogram(histogram):
            pass
        assert histogram.snapshot()["series"][0]["count"] == 1


# ================================================================== tracing
class TestTracing:
    def test_scope_nesting_restores_previous(self):
        assert current_trace_id() is None
        with trace_scope("outer"):
            assert current_trace_id() == "outer"
            with trace_scope("inner"):
                assert current_trace_id() == "inner"
            assert current_trace_id() == "outer"
        assert current_trace_id() is None

    def test_none_scope_is_noop(self):
        with trace_scope("outer"):
            with trace_scope(None):
                assert current_trace_id() == "outer"

    def test_ensure_reuses_active_id(self):
        with trace_scope("outer"):
            with TraceContext.ensure("tick"):
                assert current_trace_id() == "outer"
        with TraceContext.ensure("tick"):
            assert current_trace_id().startswith("tick-")

    def test_ids_are_unique(self):
        assert new_trace_id() != new_trace_id()

    def test_scope_is_thread_local(self):
        seen = {}

        def worker():
            seen["in_thread"] = current_trace_id()

        with trace_scope("main-only"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["in_thread"] is None


# ======================================================= gateway middleware
class TestGatewayObservability:
    def test_request_id_header_echoed_and_fresh(self):
        router = RestRouter()
        first = router.get("/v2/models")
        second = router.get("/v2/models")
        assert first.headers["X-Request-Id"].startswith("req-")
        assert second.headers["X-Request-Id"] != first.headers["X-Request-Id"]
        assert first.body["meta"]["request_id"] == first.headers["X-Request-Id"]

    def test_inbound_request_id_honoured_over_http(self):
        from urllib.request import Request as UrlRequest, urlopen

        from repro.service.http import GeleeHttpServer

        service = GeleeService()
        server = GeleeHttpServer(RestRouter(service)).start()
        try:
            call = UrlRequest(server.base_url + "/v2/models",
                              headers={"X-Request-Id": "req-upstream-7"})
            with urlopen(call) as response:
                envelope = json.loads(response.read().decode("utf-8"))
                assert response.headers["X-Request-Id"] == "req-upstream-7"
            assert envelope["meta"]["request_id"] == "req-upstream-7"
            # A blank header does not suppress minting.
            call = UrlRequest(server.base_url + "/v2/models",
                              headers={"X-Request-Id": "  "})
            with urlopen(call) as response:
                assert response.headers["X-Request-Id"].startswith("req-")
        finally:
            server.stop()
            service.close()

    def test_request_id_in_error_envelope(self):
        router = RestRouter()
        response = router.get("/v2/instances/missing")
        assert response.status == 404
        assert response.body["error"]["code"] == "INSTANCE_NOT_FOUND"
        assert response.body["meta"]["request_id"] == \
            response.headers["X-Request-Id"]

    def test_timing_middleware_records_stats_and_series(self, fresh_registry):
        router = RestRouter()
        router.get("/v2/models")
        router.get("/v2/instances/missing")
        snapshot = router.stats.snapshot()
        assert snapshot["requests"] == 2
        assert snapshot["errors"] == 1
        counter = fresh_registry.get("gelee_api_requests_total")
        assert counter.value(route="GET /v2/models", status="200") == 1
        assert counter.value(route="GET /v2/instances/{instance_id}",
                             status="404") == 1
        latency = fresh_registry.get("gelee_api_request_seconds")
        series = latency.snapshot()["series"]
        assert sum(cell["count"] for cell in series) == 2


# =============================================== request-id → journal → replica
class TestTracePropagation:
    def test_origin_request_id_reaches_journal_and_replica(self, root):
        config = PersistenceConfig(os.path.join(root, "primary"), fsync="never")
        service = GeleeService(shard_count=2, clock=SimulatedClock(),
                               persistence=config)
        ReplicationPrimary(service)
        model = simple_model()
        router = RestRouter(service=service)
        response = router.post("/v2/models", body={"model": model.to_dict()},
                               actor="alice")
        assert response.status == 201
        request_id = response.headers["X-Request-Id"]

        records = [record for record in scan_records(config.journal_directory)
                   if record.payload.get("origin_request_id") == request_id]
        assert records, "journal record should carry the gateway request id"

        replica = ReadReplica(JournalShippingSource(config), shard_count=2,
                              clock=SimulatedClock())
        replica.sync()
        entries = [entry for entry in replica.service.execution_log.entries()
                   if entry.payload.get("origin_request_id") == request_id]
        assert entries, "replica's applied copy should carry the same id"
        service.close()

    def test_dispatcher_carries_trace_across_worker_pool(self):
        service = GeleeService(shard_count=2, clock=SimulatedClock(),
                               completion_workers=2)
        model = simple_model()
        service.manager.publish_model(model, actor="alice")
        instance_id = make_instance(service, model)
        router = RestRouter(service=service)
        response = router.post(
            "/v2/instances/{}:start".format(instance_id), actor="alice")
        assert response.status == 200
        request_id = response.headers["X-Request-Id"]
        service.manager.drain_in_flight(timeout=5.0)
        entries = [entry for entry in service.execution_log.entries()
                   if entry.payload.get("origin_request_id") == request_id]
        assert entries, "pooled completion events should keep the request id"
        service.close()

    def test_scheduler_tick_gets_tick_origin(self, fresh_registry):
        service = GeleeService(shard_count=2, clock=SimulatedClock())
        captured = []
        original = service.scheduler.timers.fire_due

        def spy(**kwargs):
            captured.append(current_trace_id())
            return original(**kwargs)

        service.scheduler.timers.fire_due = spy
        service.scheduler.tick()
        assert captured and captured[0].startswith("tick-")
        service.close()


# ============================================================== wire surface
class TestTelemetryRoutes:
    def test_metrics_route_is_plain_text(self, fresh_registry):
        router = RestRouter(shard_count=2)
        response = router.get("/v2/metrics")
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        assert isinstance(response.body, str)
        assert "# TYPE gelee_api_requests_total counter" in response.body
        assert "# TYPE gelee_dispatch_wait_seconds histogram" in response.body
        assert "gelee_dispatch_in_flight 0" in response.body

    def test_telemetry_route_returns_envelope_snapshot(self):
        router = RestRouter(shard_count=2)
        response = router.get("/v2/runtime/telemetry")
        assert response.status == 200
        data = response.body["data"]
        assert data["enabled"] is True
        assert data["node"]["replication_role"] == "primary"
        names = {metric["name"] for metric in data["metrics"]}
        assert "gelee_api_requests_total" in names

    def test_metrics_on_primary_and_replica(self, root):
        config = PersistenceConfig(os.path.join(root, "primary"), fsync="never")
        service = GeleeService(shard_count=2, clock=SimulatedClock(),
                               persistence=config)
        ReplicationPrimary(service)
        model = simple_model()
        primary_router = RestRouter(service=service)
        primary_router.post("/v2/models", body={"model": model.to_dict()},
                            actor="alice")
        replica = ReadReplica(JournalShippingSource(config), shard_count=2,
                              clock=SimulatedClock())
        replica.sync()
        primary_text = primary_router.get("/v2/metrics").body
        assert "gelee_journal_last_seq" in primary_text
        replica_text = replica.router().get("/v2/metrics").body
        assert "gelee_replication_lag_records 0" in replica_text
        assert "gelee_replication_records_applied_total" in replica_text
        service.close()

    def test_monitoring_summary_includes_telemetry_rollup(self):
        router = RestRouter(shard_count=2)
        router.get("/v2/models")
        summary = router.get("/v2/monitoring/summary").body["data"]
        rollup = summary["telemetry"]
        assert rollup["enabled"] is True
        assert rollup["api_requests"] >= 1

    def test_client_sdk_metrics_and_telemetry(self):
        client = GeleeClient.in_process(shard_count=2, actor="alice")
        text = client.metrics()
        assert isinstance(text, str)
        assert "# TYPE gelee_api_request_seconds histogram" in text
        status = client.telemetry_status()
        assert status["enabled"] is True
        assert any(metric["name"] == "gelee_api_requests_total"
                   for metric in status["metrics"])


# ======================================================== runtime_stats schema
class TestRuntimeStatsSchema:
    DISPATCH_KEYS = {"mode", "in_flight", "queue_depth", "worker_pool"}

    def test_single_manager_schema(self):
        service = GeleeService(clock=SimulatedClock())
        stats = service.runtime_stats()
        assert set(stats["dispatch"]) == self.DISPATCH_KEYS
        assert stats["dispatch"]["mode"] == "inline"
        assert stats["dispatch"]["worker_pool"] is None
        service.close()

    def test_sharded_pooled_schema_surfaces_queue_depth(self):
        service = GeleeService(shard_count=4, clock=SimulatedClock(),
                               completion_workers=2)
        stats = service.runtime_stats()
        assert set(stats["dispatch"]) == self.DISPATCH_KEYS
        assert stats["dispatch"]["mode"] == "pooled"
        assert stats["dispatch"]["worker_pool"]["workers"] >= 1
        assert stats["dispatch"]["queue_depth"] == \
            stats["dispatch"]["worker_pool"]["queued"]
        # Legacy flat keys stay for older dashboards.
        assert stats["dispatch_mode"] == "pooled"
        assert stats["in_flight_actions"] == stats["dispatch"]["in_flight"]
        service.close()


# ================================================================ structured log
class TestJsonLog:
    def test_emits_json_lines_with_trace_id(self):
        sink = io.StringIO()
        clock = SimulatedClock()
        log = JsonLogEmitter("test", sink=sink, clock=clock)
        with trace_scope("req-abc"):
            log.info("event.one", answer=42)
        log.warning("event.two")
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert lines[0]["event"] == "event.one"
        assert lines[0]["trace_id"] == "req-abc"
        assert lines[0]["answer"] == 42
        assert lines[0]["component"] == "test"
        assert "trace_id" not in lines[1]
        assert lines[1]["level"] == "warning"

    def test_min_level_filters(self):
        sink = io.StringIO()
        log = JsonLogEmitter("test", sink=sink, min_level="warning")
        log.debug("dropped")
        log.info("dropped")
        log.error("kept")
        lines = sink.getvalue().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "kept"
