"""Tests for :mod:`repro.telemetry` and the observability surface.

Covers the metrics registry (instruments, exposition, isolation), trace
propagation from the gateway through dispatch to the journal and the
replication stream (PR 8's correlation story), the ``/v2/metrics`` and
``/v2/runtime/telemetry`` routes on primary and replica, the stable
``runtime_stats`` dispatch schema, and the structured log emitter.

PR 9 adds the span layer and the SLO engine: span-tree construction and
thread-hop parenting, the ``SpanStore`` ring with slow-trace retention,
the end-to-end span chain for one request (gateway → shard → dispatch →
journal, and across replication/promotion), SLO rule evaluation with
firing/clearing edges published as journaled bus events, and the
``/v2/runtime/traces`` / ``/v2/runtime/alerts`` wire surface.
"""

import io
import json
import os
import shutil
import tempfile
import threading

import pytest

from repro.actions import library
from repro.clock import SimulatedClock
from repro.client import GeleeClient
from repro.model import LifecycleBuilder
from repro.persistence import PersistenceConfig
from repro.persistence.journal import scan_records
from repro.replication import JournalShippingSource, ReadReplica, ReplicationPrimary
from repro.service import GeleeService
from repro.service.rest import RestRouter
from repro.telemetry import (
    JsonLogEmitter,
    MetricsRegistry,
    SloEngine,
    SloRule,
    SpanContext,
    SpanStore,
    TraceContext,
    current_span_context,
    current_span_id,
    current_trace_id,
    default_slo_rules,
    get_registry,
    get_span_store,
    new_trace_id,
    set_registry,
    set_span_store,
    span_scope,
    trace_scope,
)
from repro.telemetry.registry import DEFAULT_FAST_BUCKETS


@pytest.fixture(autouse=True)
def fresh_registry():
    """Each test gets its own process registry (components bind at build)."""
    previous = set_registry(MetricsRegistry())
    yield get_registry()
    set_registry(previous)


@pytest.fixture(autouse=True)
def fresh_span_store():
    """Each test gets its own process span store (instrumented code looks
    it up per-span, so swapping the default is full isolation)."""
    previous = get_span_store()
    store = set_span_store(SpanStore())
    yield store
    set_span_store(previous)


@pytest.fixture
def root():
    directory = tempfile.mkdtemp(prefix="gelee-telemetry-")
    yield directory
    shutil.rmtree(directory, ignore_errors=True)


def simple_model(name="Telemetry lifecycle"):
    builder = LifecycleBuilder(name)
    builder.phase("Draft")
    builder.phase("Review")
    builder.terminal("Done")
    builder.flow("Draft", "Review", "Done")
    return builder.build()


def make_instance(service, model):
    adapter = service.environment.adapter("Google Doc")
    resource = adapter.create_resource("telemetry doc", owner="alice")
    instance = service.manager.instantiate(model.uri, resource, owner="alice")
    return instance.instance_id


# =========================================================== registry basics
class TestRegistry:
    def test_counter_accumulates_per_label_set(self, fresh_registry):
        counter = fresh_registry.counter("demo_total", "Demo.", labelnames=("kind",))
        counter.inc(kind="a")
        counter.inc(2, kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 3
        assert counter.value(kind="b") == 1

    def test_counter_rejects_decrease_and_wrong_labels(self, fresh_registry):
        counter = fresh_registry.counter("demo_total", "Demo.", labelnames=("kind",))
        with pytest.raises(ValueError):
            counter.inc(-1, kind="a")
        with pytest.raises(ValueError):
            counter.inc(other="a")

    def test_gauge_set_inc_dec(self, fresh_registry):
        gauge = fresh_registry.gauge("demo_gauge", "Demo.")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6

    def test_histogram_buckets_and_summary(self, fresh_registry):
        histogram = fresh_registry.histogram(
            "demo_seconds", "Demo.", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        cell = histogram.snapshot()["series"][0]
        assert cell["count"] == 4
        assert cell["sum"] == pytest.approx(55.55)

    def test_get_or_create_is_idempotent_but_typed(self, fresh_registry):
        first = fresh_registry.counter("demo_total", "Demo.")
        assert fresh_registry.counter("demo_total", "Demo.") is first
        with pytest.raises(ValueError):
            fresh_registry.gauge("demo_total", "Demo.")
        with pytest.raises(ValueError):
            fresh_registry.counter("demo_total", "Demo.", labelnames=("kind",))

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("demo_total", "Demo.")
        counter.inc()
        histogram = registry.histogram("demo_seconds", "Demo.",
                                       buckets=DEFAULT_FAST_BUCKETS)
        histogram.observe(1.0)
        assert counter.value() == 0
        assert registry.snapshot()["enabled"] is False

    def test_prometheus_exposition_shape(self, fresh_registry):
        fresh_registry.counter("demo_total", "Demo counter.",
                               labelnames=("kind",)).inc(kind='with "quotes"')
        fresh_registry.gauge("demo_gauge", "Demo gauge.").set(3)
        fresh_registry.histogram("demo_seconds", "Demo histogram.",
                                 buckets=(0.5, 1.0)).observe(0.7)
        text = fresh_registry.render_prometheus()
        assert text.endswith("\n")
        assert "# HELP demo_total Demo counter." in text
        assert "# TYPE demo_total counter" in text
        assert 'demo_total{kind="with \\"quotes\\""} 1' in text
        assert "demo_gauge 3" in text
        # Cumulative buckets plus the +Inf catch-all and _sum/_count.
        assert 'demo_seconds_bucket{le="0.5"} 0' in text
        assert 'demo_seconds_bucket{le="1"} 1' in text
        assert 'demo_seconds_bucket{le="+Inf"} 1' in text
        assert "demo_seconds_count 1" in text

    def test_snapshot_stamps_clock(self):
        clock = SimulatedClock()
        registry = MetricsRegistry(clock=clock)
        snapshot = registry.snapshot()
        assert snapshot["scraped_at"] == clock.now().isoformat()

    def test_timer_context_manager_observes(self, fresh_registry):
        histogram = fresh_registry.histogram("demo_seconds", "Demo.",
                                             buckets=DEFAULT_FAST_BUCKETS)
        with fresh_registry.time_histogram(histogram):
            pass
        assert histogram.snapshot()["series"][0]["count"] == 1

    def test_label_escaping_survives_hostile_values(self, fresh_registry):
        """Backslash, newline and quote in one label value must scrape as
        a single well-formed line (Prometheus text format escaping)."""
        hostile = 'back\\slash\nnew"line'
        fresh_registry.counter("demo_total", "Demo.",
                               labelnames=("path",)).inc(path=hostile)
        text = fresh_registry.render_prometheus()
        lines = [line for line in text.splitlines()
                 if line.startswith("demo_total{")]
        assert len(lines) == 1
        assert lines[0] == 'demo_total{path="back\\\\slash\\nnew\\"line"} 1'

    def test_help_escaping_keeps_exposition_line_based(self, fresh_registry):
        fresh_registry.gauge("demo_gauge", "Line one\nline two \\ done.").set(1)
        text = fresh_registry.render_prometheus()
        assert "# HELP demo_gauge Line one\\nline two \\\\ done." in text


# ================================================================== tracing
class TestTracing:
    def test_scope_nesting_restores_previous(self):
        assert current_trace_id() is None
        with trace_scope("outer"):
            assert current_trace_id() == "outer"
            with trace_scope("inner"):
                assert current_trace_id() == "inner"
            assert current_trace_id() == "outer"
        assert current_trace_id() is None

    def test_none_scope_is_noop(self):
        with trace_scope("outer"):
            with trace_scope(None):
                assert current_trace_id() == "outer"

    def test_ensure_reuses_active_id(self):
        with trace_scope("outer"):
            with TraceContext.ensure("tick"):
                assert current_trace_id() == "outer"
        with TraceContext.ensure("tick"):
            assert current_trace_id().startswith("tick-")

    def test_ids_are_unique(self):
        assert new_trace_id() != new_trace_id()

    def test_scope_is_thread_local(self):
        seen = {}

        def worker():
            seen["in_thread"] = current_trace_id()

        with trace_scope("main-only"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["in_thread"] is None


# ======================================================= gateway middleware
class TestGatewayObservability:
    def test_request_id_header_echoed_and_fresh(self):
        router = RestRouter()
        first = router.get("/v2/models")
        second = router.get("/v2/models")
        assert first.headers["X-Request-Id"].startswith("req-")
        assert second.headers["X-Request-Id"] != first.headers["X-Request-Id"]
        assert first.body["meta"]["request_id"] == first.headers["X-Request-Id"]

    def test_inbound_request_id_honoured_over_http(self):
        from urllib.request import Request as UrlRequest, urlopen

        from repro.service.http import GeleeHttpServer

        service = GeleeService()
        server = GeleeHttpServer(RestRouter(service)).start()
        try:
            call = UrlRequest(server.base_url + "/v2/models",
                              headers={"X-Request-Id": "req-upstream-7"})
            with urlopen(call) as response:
                envelope = json.loads(response.read().decode("utf-8"))
                assert response.headers["X-Request-Id"] == "req-upstream-7"
            assert envelope["meta"]["request_id"] == "req-upstream-7"
            # A blank header does not suppress minting.
            call = UrlRequest(server.base_url + "/v2/models",
                              headers={"X-Request-Id": "  "})
            with urlopen(call) as response:
                assert response.headers["X-Request-Id"].startswith("req-")
        finally:
            server.stop()
            service.close()

    def test_request_id_in_error_envelope(self):
        router = RestRouter()
        response = router.get("/v2/instances/missing")
        assert response.status == 404
        assert response.body["error"]["code"] == "INSTANCE_NOT_FOUND"
        assert response.body["meta"]["request_id"] == \
            response.headers["X-Request-Id"]

    def test_timing_middleware_records_stats_and_series(self, fresh_registry):
        router = RestRouter()
        router.get("/v2/models")
        router.get("/v2/instances/missing")
        snapshot = router.stats.snapshot()
        assert snapshot["requests"] == 2
        assert snapshot["errors"] == 1
        counter = fresh_registry.get("gelee_api_requests_total")
        assert counter.value(route="GET /v2/models", status="200") == 1
        assert counter.value(route="GET /v2/instances/{instance_id}",
                             status="404") == 1
        latency = fresh_registry.get("gelee_api_request_seconds")
        series = latency.snapshot()["series"]
        assert sum(cell["count"] for cell in series) == 2


# =============================================== request-id → journal → replica
class TestTracePropagation:
    def test_origin_request_id_reaches_journal_and_replica(self, root):
        config = PersistenceConfig(os.path.join(root, "primary"), fsync="never")
        service = GeleeService(shard_count=2, clock=SimulatedClock(),
                               persistence=config)
        ReplicationPrimary(service)
        model = simple_model()
        router = RestRouter(service=service)
        response = router.post("/v2/models", body={"model": model.to_dict()},
                               actor="alice")
        assert response.status == 201
        request_id = response.headers["X-Request-Id"]

        records = [record for record in scan_records(config.journal_directory)
                   if record.payload.get("origin_request_id") == request_id]
        assert records, "journal record should carry the gateway request id"

        replica = ReadReplica(JournalShippingSource(config), shard_count=2,
                              clock=SimulatedClock())
        replica.sync()
        entries = [entry for entry in replica.service.execution_log.entries()
                   if entry.payload.get("origin_request_id") == request_id]
        assert entries, "replica's applied copy should carry the same id"
        service.close()

    def test_dispatcher_carries_trace_across_worker_pool(self):
        service = GeleeService(shard_count=2, clock=SimulatedClock(),
                               completion_workers=2)
        model = simple_model()
        service.manager.publish_model(model, actor="alice")
        instance_id = make_instance(service, model)
        router = RestRouter(service=service)
        response = router.post(
            "/v2/instances/{}:start".format(instance_id), actor="alice")
        assert response.status == 200
        request_id = response.headers["X-Request-Id"]
        service.manager.drain_in_flight(timeout=5.0)
        entries = [entry for entry in service.execution_log.entries()
                   if entry.payload.get("origin_request_id") == request_id]
        assert entries, "pooled completion events should keep the request id"
        service.close()

    def test_scheduler_tick_gets_tick_origin(self, fresh_registry):
        service = GeleeService(shard_count=2, clock=SimulatedClock())
        captured = []
        original = service.scheduler.timers.fire_due

        def spy(**kwargs):
            captured.append(current_trace_id())
            return original(**kwargs)

        service.scheduler.timers.fire_due = spy
        service.scheduler.tick()
        assert captured and captured[0].startswith("tick-")
        service.close()


# ============================================================== wire surface
class TestTelemetryRoutes:
    def test_metrics_route_is_plain_text(self, fresh_registry):
        router = RestRouter(shard_count=2)
        response = router.get("/v2/metrics")
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        assert isinstance(response.body, str)
        assert "# TYPE gelee_api_requests_total counter" in response.body
        assert "# TYPE gelee_dispatch_wait_seconds histogram" in response.body
        assert "gelee_dispatch_in_flight 0" in response.body

    def test_telemetry_route_returns_envelope_snapshot(self):
        router = RestRouter(shard_count=2)
        response = router.get("/v2/runtime/telemetry")
        assert response.status == 200
        data = response.body["data"]
        assert data["enabled"] is True
        assert data["node"]["replication_role"] == "primary"
        names = {metric["name"] for metric in data["metrics"]}
        assert "gelee_api_requests_total" in names

    def test_metrics_on_primary_and_replica(self, root):
        config = PersistenceConfig(os.path.join(root, "primary"), fsync="never")
        service = GeleeService(shard_count=2, clock=SimulatedClock(),
                               persistence=config)
        ReplicationPrimary(service)
        model = simple_model()
        primary_router = RestRouter(service=service)
        primary_router.post("/v2/models", body={"model": model.to_dict()},
                            actor="alice")
        replica = ReadReplica(JournalShippingSource(config), shard_count=2,
                              clock=SimulatedClock())
        replica.sync()
        primary_text = primary_router.get("/v2/metrics").body
        assert "gelee_journal_last_seq" in primary_text
        replica_text = replica.router().get("/v2/metrics").body
        assert "gelee_replication_lag_records 0" in replica_text
        assert "gelee_replication_records_applied_total" in replica_text
        service.close()

    def test_monitoring_summary_includes_telemetry_rollup(self):
        router = RestRouter(shard_count=2)
        router.get("/v2/models")
        summary = router.get("/v2/monitoring/summary").body["data"]
        rollup = summary["telemetry"]
        assert rollup["enabled"] is True
        assert rollup["api_requests"] >= 1

    def test_client_sdk_metrics_and_telemetry(self):
        client = GeleeClient.in_process(shard_count=2, actor="alice")
        text = client.metrics()
        assert isinstance(text, str)
        assert "# TYPE gelee_api_request_seconds histogram" in text
        status = client.telemetry_status()
        assert status["enabled"] is True
        assert any(metric["name"] == "gelee_api_requests_total"
                   for metric in status["metrics"])


# ======================================================== runtime_stats schema
class TestRuntimeStatsSchema:
    DISPATCH_KEYS = {"mode", "in_flight", "queue_depth", "worker_pool"}

    def test_single_manager_schema(self):
        service = GeleeService(clock=SimulatedClock())
        stats = service.runtime_stats()
        assert set(stats["dispatch"]) == self.DISPATCH_KEYS
        assert stats["dispatch"]["mode"] == "inline"
        assert stats["dispatch"]["worker_pool"] is None
        service.close()

    def test_sharded_pooled_schema_surfaces_queue_depth(self):
        service = GeleeService(shard_count=4, clock=SimulatedClock(),
                               completion_workers=2)
        stats = service.runtime_stats()
        assert set(stats["dispatch"]) == self.DISPATCH_KEYS
        assert stats["dispatch"]["mode"] == "pooled"
        assert stats["dispatch"]["worker_pool"]["workers"] >= 1
        assert stats["dispatch"]["queue_depth"] == \
            stats["dispatch"]["worker_pool"]["queued"]
        # Legacy flat keys stay for older dashboards.
        assert stats["dispatch_mode"] == "pooled"
        assert stats["in_flight_actions"] == stats["dispatch"]["in_flight"]
        service.close()


# ================================================================ structured log
class TestJsonLog:
    def test_emits_json_lines_with_trace_id(self):
        sink = io.StringIO()
        clock = SimulatedClock()
        log = JsonLogEmitter("test", sink=sink, clock=clock)
        with trace_scope("req-abc"):
            log.info("event.one", answer=42)
        log.warning("event.two")
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert lines[0]["event"] == "event.one"
        assert lines[0]["trace_id"] == "req-abc"
        assert lines[0]["answer"] == 42
        assert lines[0]["component"] == "test"
        assert "trace_id" not in lines[1]
        assert lines[1]["level"] == "warning"

    def test_min_level_filters(self):
        sink = io.StringIO()
        log = JsonLogEmitter("test", sink=sink, min_level="warning")
        log.debug("dropped")
        log.info("dropped")
        log.error("kept")
        lines = sink.getvalue().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "kept"


# ==================================================================== spans
class TestSpanScope:
    def test_nested_spans_parent_on_the_enclosing_span(self, fresh_span_store):
        with trace_scope("req-1"):
            with span_scope("outer") as outer:
                assert current_span_id() == outer.span_id
                with span_scope("inner") as inner:
                    assert inner.parent_id == outer.span_id
                assert current_span_id() == outer.span_id
        assert current_span_id() is None
        doc = fresh_span_store.trace("req-1")
        assert doc["span_count"] == 2
        (root,) = doc["tree"]
        assert root["name"] == "outer"
        assert [child["name"] for child in root["children"]] == ["inner"]

    def test_no_trace_id_means_no_span(self, fresh_span_store):
        with span_scope("orphan") as span:
            assert span is None
        assert fresh_span_store.stats()["spans_recorded"] == 0

    def test_disabled_store_still_activates_trace_id(self):
        """The flat correlation layer must not regress when span
        recording is off — origin_request_id propagation rides on it."""
        set_span_store(SpanStore(enabled=False))
        context = SpanContext("req-flat", None)
        with span_scope("hop", context=context) as span:
            assert span is None
            assert current_trace_id() == "req-flat"
        assert current_trace_id() is None

    def test_raising_block_marks_error_and_restores_state(self, fresh_span_store):
        """Satellite: nesting/restoration must survive an exception —
        both the trace id and the active span id roll back."""
        with trace_scope("req-err"):
            with pytest.raises(RuntimeError):
                with span_scope("outer"):
                    with span_scope("inner"):
                        raise RuntimeError("boom")
            assert current_span_id() is None
            assert current_trace_id() == "req-err"
        assert current_trace_id() is None
        doc = fresh_span_store.trace("req-err")
        by_name = {span["name"]: span for span in doc["spans"]}
        assert by_name["inner"]["status"] == "error"
        assert by_name["inner"]["error"] == "RuntimeError"
        assert by_name["outer"]["status"] == "error"

    def test_trace_scope_restores_previous_id_when_block_raises(self):
        with trace_scope("outer"):
            with pytest.raises(ValueError):
                with trace_scope("inner"):
                    assert current_trace_id() == "inner"
                    raise ValueError("boom")
            assert current_trace_id() == "outer"
        assert current_trace_id() is None

    def test_context_handoff_parents_across_threads(self, fresh_span_store):
        """The worker-pool discipline: capture on submit, re-activate on
        the worker — the hop becomes a tree edge, not a new root."""
        captured = {}

        def worker(context):
            with span_scope("worker.task", context=context) as span:
                captured["trace_id"] = current_trace_id()
                captured["span"] = span

        with trace_scope("req-hop"):
            with span_scope("submit") as submit_span:
                context = current_span_context()
                assert context.trace_id == "req-hop"
                assert context.span_id == submit_span.span_id
                thread = threading.Thread(target=worker, args=(context,))
                thread.start()
                thread.join()
        assert captured["trace_id"] == "req-hop"
        assert captured["span"].parent_id == submit_span.span_id
        (root,) = fresh_span_store.trace("req-hop")["tree"]
        assert root["name"] == "submit"
        assert root["children"][0]["name"] == "worker.task"

    def test_span_ids_are_unique_and_duration_measured(self):
        assert len({span_scope("x")._name for _ in range(1)}) == 1  # smoke
        from repro.telemetry import new_span_id
        assert new_span_id() != new_span_id()
        with trace_scope("req-t"):
            with span_scope("timed") as span:
                pass
        assert span.end is not None and span.end >= span.start
        assert span.to_dict()["duration_ms"] >= 0


class TestSpanStore:
    def _record(self, store, trace_id, name="op", parent=None):
        with trace_scope(trace_id):
            with span_scope(name, store=store) as span:
                pass
        return span

    def test_ring_evicts_oldest_trace(self):
        store = SpanStore(max_traces=2, slow_threshold_seconds=999)
        for trace_id in ("t1", "t2", "t3"):
            self._record(store, trace_id)
        assert store.trace("t1") is None
        assert store.trace("t2") is not None
        assert store.trace("t3") is not None
        stats = store.stats()
        assert stats["traces"] == 2
        assert stats["traces_evicted"] == 1
        assert stats["slow_traces"] == 0

    def test_slow_traces_survive_ring_churn(self):
        store = SpanStore(max_traces=2, slow_threshold_seconds=0.5)
        slow = self._record(store, "t-slow")
        slow.end = slow.start + 2.0  # forge a 2s trace
        self._record(store, "t2")
        self._record(store, "t3")  # evicts t-slow from the ring
        doc = store.trace("t-slow")
        assert doc is not None
        assert doc["retained"] == "slow"
        summaries = {row["trace_id"]: row for row in store.traces()}
        assert summaries["t-slow"]["retained"] == "slow"
        assert summaries["t3"]["retained"] == "ring"

    def test_per_trace_span_cap_counts_overflow(self):
        store = SpanStore(max_spans_per_trace=3)
        for _ in range(5):
            self._record(store, "t-big")
        doc = store.trace("t-big")
        assert doc["span_count"] == 3
        assert doc["dropped_spans"] == 2
        assert store.stats()["spans_dropped"] == 2

    def test_orphan_parent_becomes_root(self):
        store = SpanStore()
        with trace_scope("t-orphan"):
            with span_scope("late", store=store,
                            context=SpanContext("t-orphan", "gone")):
                pass
        (root,) = store.trace("t-orphan")["tree"]
        assert root["name"] == "late"
        assert root["parent_id"] == "gone"

    def test_traces_listing_is_newest_first_and_limited(self):
        store = SpanStore()
        for trace_id in ("t1", "t2", "t3"):
            self._record(store, trace_id)
        rows = store.traces(limit=2)
        assert len(rows) == 2
        assert rows[0]["started_at"] >= rows[1]["started_at"]

    def test_reset_clears_everything(self):
        store = SpanStore()
        self._record(store, "t1")
        store.reset()
        assert store.trace("t1") is None
        assert store.stats()["spans_recorded"] == 0


# ============================================= request → span tree, end to end
def action_model(name="Traced lifecycle"):
    builder = LifecycleBuilder(name)
    builder.phase("Work")
    builder.terminal("End")
    builder.flow("Work", "End")
    builder.action("Work", library.CHANGE_ACCESS_RIGHTS, "Change access rights",
                   visibility="team")
    return builder.build()


class TestSpanPipeline:
    def test_one_request_id_yields_the_full_span_chain(self, root,
                                                       fresh_span_store):
        """The acceptance path: one X-Request-Id retrieves a tree with
        gateway → shard → dispatch wait/execute → journal append spans."""
        config = PersistenceConfig(os.path.join(root, "primary"), fsync="never")
        service = GeleeService(shard_count=4, persistence=config,
                               completion_workers=2)
        try:
            model = action_model()
            service.manager.install_model(model)
            instance_id = make_instance(service, model)
            router = RestRouter(service=service)
            response = router.post(
                "/v2/instances/{}:start".format(instance_id), actor="alice")
            assert response.status == 200
            request_id = response.headers["X-Request-Id"]
            service.manager.drain_in_flight(timeout=10.0)

            detail = router.get("/v2/runtime/traces/{}".format(request_id))
            assert detail.status == 200
            doc = detail.body["data"]
            names = {span["name"] for span in doc["spans"]}
            assert {"gateway.request", "shard.apply", "action.dispatch",
                    "dispatch.wait", "dispatch.execute",
                    "journal.append"} <= names
            # The tree nests causally: gateway at the root, the journal
            # write under the shard hop, the dispatch wait/execute under
            # the pooled action span (itself parented across the pool).
            (gateway,) = doc["tree"]
            assert gateway["name"] == "gateway.request"
            assert gateway["attrs"]["status"] == 200
            shard = next(child for child in gateway["children"]
                         if child["name"] == "shard.apply")
            child_names = {child["name"] for child in shard["children"]}
            assert "journal.append" in child_names
            assert "action.dispatch" in child_names
            dispatch = next(child for child in shard["children"]
                            if child["name"] == "action.dispatch")
            assert {"dispatch.wait", "dispatch.execute"} <= \
                {child["name"] for child in dispatch["children"]}
        finally:
            service.close()

    def test_traces_listing_route_and_not_found(self, fresh_span_store):
        router = RestRouter(shard_count=2)
        response = router.get("/v2/models")
        request_id = response.headers["X-Request-Id"]
        listing = router.get("/v2/runtime/traces", limit=5)
        assert listing.status == 200
        data = listing.body["data"]
        assert data["store"]["enabled"] is True
        assert any(row["trace_id"] == request_id for row in data["traces"])
        missing = router.get("/v2/runtime/traces/req-nope")
        assert missing.status == 404
        assert missing.body["error"]["code"] == "TRACE_NOT_FOUND"

    def test_worker_pool_boundary_keeps_spans_in_the_request_trace(
            self, fresh_span_store):
        """Satellite: spans opened on pooled completion workers land in
        the submitting request's trace, parented across the hop."""
        service = GeleeService(shard_count=2, completion_workers=2)
        try:
            model = action_model()
            service.manager.install_model(model)
            instance_id = make_instance(service, model)
            router = RestRouter(service=service)
            response = router.post(
                "/v2/instances/{}:start".format(instance_id), actor="alice")
            request_id = response.headers["X-Request-Id"]
            service.manager.drain_in_flight(timeout=10.0)
            doc = fresh_span_store.trace(request_id)
            dispatch = next(span for span in doc["spans"]
                            if span["name"] == "action.dispatch")
            assert dispatch["trace_id"] == request_id
            assert dispatch["parent_id"] is not None
            parents = {span["span_id"] for span in doc["spans"]}
            assert dispatch["parent_id"] in parents
        finally:
            service.close()

    def test_replication_apply_extends_the_request_trace(self, root,
                                                         fresh_span_store):
        """A request's timeline keeps growing on the follower: applies
        are spanned under the origin request id, and the trace is
        retrievable from the promoted node after failover."""
        config = PersistenceConfig(os.path.join(root, "primary"), fsync="never")
        service = GeleeService(shard_count=2, clock=SimulatedClock(),
                               persistence=config)
        ReplicationPrimary(service)
        model = simple_model()
        router = RestRouter(service=service)
        response = router.post("/v2/models", body={"model": model.to_dict()},
                               actor="alice")
        request_id = response.headers["X-Request-Id"]

        replica = ReadReplica(JournalShippingSource(config), shard_count=2,
                              clock=SimulatedClock())
        replica.sync()
        doc = fresh_span_store.trace(request_id)
        applies = [span for span in doc["spans"]
                   if span["name"] == "replication.apply"]
        assert applies, "sync should span each apply under the origin id"
        assert all(span["attrs"]["replica_id"] == replica.replica_id
                   for span in applies)

        service.close()
        replica.promote()
        promote_traces = [row for row in fresh_span_store.traces()
                          if row["root"] == "replication.promote"]
        assert promote_traces, "promotion should record its own span"
        after = replica.router().get("/v2/runtime/traces/{}".format(request_id))
        assert after.status == 200
        names = {span["name"] for span in after.body["data"]["spans"]}
        assert "replication.apply" in names
        assert "gateway.request" in names


# ================================================================ SLO engine
class TestSloEngine:
    def _engine(self, rules, clock=None, publish=None):
        return SloEngine(rules=rules, registry=get_registry(),
                         clock=clock or SimulatedClock(), publish=publish)

    def test_error_rate_fires_and_resolves_on_windowed_deltas(self):
        counter = get_registry().counter(
            "gelee_api_requests_total", "Demo.", labelnames=("route", "status"))
        events = []
        engine = self._engine(
            [SloRule("err", "error-rate", threshold=0.5, min_samples=2)],
            publish=lambda kind, rule, payload: events.append((kind, payload)))
        counter.inc(4, route="GET /x", status="500")
        result = engine.evaluate()
        assert [t["kind"] for t in result["transitions"]] == ["alert.fired"]
        assert result["firing"][0]["value"] == 1.0
        # The *window* recovers even though the cumulative ratio cannot.
        counter.inc(10, route="GET /x", status="200")
        result = engine.evaluate()
        assert [t["kind"] for t in result["transitions"]] == ["alert.resolved"]
        assert engine.firing() == []
        assert [kind for kind, _ in events] == ["alert.fired", "alert.resolved"]
        assert events[0][1]["severity"] == "warn"
        assert events[0][1]["value"] == 1.0

    def test_error_rate_holds_below_min_samples(self):
        counter = get_registry().counter(
            "gelee_api_requests_total", "Demo.", labelnames=("route", "status"))
        engine = self._engine(
            [SloRule("err", "error-rate", threshold=0.1, min_samples=10)])
        counter.inc(3, route="GET /x", status="500")
        result = engine.evaluate()
        assert result["transitions"] == []
        assert engine.firing() == []
        # And an idle window later never flaps a firing alert back to ok.
        counter.inc(20, route="GET /x", status="500")
        assert engine.evaluate()["firing"]
        result = engine.evaluate()  # zero new samples: hold, not resolve
        assert result["transitions"] == []
        assert engine.firing()

    def test_error_status_prefixes_are_configurable(self):
        counter = get_registry().counter(
            "gelee_api_requests_total", "Demo.", labelnames=("route", "status"))
        engine = self._engine(
            [SloRule("err4xx", "error-rate", threshold=0.5,
                     error_status_prefixes=("4", "5"))])
        counter.inc(3, route="GET /x", status="404")
        result = engine.evaluate()
        assert result["firing"][0]["value"] == 1.0

    def test_latency_quantile_reports_bucket_bound(self):
        histogram = get_registry().histogram(
            "gelee_api_request_seconds", "Demo.", buckets=(0.1, 1.0, 5.0))
        engine = self._engine(
            [SloRule("p99", "latency-quantile", threshold=2.0,
                     quantile=0.5, min_samples=2)])
        for _ in range(10):
            histogram.observe(0.05)
        result = engine.evaluate()
        assert result["transitions"] == []
        alert = result["firing"] or None
        assert alert is None
        # The next window is dominated by slow requests: median jumps to
        # the 5.0 bucket bound, over the 2.0 threshold.
        for _ in range(10):
            histogram.observe(3.0)
        result = engine.evaluate()
        assert [t["kind"] for t in result["transitions"]] == ["alert.fired"]
        assert result["firing"][0]["value"] == 5.0

    def test_latency_quantile_overflow_breaches_as_inf(self):
        histogram = get_registry().histogram(
            "gelee_api_request_seconds", "Demo.", buckets=(0.1,))
        engine = self._engine(
            [SloRule("p99", "latency-quantile", threshold=10.0,
                     quantile=0.9, min_samples=1)])
        histogram.observe(99.0)  # beyond every bound: implicit +Inf bucket
        result = engine.evaluate()
        assert result["firing"][0]["value"] == float("inf")

    def test_heartbeat_miss_fires_on_stalled_renewals(self):
        histogram = get_registry().histogram(
            "gelee_election_heartbeat_seconds", "Demo.", buckets=(0.1, 1.0))
        events = []
        engine = self._engine(
            [SloRule("hb", "heartbeat-miss", threshold=0)],
            publish=lambda kind, rule, payload: events.append(kind))
        histogram.observe(0.01)
        assert engine.evaluate()["transitions"] == []  # baseline sighting
        assert engine.evaluate()["firing"], "no renewals since last eval"
        histogram.observe(0.01)  # renewals resume
        result = engine.evaluate()
        assert [t["kind"] for t in result["transitions"]] == ["alert.resolved"]
        assert events == ["alert.fired", "alert.resolved"]

    def test_gauge_kind_clears_when_instrument_disappears(self):
        gauge = get_registry().gauge("gelee_replication_lag_records", "Demo.")
        engine = self._engine(
            [SloRule("lag", "replication-lag", threshold=10)])
        gauge.set(50)
        assert engine.evaluate()["firing"]
        # A fresh registry (promotion rebuilds the node) has no lag gauge.
        set_registry(MetricsRegistry())
        engine._registry = get_registry()  # rebind like a rebuilt service
        result = engine.evaluate()
        assert [t["kind"] for t in result["transitions"]] == ["alert.resolved"]

    def test_rule_validation_and_lifecycle(self):
        with pytest.raises(ValueError):
            SloRule("bad", "no-such-kind", threshold=1)
        with pytest.raises(ValueError):
            SloRule("bad", "latency-quantile", threshold=1, quantile=1.5)
        engine = self._engine([])
        rule = engine.add_rule(SloRule("one", "replication-lag", threshold=1))
        with pytest.raises(ValueError):
            engine.add_rule(SloRule("one", "replication-lag", threshold=2))
        assert [r.name for r in engine.rules] == ["one"]
        engine.remove_rule("one")
        assert engine.rules == []
        assert rule.to_dict()["metric"] == "gelee_replication_lag_records"

    def test_default_catalog_covers_every_kind(self):
        rules = default_slo_rules()
        assert {rule.kind for rule in rules} == set(
            ("error-rate", "latency-quantile", "replication-lag",
             "in-flight-saturation", "heartbeat-miss"))
        # The stock thresholds stay quiet on a healthy idle service.
        engine = self._engine(rules)
        assert engine.evaluate()["transitions"] == []

    def test_status_shape(self):
        engine = self._engine(default_slo_rules())
        engine.evaluate()
        status = engine.status()
        assert len(status["rules"]) == len(status["alerts"]) == 5
        assert status["firing"] == 0
        assert status["evaluations"] == 1
        assert status["last_evaluated_at"] is not None


# ============================================================== alert surface
class TestAlertSurface:
    def _breach_rule(self):
        return SloRule("demo-errors", "error-rate", threshold=0.1,
                       error_status_prefixes=("4", "5"), min_samples=1,
                       severity="page", description="Demo breach rule.")

    def test_alert_events_are_published_and_journaled(self, root):
        config = PersistenceConfig(os.path.join(root, "primary"), fsync="never")
        service = GeleeService(shard_count=2, clock=SimulatedClock(),
                               persistence=config,
                               slo_rules=[self._breach_rule()])
        try:
            router = RestRouter(service=service)
            router.get("/v2/instances/missing")  # a 404 breaches the rule
            result = router.post("/v2/runtime/alerts:evaluate").body["data"]
            assert [t["kind"] for t in result["transitions"]] == ["alert.fired"]
            router.get("/v2/models")  # healthy window
            result = router.post("/v2/runtime/alerts:evaluate").body["data"]
            assert [t["kind"] for t in result["transitions"]] == \
                ["alert.resolved"]
            kinds = [record.kind for record
                     in scan_records(config.journal_directory)
                     if record.kind.startswith("alert.")]
            assert kinds == ["alert.fired", "alert.resolved"]
            fired = next(record for record
                         in scan_records(config.journal_directory)
                         if record.kind == "alert.fired")
            assert fired.actor == "slo-engine"
            assert fired.subject_id == "demo-errors"
            assert fired.payload["severity"] == "page"
        finally:
            service.close()

    def test_alerts_route_and_cockpit_rollup(self):
        service = GeleeService(shard_count=2, clock=SimulatedClock(),
                               slo_rules=[self._breach_rule()])
        try:
            router = RestRouter(service=service)
            router.get("/v2/instances/missing")
            service.evaluate_slos()
            status = router.get("/v2/runtime/alerts").body["data"]
            assert status["firing"] == 1
            (alert,) = [a for a in status["alerts"] if a["state"] == "firing"]
            assert alert["rule"] == "demo-errors"
            assert alert["fired_at"] is not None
            assert "node_id" in status
            summary = router.get("/v2/monitoring/summary").body["data"]
            rollup = summary["alerts"]
            assert rollup["firing"] == 1
            assert rollup["firing_rules"][0]["rule"] == "demo-errors"
            assert rollup["firing_rules"][0]["severity"] == "page"
        finally:
            service.close()

    def test_scheduler_job_evaluates_periodically(self):
        from repro.scheduler import SchedulerConfig

        clock = SimulatedClock()
        service = GeleeService(shard_count=2, clock=clock,
                               scheduler=SchedulerConfig(
                                   slo_interval_seconds=30.0),
                               slo_rules=[self._breach_rule()])
        try:
            assert service.scheduler.timers.get(
                "maintenance:slo-evaluate") is not None
            router = RestRouter(service=service)
            router.get("/v2/instances/missing")
            clock.advance(seconds=31.0)
            service.scheduler.tick()
            assert service.slo.firing(), "the recurring job should evaluate"
        finally:
            service.close()

    def test_client_sdk_traces_and_alerts(self, fresh_span_store):
        client = GeleeClient.in_process(shard_count=2, actor="alice")
        client.list_models()
        listing = client.traces(limit=3)
        assert listing["store"]["enabled"] is True
        assert listing["traces"]
        trace_id = listing["traces"][0]["trace_id"]
        doc = client.trace(trace_id)
        assert doc["trace_id"] == trace_id
        assert doc["tree"]
        result = client.evaluate_alerts()
        assert result["rules_evaluated"] == 5
        status = client.alerts()
        assert status["firing"] == 0

    def test_telemetry_snapshot_is_stamped(self, root):
        clock = SimulatedClock()
        service = GeleeService(shard_count=2, clock=clock)
        try:
            router = RestRouter(service=service)
            data = router.get("/v2/runtime/telemetry").body["data"]
            assert data["captured_at"] == clock.now().isoformat()
            assert "node_id" in data["node"]
        finally:
            service.close()

    def test_telemetry_snapshot_node_id_from_coordination(self, root):
        from repro.coordination import CoordinationConfig

        config = PersistenceConfig(os.path.join(root, "primary"), fsync="never")
        service = GeleeService(
            shard_count=2, clock=SimulatedClock(), persistence=config,
            coordination=CoordinationConfig(
                node_id="node-a", directory=os.path.join(root, "coord")))
        try:
            router = RestRouter(service=service)
            data = router.get("/v2/runtime/telemetry").body["data"]
            assert data["node"]["node_id"] == "node-a"
        finally:
            service.close()
