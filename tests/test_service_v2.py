"""Tests for the v2 API gateway: envelopes, error model, pagination, bulk ops."""

import pytest

import repro.errors as errors_module
from repro.errors import GeleeError, ServiceError
from repro.service import GeleeService, RestRouter, parse_bool, parse_str_list
from repro.service.v2 import (
    ERROR_CATALOG,
    Envelope,
    ErrorInfo,
    OperationStore,
    classify_error,
    decode_cursor,
    encode_cursor,
    error_info_for,
)


@pytest.fixture
def service(clock):
    from repro.plugins import build_standard_environment

    return GeleeService(environment=build_standard_environment(clock=clock), clock=clock)


@pytest.fixture
def router(service):
    return RestRouter(service)


@pytest.fixture
def model_uri(router):
    response = router.post("/v2/templates/eu-deliverable:publish", actor="pm")
    assert response.status == 201
    return response.body["data"]["uri"]


def _create(router, service, model_uri, owner="alice", title="D1.1"):
    descriptor = service.environment.adapter("Google Doc").create_resource(title, owner=owner)
    response = router.post("/v2/instances", actor=owner, body={
        "model_uri": model_uri, "resource": descriptor.to_dict(), "owner": owner})
    assert response.status == 201, response.body
    return response.body["data"]["instance_id"]


def _all_gelee_errors():
    """Every concrete GeleeError subclass defined in repro.errors."""
    found = set()
    stack = [GeleeError]
    while stack:
        cls = stack.pop()
        found.add(cls)
        stack.extend(cls.__subclasses__())
    # Restrict to the library's own hierarchy (tests may define others).
    return sorted((cls for cls in found
                   if cls.__module__ == errors_module.__name__),
                  key=lambda cls: cls.__name__)


class TestErrorModel:
    def test_every_error_class_has_status_and_code(self):
        catalogued = {cls for cls, _, _ in ERROR_CATALOG}
        for cls in _all_gelee_errors():
            try:
                exc = cls("boom")
            except TypeError:
                exc = cls(["boom"])
            status, code = classify_error(exc)
            assert 400 <= status < 600, cls.__name__
            assert code and code.upper() == code, cls.__name__
            # Every class is reachable through the catalog, not the fallback.
            assert any(isinstance(exc, catalogued_cls) for catalogued_cls in catalogued)

    def test_error_codes_are_distinct(self):
        codes = [code for _, _, code in ERROR_CATALOG]
        assert len(codes) == len(set(codes))

    def test_error_info_round_trip(self):
        info = error_info_for(errors_module.ValidationError(["p1", "p2"]))
        assert info.status == 400
        assert info.code == "VALIDATION_FAILED"
        assert info.details["problems"] == ["p1", "p2"]
        assert ErrorInfo.from_dict(info.to_dict()) == info

    def test_envelope_round_trip(self):
        envelope = Envelope.success({"x": 1}, request_id="req-1",
                                    pagination={"page_size": 5})
        parsed = Envelope.from_dict(envelope.to_dict())
        assert parsed.ok and parsed.data == {"x": 1}
        assert parsed.meta.request_id == "req-1"
        failed = Envelope.from_dict(Envelope.failure(
            ErrorInfo("BAD_REQUEST", "nope", 400), request_id="req-2").to_dict())
        assert not failed.ok
        assert failed.error.code == "BAD_REQUEST"

    @pytest.mark.parametrize("path,expected_status,expected_code", [
        ("/v2/instances/inst-missing", 404, "INSTANCE_NOT_FOUND"),
        ("/v2/models/detail?uri=urn:missing", None, None),  # handled below
    ])
    def test_wire_error_round_trip(self, router, path, expected_status, expected_code):
        if expected_status is None:
            response = router.get("/v2/models/detail", uri="urn:missing")
            assert response.status == 404
            assert response.body["error"]["code"] == "MODEL_NOT_FOUND"
            return
        response = router.get(path)
        assert response.status == expected_status
        assert response.body["error"]["code"] == expected_code
        assert response.body["data"] is None
        assert response.body["meta"]["request_id"].startswith("req-")

    def test_validation_problems_surface_in_details(self, router):
        response = router.post("/v2/models", actor="pm", body={"model": {"name": ""}})
        assert response.status == 400
        assert response.body["error"]["code"] in ("VALIDATION_FAILED", "SERIALIZATION_FAILED")


class TestEnvelopeAndMiddleware:
    def test_success_envelope_shape(self, router, model_uri):
        response = router.get("/v2/models")
        assert response.status == 200
        assert set(response.body) == {"data", "meta", "error"}
        assert response.body["error"] is None
        assert response.headers["X-Gelee-Api-Version"] == "v2"
        assert response.headers["X-Request-Id"] == response.body["meta"]["request_id"]

    def test_request_ids_are_unique(self, router):
        first = router.get("/v2/models").body["meta"]["request_id"]
        second = router.get("/v2/models").body["meta"]["request_id"]
        assert first != second

    def test_timing_stats_feed_runtime_stats(self, router, model_uri):
        router.get("/v2/models")
        router.get("/v2/models")
        stats = router.get("/v2/runtime/stats").body["data"]
        assert stats["api"]["requests"] >= 2
        route_stats = stats["api"]["routes"]["GET /v2/models"]
        assert route_stats["requests"] == 2
        assert route_stats["avg_ms"] >= 0.0

    def test_405_for_known_path_wrong_method(self, router):
        response = router.post("/v2/models/detail")
        assert response.status == 405
        assert response.body["error"]["code"] == "METHOD_NOT_ALLOWED"
        assert response.headers["Allow"] == "GET"

    def test_404_for_unknown_path(self, router):
        response = router.get("/v2/nope")
        assert response.status == 404
        assert response.body["error"]["code"] == "ROUTE_NOT_FOUND"

    def test_actor_from_query_reaches_handlers(self, router, service, model_uri):
        from repro.service import Request

        instance_id = _create(router, service, model_uri)
        response = router.handle(Request(
            "POST", "/v2/instances/{}:start".format(instance_id),
            query={"actor": "alice"}))
        assert response.status == 200, response.body


class TestPagination:
    def _populate(self, router, service, model_uri, count, owner="alice"):
        return [_create(router, service, model_uri, owner=owner,
                        title="D{}".format(index)) for index in range(count)]

    def test_page_walk_is_exhaustive_and_disjoint(self, router, service, model_uri):
        ids = set(self._populate(router, service, model_uri, 7))
        seen = []
        token = None
        while True:
            query = {"page_size": 3}
            if token:
                query["page_token"] = token
            page = router.get("/v2/instances", **query)
            assert page.status == 200
            seen.extend(item["instance_id"] for item in page.body["data"])
            pagination = page.body["meta"]["pagination"]
            assert pagination["total"] == 7
            token = pagination["next_page_token"]
            if token is None:
                break
        assert len(seen) == len(set(seen)) == 7
        assert set(seen) == ids

    def test_empty_collection_page(self, router, model_uri):
        page = router.get("/v2/instances", page_size=10)
        assert page.body["data"] == []
        assert page.body["meta"]["pagination"]["next_page_token"] is None
        assert page.body["meta"]["pagination"]["total"] == 0

    def test_past_end_cursor_yields_empty_page(self, router, service, model_uri):
        self._populate(router, service, model_uri, 3)
        token = encode_cursor({"k": "zzzz", "t": "zzzz"})
        page = router.get("/v2/instances", page_token=token)
        assert page.status == 200
        assert page.body["data"] == []
        assert page.body["meta"]["pagination"]["next_page_token"] is None

    def test_malformed_cursor_is_400(self, router, model_uri):
        assert router.get("/v2/instances", page_token="!!not-base64!!").status == 400
        truncated = encode_cursor({"unexpected": 1})
        assert router.get("/v2/instances", page_token=truncated).status == 400

    def test_bad_sort_field_is_400(self, router):
        response = router.get("/v2/instances", sort="nonsense")
        assert response.status == 400
        assert response.body["error"]["code"] == "BAD_REQUEST"

    def test_models_sort_by_version_number(self, router, service, model_uri):
        from repro.templates import eu_deliverable_lifecycle

        # Versions 1.2 vs 1.10: a repr-based or naive string sort gets the
        # order wrong within a model list built from distinct URIs.
        from dataclasses import replace

        for uri, version in (("urn:gelee:m-a", "2.0"), ("urn:gelee:m-b", "10.0")):
            model = eu_deliverable_lifecycle()
            model.uri = uri
            model.version = replace(model.version, version_number=version)
            response = router.post("/models", actor="pm", body={"model": model.to_dict()})
            assert response.ok, response.body
        page = router.get("/v2/models", sort="version")
        assert page.status == 200
        versions = [entry["version"] for entry in page.body["data"]]
        assert versions == sorted(versions)
        # The sort key is the version number, not a dataclass repr.
        assert versions[0] == "1.0"

    def test_type_confused_cursor_is_400(self, router, service, model_uri):
        self._populate(router, service, model_uri, 2)
        forged = encode_cursor({"k": 5, "t": "x"})
        response = router.get("/v2/instances", page_token=forged)
        assert response.status == 400
        assert response.body["error"]["code"] == "BAD_REQUEST"

    def test_sort_descending(self, router, service, model_uri):
        self._populate(router, service, model_uri, 4)
        ascending = [item["instance_id"] for item
                     in router.get("/v2/instances", sort="instance_id").body["data"]]
        descending = [item["instance_id"] for item
                      in router.get("/v2/instances", sort="-instance_id").body["data"]]
        assert descending == list(reversed(ascending))

    def test_stable_ordering_under_concurrent_inserts(self, router, service, model_uri):
        before = set(self._populate(router, service, model_uri, 6))
        first = router.get("/v2/instances", page_size=3)
        first_ids = [item["instance_id"] for item in first.body["data"]]
        token = first.body["meta"]["pagination"]["next_page_token"]
        # New instances land mid-collection while a client is paging.
        inserted = set(self._populate(router, service, model_uri, 4, owner="bob"))
        seen = list(first_ids)
        while token is not None:
            page = router.get("/v2/instances", page_size=3, page_token=token)
            seen.extend(item["instance_id"] for item in page.body["data"])
            token = page.body["meta"]["pagination"]["next_page_token"]
        # No duplicates, and every pre-existing instance is seen exactly once:
        # keyset cursors never re-serve or skip items around an insert.
        assert len(seen) == len(set(seen))
        assert before <= set(seen)
        assert set(seen) <= before | inserted

    def test_filtered_page_served_from_index(self, router, service, model_uri):
        self._populate(router, service, model_uri, 3, owner="alice")
        self._populate(router, service, model_uri, 2, owner="bob")
        page = router.get("/v2/instances", owner="bob")
        assert page.body["meta"]["pagination"]["total"] == 2
        assert all(item["owner"] == "bob" for item in page.body["data"])
        assert router.get("/v2/instances", status="nonsense").status == 400

    def test_history_pagination(self, router, service, model_uri):
        instance_id = _create(router, service, model_uri)
        router.post("/v2/instances/{}:start".format(instance_id), actor="alice")
        router.post("/v2/instances/{}:advance".format(instance_id), actor="alice",
                    body={"to_phase_id": "internalreview"})
        collected = []
        token = None
        total = None
        while True:
            query = {"page_size": 2}
            if token:
                query["page_token"] = token
            page = router.get("/v2/instances/{}/history".format(instance_id), **query)
            assert page.status == 200
            collected.extend(page.body["data"])
            pagination = page.body["meta"]["pagination"]
            total = pagination["total"]
            token = pagination["next_page_token"]
            if token is None:
                break
        assert len(collected) == total > 2
        sequences = [entry["sequence"] for entry in collected]
        assert sequences == sorted(sequences)
        # Past-the-end cursor: empty final page, not an error.
        done = router.get("/v2/instances/{}/history".format(instance_id),
                          page_token=encode_cursor({"seq": 10_000}))
        assert done.status == 200 and done.body["data"] == []
        assert router.get("/v2/instances/inst-missing/history").status == 404

    def test_monitoring_table_pagination(self, router, service, model_uri):
        self._populate(router, service, model_uri, 5)
        page = router.get("/v2/monitoring/table", page_size=2)
        assert page.status == 200
        assert len(page.body["data"]) == 2
        assert page.body["meta"]["pagination"]["total"] == 5
        assert {"instance_id", "owner", "phase_name"} <= set(page.body["data"][0])


class TestBulkOperations:
    def test_batch_create_reports_partial_failure(self, router, service, model_uri):
        good = service.environment.adapter("Google Doc").create_resource(
            "D1", owner="alice").to_dict()
        response = router.post("/v2/instances:batchCreate", actor="alice", body={
            "items": [
                {"model_uri": model_uri, "resource": good, "owner": "alice"},
                {"model_uri": "urn:missing", "resource": good, "owner": "alice"},
            ]})
        assert response.status == 200
        data = response.body["data"]
        assert data["total"] == 2 and data["succeeded"] == 1 and data["failed"] == 1
        assert data["results"][0]["ok"] is True
        assert data["results"][0]["instance_id"].startswith("inst-")
        assert data["results"][1]["ok"] is False
        assert data["results"][1]["error"]["code"] == "MODEL_NOT_FOUND"

    def test_batch_create_validates_items_upfront(self, router):
        response = router.post("/v2/instances:batchCreate", actor="alice",
                               body={"items": [{"owner": "alice"}]})
        assert response.status == 400
        assert "items[0]" in response.body["error"]["message"]
        assert router.post("/v2/instances:batchCreate", actor="a",
                           body={}).status == 400
        assert router.post("/v2/instances:batchCreate", actor="a",
                           body={"items": []}).status == 400

    def test_batch_advance_partial_failure(self, router, service, model_uri):
        ids = [_create(router, service, model_uri, title="D{}".format(i))
               for i in range(3)]
        response = router.post("/v2/instances:batchAdvance", actor="alice", body={
            "items": ids + ["inst-missing"]})
        data = response.body["data"]
        assert data["succeeded"] == 3 and data["failed"] == 1
        failed = data["results"][-1]
        assert failed["instance_id"] == "inst-missing"
        assert failed["error"]["code"] == "INSTANCE_NOT_FOUND"
        # The successful items really moved.
        for result in data["results"][:3]:
            assert result["data"]["current_phase_id"] == "elaboration"

    def test_batch_advance_requires_actor(self, router, service, model_uri):
        instance_id = _create(router, service, model_uri)
        response = router.post("/v2/instances:batchAdvance", body={"items": [instance_id]})
        assert response.status == 400

    def test_batch_advance_per_item_phases(self, router, service, model_uri):
        instance_id = _create(router, service, model_uri)
        router.post("/v2/instances/{}:start".format(instance_id), actor="alice")
        response = router.post("/v2/instances:batchAdvance", actor="alice", body={
            "items": [{"instance_id": instance_id, "to_phase_id": "internalreview",
                       "annotation": "bulk move"}]})
        assert response.body["data"]["succeeded"] == 1
        detail = router.get("/v2/instances/{}".format(instance_id)).body["data"]
        assert detail["current_phase_id"] == "internalreview"


class TestAsyncOperations:
    def test_async_batch_returns_202_and_completes(self, router, service, model_uri):
        ids = [_create(router, service, model_uri, title="D{}".format(i))
               for i in range(3)]
        accepted = router.post("/v2/instances:batchAdvance", actor="alice",
                               body={"items": ids, "async": True})
        assert accepted.status == 202
        operation_id = accepted.body["data"]["operation_id"]
        operation = service.operations.wait(operation_id, timeout=10)
        view = router.get("/v2/operations/{}".format(operation_id)).body["data"]
        assert view["status"] == "succeeded"
        assert view["result"]["succeeded"] == 3
        assert operation.finished_at is not None

    def test_operation_listing_paginated(self, router, service, model_uri):
        instance_id = _create(router, service, model_uri)
        for _ in range(2):
            accepted = router.post("/v2/instances:batchAdvance", actor="alice",
                                   body={"items": [instance_id], "async": True})
            service.operations.wait(accepted.body["data"]["operation_id"], timeout=10)
        page = router.get("/v2/operations", page_size=1)
        assert page.status == 200
        assert len(page.body["data"]) == 1
        assert page.body["meta"]["pagination"]["total"] == 2

    def test_unknown_operation_is_404(self, router):
        response = router.get("/v2/operations/op-missing")
        assert response.status == 404
        assert response.body["error"]["code"] == "OPERATION_NOT_FOUND"

    def test_failed_work_is_reported_on_the_handle(self, clock):
        store = OperationStore(clock=clock)

        def explode():
            raise ServiceError("boom")

        operation = store.submit("test.explode", explode)
        store.wait(operation.operation_id, timeout=10)
        assert operation.status.value == "failed"
        assert operation.error.code == "BAD_REQUEST"
        assert operation.to_dict()["error"]["message"] == "boom"


class TestParamParsing:
    def test_parse_bool(self):
        assert parse_bool(True) is True
        assert parse_bool(None, default=True) is True
        for text in ("true", "True", "1", "yes", "on"):
            assert parse_bool(text) is True
        for text in ("false", "0", "no", "off", ""):
            assert parse_bool(text) is False
        with pytest.raises(ServiceError):
            parse_bool("maybe", "accept")
        with pytest.raises(ServiceError):
            parse_bool(3, "accept")

    def test_parse_str_list(self):
        assert parse_str_list(None) is None
        assert parse_str_list("a,b , c") == ["a", "b", "c"]
        assert parse_str_list(["a", "b"]) == ["a", "b"]
        for malformed in ("", "a,,b", ",", ["a", 3], [""], 42, {"a": 1}):
            with pytest.raises(ServiceError):
                parse_str_list(malformed, "instance_ids")

    def test_cursor_round_trip(self):
        token = encode_cursor({"k": "v", "t": "id-1"})
        assert decode_cursor(token) == {"k": "v", "t": "id-1"}
        with pytest.raises(ServiceError):
            decode_cursor("garbage!!")


class TestV1Satellites:
    """The v1 dialect fixes that ride along with the v2 gateway."""

    @pytest.fixture
    def published(self, router):
        response = router.post("/templates/eu-deliverable/publish", actor="pm")
        assert response.status == 201
        return response.body["uri"]

    def _v1_create(self, router, service, model_uri, title="D1.1"):
        descriptor = service.environment.adapter("Google Doc").create_resource(
            title, owner="alice")
        response = router.post("/instances", actor="alice", body={
            "model_uri": model_uri, "resource": descriptor.to_dict(), "owner": "alice"})
        assert response.status == 201
        return response.body["instance_id"]

    def test_creation_statuses_are_201(self, router, service, published):
        self._v1_create(router, service, published)
        from repro.templates import eu_deliverable_lifecycle
        model = eu_deliverable_lifecycle()
        model.uri = "urn:gelee:another"
        assert router.post("/models", actor="pm",
                           body={"model": model.to_dict()}).status == 201

    def test_callback_accept_is_202(self, router, service, published):
        instance_id = self._v1_create(router, service, published)
        router.post("/instances/{}/start".format(instance_id), actor="alice")
        router.post("/instances/{}/advance".format(instance_id), actor="alice",
                    body={"to_phase_id": "internalreview"})
        detail = router.get("/instances/{}".format(instance_id)).body
        visit = detail["visits"][-1]
        response = router.post(
            "/callbacks/{}/{}/{}".format(instance_id, visit["phase_id"],
                                         visit["invocations"][0]["call_id"]),
            body={"status": "in progress"})
        assert response.status == 202

    def test_v1_gets_are_still_200_with_unchanged_bodies(self, router, published):
        response = router.get("/models")
        assert response.status == 200
        assert isinstance(response.body, list)  # raw body, no envelope
        assert any(entry["uri"] == published for entry in response.body)

    def test_v1_deprecation_headers(self, router):
        response = router.get("/templates")
        assert response.headers["Deprecation"] == "true"
        assert response.headers["X-Gelee-Api-Version"] == "v1"
        assert "successor-version" in response.headers["Link"]

    def test_accept_false_string_rejects_change(self, router, service, published):
        from repro.serialization import lifecycle_to_xml

        instance_id = self._v1_create(router, service, published)
        router.post("/instances/{}/start".format(instance_id), actor="alice")
        revised = service.manager.model(published).new_version(created_by="pm")
        proposals = router.post("/propagations", actor="pm",
                                body={"xml": lifecycle_to_xml(revised)})
        assert proposals.status == 201
        proposal_id = proposals.body[0]["proposal_id"]
        # The v0 bug: bool("false") was True, silently accepting the change.
        decision = router.post("/propagations/{}/decision".format(proposal_id),
                               actor="alice", **{"accept": "false"})
        assert decision.ok
        assert decision.body["decision"] == "rejected"

    def test_accept_garbage_is_400(self, router, service, published):
        from repro.serialization import lifecycle_to_xml

        instance_id = self._v1_create(router, service, published)
        router.post("/instances/{}/start".format(instance_id), actor="alice")
        revised = service.manager.model(published).new_version(created_by="pm")
        proposals = router.post("/propagations", actor="pm",
                                body={"xml": lifecycle_to_xml(revised)})
        proposal_id = proposals.body[0]["proposal_id"]
        decision = router.post("/propagations/{}/decision".format(proposal_id),
                               actor="alice", **{"accept": "maybe"})
        assert decision.status == 400

    def test_propagation_instance_ids_query_string(self, router, service, published):
        from repro.serialization import lifecycle_to_xml

        first = self._v1_create(router, service, published, title="D1")
        second = self._v1_create(router, service, published, title="D2")
        router.post("/instances/{}/start".format(first), actor="alice")
        router.post("/instances/{}/start".format(second), actor="alice")
        revised = service.manager.model(published).new_version(created_by="pm")
        response = router.post(
            "/propagations", actor="pm",
            body={"xml": lifecycle_to_xml(revised)},
            **{"instance_ids": "{},{}".format(first, second)})
        assert response.status == 201
        assert {proposal["instance_id"] for proposal in response.body} == {first, second}

    def test_propagation_malformed_instance_ids_is_400(self, router, service, published):
        from repro.serialization import lifecycle_to_xml

        revised = service.manager.model(published).new_version(created_by="pm")
        response = router.post("/propagations", actor="pm",
                               body={"xml": lifecycle_to_xml(revised),
                                     "instance_ids": "a,,b"})
        assert response.status == 400
        response = router.post("/propagations", actor="pm",
                               body={"xml": lifecycle_to_xml(revised),
                                     "instance_ids": [1, 2]})
        assert response.status == 400

    def test_405_known_path_wrong_method(self, router):
        response = router.get("/propagations")
        assert response.status == 405
        assert "POST" in response.headers["Allow"]
        # Unknown paths are still 404.
        assert router.get("/nope").status == 404
        assert router.post("/instances/x/unknown", actor="a").status == 404


class TestShardedBulk:
    def test_bulk_fans_out_across_shards(self, clock):
        router = RestRouter(shard_count=4)
        service = router.service
        model_uri = router.post("/v2/templates/eu-deliverable:publish",
                                actor="pm").body["data"]["uri"]
        adapter = service.environment.adapter("Google Doc")
        items = [{"model_uri": model_uri,
                  "resource": adapter.create_resource("D{}".format(i),
                                                      owner="alice").to_dict(),
                  "owner": "alice"} for i in range(20)]
        created = router.post("/v2/instances:batchCreate", actor="alice",
                              body={"items": items})
        assert created.body["data"]["succeeded"] == 20
        ids = [result["instance_id"] for result in created.body["data"]["results"]]
        # Instances really landed on multiple shards.
        sizes = service.manager.shard_sizes()
        assert sum(sizes) == 20 and sum(1 for size in sizes if size) > 1
        advanced = router.post("/v2/instances:batchAdvance", actor="alice",
                               body={"items": ids})
        assert advanced.body["data"]["succeeded"] == 20
        stats = router.get("/v2/runtime/stats").body["data"]
        assert stats["shard_count"] == 4
