"""Unit tests for parameter definitions, binding times and parameter sets."""

import pytest

from repro.errors import ParameterBindingError
from repro.model.parameters import (
    BindingTime,
    ParameterDefinition,
    ParameterSet,
    ParameterValue,
)


class TestBindingTime:
    def test_parse_paper_tokens(self):
        assert BindingTime.parse("def") is BindingTime.DEFINITION
        assert BindingTime.parse("inst") is BindingTime.INSTANTIATION
        assert BindingTime.parse("call") is BindingTime.CALL
        assert BindingTime.parse("ANY") is BindingTime.ANY

    def test_parse_unknown_token(self):
        with pytest.raises(ParameterBindingError):
            BindingTime.parse("runtime")

    def test_allows_earlier_stages(self):
        # An instantiation-time parameter may be fixed earlier, at definition.
        assert BindingTime.INSTANTIATION.allows(BindingTime.DEFINITION)
        assert BindingTime.CALL.allows(BindingTime.INSTANTIATION)

    def test_disallows_later_stages(self):
        assert not BindingTime.DEFINITION.allows(BindingTime.CALL)
        assert not BindingTime.INSTANTIATION.allows(BindingTime.CALL)

    def test_any_allows_everything(self):
        for stage in BindingTime:
            assert BindingTime.ANY.allows(stage)


class TestParameterDefinition:
    def test_required_without_value_raises(self):
        definition = ParameterDefinition("reviewers", required=True)
        with pytest.raises(ParameterBindingError):
            definition.validate_value(None)

    def test_optional_accepts_none(self):
        assert ParameterDefinition("note").validate_value(None) is None


class TestParameterSet:
    def _definitions(self):
        return [
            ParameterDefinition("reviewers", BindingTime.INSTANTIATION, required=True),
            ParameterDefinition("message", BindingTime.ANY, default="please review"),
            ParameterDefinition("visibility", BindingTime.DEFINITION, required=False),
        ]

    def test_resolve_applies_defaults(self):
        parameters = ParameterSet(self._definitions())
        parameters.bind("reviewers", ["a"], BindingTime.INSTANTIATION)
        resolved = parameters.resolve()
        assert resolved["message"] == "please review"
        assert resolved["reviewers"] == ["a"]

    def test_required_unbound_raises(self):
        parameters = ParameterSet(self._definitions())
        with pytest.raises(ParameterBindingError):
            parameters.resolve()

    def test_later_stage_overrides_earlier(self):
        parameters = ParameterSet([ParameterDefinition("message", BindingTime.ANY)])
        parameters.bind("message", "from definition", BindingTime.DEFINITION)
        parameters.bind("message", "from call", BindingTime.CALL)
        assert parameters.resolve()["message"] == "from call"

    def test_earlier_stage_does_not_override_later(self):
        parameters = ParameterSet([ParameterDefinition("message", BindingTime.ANY)])
        parameters.bind("message", "from call", BindingTime.CALL)
        parameters.bind("message", "from definition", BindingTime.DEFINITION)
        assert parameters.resolve()["message"] == "from call"

    def test_unknown_parameter_rejected_when_declared(self):
        parameters = ParameterSet(self._definitions())
        with pytest.raises(ParameterBindingError):
            parameters.bind("typo", 1, BindingTime.CALL)

    def test_unknown_parameter_allowed_for_free_form_actions(self):
        parameters = ParameterSet()
        parameters.bind("anything", 1, BindingTime.CALL)
        assert parameters.resolve()["anything"] == 1

    def test_binding_too_late_rejected(self):
        parameters = ParameterSet(self._definitions())
        with pytest.raises(ParameterBindingError):
            parameters.bind("visibility", "public", BindingTime.CALL)

    def test_binding_earlier_than_declared_allowed(self):
        parameters = ParameterSet(self._definitions())
        parameters.bind("reviewers", ["a"], BindingTime.DEFINITION)
        assert parameters.resolve()["reviewers"] == ["a"]

    def test_copy_is_independent(self):
        parameters = ParameterSet(self._definitions())
        parameters.bind("reviewers", ["a"], BindingTime.INSTANTIATION)
        duplicate = parameters.copy()
        duplicate.bind("reviewers", ["b"], BindingTime.INSTANTIATION)
        assert parameters.resolve()["reviewers"] == ["a"]
        assert duplicate.resolve()["reviewers"] == ["b"]

    def test_bound_values_exposes_stage(self):
        parameters = ParameterSet(self._definitions())
        parameters.bind("reviewers", ["a"], BindingTime.INSTANTIATION)
        values = parameters.bound_values()
        assert values["reviewers"].bound_at is BindingTime.INSTANTIATION

    def test_parameter_value_copy(self):
        value = ParameterValue("x", [1], BindingTime.CALL)
        duplicate = value.copy()
        assert duplicate.value == [1]
        assert duplicate.bound_at is BindingTime.CALL
