"""Tests for composite (structured) resources — the §VI future-work extension."""

import pytest

from repro.errors import ResourceError
from repro.resources import ResourceDescriptor
from repro.resources.composite import (
    COMPOSITE_RESOURCE_TYPE,
    CompositeCoordinator,
    CompositeResource,
)


@pytest.fixture
def composite(environment):
    """The paper's example: a state-of-the-art package with document, refs, slides."""
    google_docs = environment.adapter("Google Doc")
    svn = environment.adapter("SVN file")
    package = CompositeResource(name="D1.1 State of the Art package", owner="alice")
    package.add_component("main document",
                          google_docs.create_resource("D1.1 main document", owner="alice"))
    package.add_component("references",
                          svn.create_resource("references.bib", owner="alice"))
    package.add_component("presentation",
                          google_docs.create_resource("D1.1 slides", owner="alice"))
    return package


class TestCompositeResource:
    def test_components_and_roles(self, composite):
        assert set(composite.components) == {"main document", "references", "presentation"}
        assert len(composite.component_uris()) == 3
        assert composite.component("references").resource_type == "SVN file"

    def test_duplicate_role_rejected(self, composite, environment):
        extra = environment.adapter("Google Doc").create_resource("other", owner="alice")
        with pytest.raises(ResourceError):
            composite.add_component("main document", extra)

    def test_empty_role_rejected(self, composite, environment):
        extra = environment.adapter("Google Doc").create_resource("other", owner="alice")
        with pytest.raises(ResourceError):
            composite.add_component("  ", extra)

    def test_unknown_role_raises(self, composite):
        with pytest.raises(ResourceError):
            composite.component("appendix")

    def test_remove_component(self, composite):
        assert composite.remove_component("presentation") is not None
        assert composite.remove_component("presentation") is None
        assert len(composite.components) == 2

    def test_describe_produces_plain_descriptor(self, composite):
        descriptor = composite.describe()
        assert isinstance(descriptor, ResourceDescriptor)
        assert descriptor.resource_type == COMPOSITE_RESOURCE_TYPE
        assert descriptor.display_name == composite.name
        assert set(descriptor.metadata["components"]) == set(composite.components)


class TestCompositeCoordinator:
    def _attach_lifecycles(self, manager, eu_model, composite):
        instances = {}
        for role, descriptor in composite.components.items():
            parameters = {
                call.call_id: {"reviewers": ["bob"]}
                for _, call in eu_model.action_calls() if "notify" in call.action_uri
            }
            instance = manager.instantiate(eu_model.uri, descriptor, owner="alice",
                                           instantiation_parameters=parameters)
            manager.start(instance.instance_id, actor="alice")
            instances[role] = instance
        return instances

    def test_progress_without_instances(self, manager, composite):
        coordinator = CompositeCoordinator(manager, composite)
        progress = coordinator.component_progress()
        assert len(progress) == 3
        assert all(item.instance_id is None for item in progress)
        assert coordinator.completion_ratio() == 0.0

    def test_aggregated_progress(self, manager, eu_model, composite):
        instances = self._attach_lifecycles(manager, eu_model, composite)
        manager.advance(instances["main document"].instance_id, actor="alice",
                        to_phase_id="internalreview")
        manager.move_to(instances["presentation"].instance_id, actor="alice",
                        phase_id="closed")
        coordinator = CompositeCoordinator(manager, composite)

        progress = {item.role: item for item in coordinator.component_progress(eu_model)}
        assert progress["main document"].phase_id == "internalreview"
        assert progress["presentation"].completed
        assert progress["references"].phase_index == 0
        assert coordinator.completion_ratio() == pytest.approx(1 / 3)

        summary = coordinator.aggregate_summary()
        assert summary["components"] == 3
        assert summary["with_lifecycle"] == 3
        assert summary["completed"] == 1

    def test_laggards_behind_a_phase(self, manager, eu_model, composite):
        instances = self._attach_lifecycles(manager, eu_model, composite)
        manager.advance(instances["main document"].instance_id, actor="alice",
                        to_phase_id="internalreview")
        coordinator = CompositeCoordinator(manager, composite)
        lagging = coordinator.laggards("internalreview", eu_model)
        assert {item.role for item in lagging} == {"references", "presentation"}
        with pytest.raises(ResourceError):
            coordinator.laggards("nonexistent", eu_model)

    def test_nudge_component_is_owner_initiated(self, manager, eu_model, composite):
        instances = self._attach_lifecycles(manager, eu_model, composite)
        coordinator = CompositeCoordinator(manager, composite)
        coordinator.nudge_component("references", actor="alice", phase_id="internalreview",
                                    annotation="bring the bibliography in line")
        assert instances["references"].current_phase_id == "internalreview"
        # nudging a component with no instance fails loudly
        empty = CompositeResource(name="empty package", owner="alice")
        empty.add_component("only", composite.component("main document"))
        empty.remove_component("only")
        with pytest.raises(ResourceError):
            CompositeCoordinator(manager, empty).nudge_component("only", "alice", "closed")
