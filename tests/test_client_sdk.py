"""Tests for the Python client SDK (in-process and over HTTP)."""

import pytest

from repro.client import GeleeApiError, GeleeClient, OperationHandle, Page
from repro.service import GeleeHttpServer, GeleeService, RestRouter
from repro.service.v2 import AdvanceItem, BatchResult, CreateInstanceItem


@pytest.fixture
def service(clock):
    from repro.plugins import build_standard_environment

    return GeleeService(environment=build_standard_environment(clock=clock), clock=clock)


@pytest.fixture
def router(service):
    return RestRouter(service)


@pytest.fixture
def client(router):
    return GeleeClient.in_process(router=router, actor="alice")


@pytest.fixture
def model_uri(client):
    return GeleeClient.in_process(
        router=client.transport.router, actor="pm").publish_template("eu-deliverable")["uri"]


def _resource(service, title="D1.1", owner="alice"):
    return service.environment.adapter("Google Doc").create_resource(
        title, owner=owner).to_dict()


class TestInProcessClient:
    def test_create_start_advance_history(self, client, service, model_uri):
        summary = client.create_instance(model_uri, _resource(service), owner="alice")
        instance_id = summary["instance_id"]
        assert client.start(instance_id)["current_phase_id"] == "elaboration"
        advanced = client.advance(instance_id, to_phase_id="internalreview",
                                  annotation="ready for review")
        assert advanced["current_phase_id"] == "internalreview"
        history = client.history(instance_id, page_size=3)
        assert isinstance(history, Page)
        assert history.total > 3
        kinds = {entry["kind"] for entry in history}
        assert "instance.created" in kinds

    def test_errors_raise_typed_exception(self, client):
        with pytest.raises(GeleeApiError) as excinfo:
            client.instance("inst-missing")
        assert excinfo.value.code == "INSTANCE_NOT_FOUND"
        assert excinfo.value.status == 404
        assert excinfo.value.request_id.startswith("req-")

    def test_iter_instances_drains_every_page(self, client, service, model_uri):
        created = {client.create_instance(model_uri, _resource(service, "D{}".format(i)),
                                          owner="alice")["instance_id"]
                   for i in range(7)}
        seen = [summary["instance_id"]
                for summary in client.iter_instances(owner="alice", page_size=2)]
        assert len(seen) == 7
        assert set(seen) == created

    def test_batch_round_trip_with_dtos(self, client, service, model_uri):
        items = [CreateInstanceItem(model_uri=model_uri,
                                    resource=_resource(service, "D{}".format(i)),
                                    owner="alice")
                 for i in range(3)]
        result = client.batch_create(items)
        assert isinstance(result, BatchResult)
        assert result.succeeded == 3 and result.failed == 0
        ids = [item.instance_id for item in result.results]
        advanced = client.batch_advance(
            [AdvanceItem(instance_id=instance_id) for instance_id in ids])
        assert advanced.succeeded == 3

    def test_async_batch_with_operation_polling(self, client, service, model_uri):
        ids = [client.create_instance(model_uri, _resource(service, "D{}".format(i)),
                                      owner="alice")["instance_id"] for i in range(3)]
        handle = client.batch_advance(ids, wait=False)
        assert isinstance(handle, OperationHandle)
        finished = client.wait_operation(handle.operation_id, timeout=10)
        assert finished.status == "succeeded"
        assert finished.result["succeeded"] == 3

    def test_monitoring_and_stats(self, client, service, model_uri):
        client.create_instance(model_uri, _resource(service), owner="alice")
        assert client.monitoring_summary()["total"] == 1
        table = client.monitoring_table(page_size=10)
        assert len(table) == 1
        stats = client.runtime_stats()
        assert stats["instances"] == 1
        assert stats["api"]["requests"] >= 1
        assert "Google Doc" in client.resource_types()

    def test_propagation_flow(self, client, service, model_uri):
        from repro.serialization import lifecycle_to_xml

        instance_id = client.create_instance(model_uri, _resource(service),
                                             owner="alice")["instance_id"]
        client.start(instance_id)
        revised = service.manager.model(model_uri).new_version(created_by="pm")
        pm = GeleeClient.in_process(router=client.transport.router, actor="pm")
        proposals = pm.propose_change(lifecycle_to_xml(revised),
                                      instance_ids=[instance_id])
        assert len(proposals) == 1
        decision = client.decide_change(proposals[0]["proposal_id"], accept=True)
        assert decision["to_version"] == "1.1"

    def test_widget_and_annotate(self, client, service, model_uri):
        instance_id = client.create_instance(model_uri, _resource(service),
                                             owner="alice")["instance_id"]
        client.start(instance_id)
        note = client.annotate(instance_id, "looks good", kind="note")
        assert note["text"] == "looks good"
        widget = client.widget(instance_id, viewer="alice")
        assert widget["current_phase"] == "elaboration"


class TestHttpClient:
    def test_same_behaviour_over_http(self, router, service, model_uri):
        with GeleeHttpServer(router) as server:
            client = GeleeClient.connect(server.host, server.port, actor="alice")
            summary = client.create_instance(model_uri, _resource(service), owner="alice")
            instance_id = summary["instance_id"]
            client.start(instance_id)
            page = client.list_instances(owner="alice", page_size=10)
            assert page.total == 1
            assert page.items[0]["current_phase_id"] == "elaboration"
            result = client.batch_advance(
                [{"instance_id": instance_id, "to_phase_id": "internalreview"}])
            assert result.succeeded == 1
            with pytest.raises(GeleeApiError) as excinfo:
                client.instance("inst-missing")
            assert excinfo.value.code == "INSTANCE_NOT_FOUND"

    def test_pagination_tokens_survive_urls(self, router, service, model_uri):
        with GeleeHttpServer(router) as server:
            client = GeleeClient.connect(server.host, server.port, actor="alice")
            for index in range(5):
                client.create_instance(model_uri,
                                       _resource(service, "D{}".format(index)),
                                       owner="alice")
            seen = list(client.iter_instances(owner="alice", page_size=2))
            assert len(seen) == 5

    def test_async_operation_over_http(self, router, service, model_uri):
        with GeleeHttpServer(router) as server:
            client = GeleeClient.connect(server.host, server.port, actor="alice")
            ids = [client.create_instance(model_uri,
                                          _resource(service, "D{}".format(index)),
                                          owner="alice")["instance_id"]
                   for index in range(2)]
            handle = client.batch_advance(ids, wait=False)
            finished = client.wait_operation(handle.operation_id, timeout=10)
            assert finished.status == "succeeded"
            assert finished.result["succeeded"] == 2
