"""Tests for the lifecycle manager (design-time and runtime modules)."""

import pytest

from repro.actions import library
from repro.actions.invocation import ActionStatus
from repro.errors import (
    InstanceNotFoundError,
    LifecycleNotFoundError,
    RuntimeStateError,
    ValidationError,
)
from repro.events import EventRecorder
from repro.model import LifecycleBuilder
from repro.storage import ExecutionLog
from repro.templates import document_review_lifecycle


class TestDesignTime:
    def test_publish_and_fetch_model(self, manager, eu_model):
        assert manager.model(eu_model.uri).name == eu_model.name
        assert manager.model_versions(eu_model.uri) == ["1.0"]
        assert eu_model in manager.models() or any(
            m.uri == eu_model.uri for m in manager.models())

    def test_publish_invalid_model_rejected(self, manager):
        with pytest.raises(ValidationError):
            manager.publish_model(LifecycleBuilder("Empty").peek(), actor="pm")

    def test_publish_same_version_twice_rejected(self, manager, eu_model):
        with pytest.raises(ValidationError):
            manager.publish_model(eu_model.copy(), actor="pm")

    def test_publish_new_version(self, manager, eu_model):
        manager.publish_model(eu_model.new_version(created_by="pm"), actor="pm")
        assert manager.model_versions(eu_model.uri) == ["1.0", "1.1"]
        assert manager.model(eu_model.uri).version.version_number == "1.1"
        assert manager.model(eu_model.uri, version="1.0").version.version_number == "1.0"

    def test_unknown_model_raises(self, manager):
        with pytest.raises(LifecycleNotFoundError):
            manager.model("urn:nothing")
        with pytest.raises(LifecycleNotFoundError):
            manager.model("urn:nothing", version="1.0")

    def test_applicable_resource_types_for_fig1(self, manager, eu_model):
        applicable = manager.applicable_resource_types(eu_model.uri)
        # Every document platform implements the Fig. 1 actions.
        assert {"Google Doc", "MediaWiki page", "Zoho document"} <= set(applicable)

    def test_applicable_resource_types_excludes_types_missing_actions(self, manager):
        from repro.templates import software_release_lifecycle

        model = software_release_lifecycle()
        manager.publish_model(model, actor="pm")
        applicable = manager.applicable_resource_types(model.uri)
        assert "SVN file" in applicable
        # Photo albums have no "create snapshot" implementation, so the
        # release lifecycle does not apply to them.
        assert "Photo album" not in applicable


class TestInstantiation:
    def test_instantiate_copies_model(self, manager, eu_model, eu_instance):
        assert eu_instance.model is not manager.model(eu_model.uri)
        assert eu_instance.model.uri == eu_model.uri
        assert eu_instance.status.value == "created"

    def test_instantiate_requires_existing_resource(self, manager, eu_model):
        from repro.resources import ResourceDescriptor

        ghost = ResourceDescriptor(uri="https://docs.google.example/document/ghost",
                                   resource_type="Google Doc")
        with pytest.raises(Exception):
            manager.instantiate(eu_model.uri, ghost, owner="alice")

    def test_unknown_instance_raises(self, manager):
        with pytest.raises(InstanceNotFoundError):
            manager.instance("inst-missing")

    def test_several_instances_on_same_uri(self, manager, eu_model, google_doc):
        first = manager.instantiate(eu_model.uri, google_doc, owner="alice")
        second = manager.instantiate(eu_model.uri, google_doc, owner="bob")
        attached = manager.instances_for_resource(google_doc.uri)
        assert {first.instance_id, second.instance_id} == {i.instance_id for i in attached}

    def test_instance_filters(self, manager, eu_model, google_doc, wiki_page):
        manager.instantiate(eu_model.uri, google_doc, owner="alice")
        manager.instantiate(eu_model.uri, wiki_page, owner="bob")
        assert len(manager.instances(owner="alice")) == 1
        assert len(manager.instances(model_uri=eu_model.uri)) == 2


class TestProgression:
    def test_start_enters_initial_phase(self, manager, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        assert eu_instance.current_phase_id == "elaboration"
        assert eu_instance.is_active

    def test_start_twice_rejected(self, manager, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        with pytest.raises(RuntimeStateError):
            manager.start(eu_instance.instance_id, actor="alice")

    def test_advance_follows_single_successor(self, manager, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        manager.advance(eu_instance.instance_id, actor="alice")
        assert eu_instance.current_phase_id == "internalreview"
        assert eu_instance.visits[-1].followed_model

    def test_advance_with_multiple_successors_needs_choice(self, manager, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        manager.advance(eu_instance.instance_id, actor="alice", to_phase_id="internalreview")
        # internalreview suggests both finalassembly and the rework loop to elaboration
        with pytest.raises(RuntimeStateError):
            manager.advance(eu_instance.instance_id, actor="alice")
        manager.advance(eu_instance.instance_id, actor="alice", to_phase_id="finalassembly")
        assert eu_instance.current_phase_id == "finalassembly"

    def test_advance_on_unstarted_instance_starts_it(self, manager, eu_instance):
        manager.advance(eu_instance.instance_id, actor="alice", to_phase_id="elaboration")
        assert eu_instance.current_phase_id == "elaboration"

    def test_move_to_any_phase_is_deviation(self, manager, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        manager.move_to(eu_instance.instance_id, actor="alice", phase_id="publication",
                        annotation="fast-tracked")
        assert eu_instance.current_phase_id == "publication"
        assert len(eu_instance.deviations()) == 1
        assert eu_instance.annotations[-1].kind == "deviation"

    def test_skip_to_records_reason(self, manager, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        manager.skip_to(eu_instance.instance_id, "alice", "finalassembly",
                        reason="review skipped, deadline close")
        assert eu_instance.annotations[-1].text == "review skipped, deadline close"

    def test_completion_on_terminal_phase(self, manager, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        for phase in ("internalreview", "finalassembly", "eureview", "publication", "closed"):
            manager.advance(eu_instance.instance_id, actor="alice", to_phase_id=phase)
        assert eu_instance.is_completed

    def test_move_out_of_terminal_reopens(self, manager, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        manager.move_to(eu_instance.instance_id, actor="alice", phase_id="closed")
        assert eu_instance.is_completed
        manager.move_to(eu_instance.instance_id, actor="alice", phase_id="elaboration",
                        annotation="work continues as a journal paper")
        assert eu_instance.is_active

    def test_annotate_without_move(self, manager, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        annotation = manager.annotate(eu_instance.instance_id, "alice", "waiting on partner")
        assert annotation.phase_id == "elaboration"


class TestActionExecution:
    def test_entering_internal_review_runs_actions(self, manager, eu_instance, environment):
        manager.start(eu_instance.instance_id, actor="alice")
        manager.advance(eu_instance.instance_id, actor="alice", to_phase_id="internalreview")
        invocations = eu_instance.visits[-1].invocations
        assert {inv.action_name for inv in invocations} == \
            {"Change access rights", "Notify reviewers"}
        assert all(inv.status is ActionStatus.COMPLETED for inv in invocations)
        # Side effect on the managed application: reviewers were notified.
        app = environment.adapter("Google Doc").application
        assert app.notifications(eu_instance.resource.uri)

    def test_empty_phase_runs_no_actions(self, manager, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        assert eu_instance.visits[-1].invocations == []

    def test_missing_required_parameter_records_failure(self, manager, eu_model, google_doc):
        # No reviewers bound at instantiation: the notify action fails, the
        # move still happens (actions are not guaranteed to succeed).
        instance = manager.instantiate(eu_model.uri, google_doc, owner="alice")
        manager.start(instance.instance_id, actor="alice")
        manager.advance(instance.instance_id, actor="alice", to_phase_id="internalreview")
        assert instance.current_phase_id == "internalreview"
        failed = instance.failed_invocations()
        assert len(failed) == 1
        assert "reviewers" in failed[0].error

    def test_call_time_parameters_override(self, manager, eu_model, google_doc):
        instance = manager.instantiate(eu_model.uri, google_doc, owner="alice")
        manager.start(instance.instance_id, actor="alice")
        notify_calls = [call for phase_id, call in instance.model.action_calls()
                        if phase_id == "internalreview" and "notify" in call.action_uri]
        manager.advance(instance.instance_id, actor="alice", to_phase_id="internalreview",
                        call_parameters={notify_calls[0].call_id: {"reviewers": ["dave"]}})
        assert not instance.failed_invocations()

    def test_full_run_publishes_on_website(self, manager, eu_instance, environment):
        manager.start(eu_instance.instance_id, actor="alice")
        for phase in ("internalreview", "finalassembly", "eureview", "publication", "closed"):
            manager.advance(eu_instance.instance_id, actor="alice", to_phase_id=phase)
        assert environment.website.is_published(eu_instance.resource.uri)
        doc = environment.adapter("Google Doc").application.artifact(eu_instance.resource.uri)
        assert doc.access.visibility == "public"
        assert doc.exports  # Generate PDF ran during Final Assembly

    def test_callback_updates_invocation(self, manager, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        manager.advance(eu_instance.instance_id, actor="alice", to_phase_id="internalreview")
        invocation = eu_instance.visits[-1].invocations[0]
        message = manager.handle_callback(invocation.callback_uri, "late update",
                                          detail="reviewer replaced")
        assert message.detail == "reviewer replaced"
        assert invocation.messages[-1].status == "late update"

    def test_callback_for_unknown_invocation_raises(self, manager, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        with pytest.raises(RuntimeStateError):
            manager.handle_callback("urn:gelee:runtime/callbacks/{}/elaboration/call-x".format(
                eu_instance.instance_id), "completed")


class TestEventsAndLog:
    def test_events_published_for_progression(self, manager, eu_instance):
        recorder = EventRecorder(manager.bus)
        manager.start(eu_instance.instance_id, actor="alice")
        manager.advance(eu_instance.instance_id, actor="alice", to_phase_id="internalreview")
        kinds = recorder.kinds()
        assert "instance.phase_entered" in kinds
        assert "instance.phase_left" in kinds
        assert "action.dispatched" in kinds
        assert "action.completed" in kinds

    def test_execution_log_records_history(self, manager, eu_instance):
        log = ExecutionLog(bus=manager.bus)
        manager.start(eu_instance.instance_id, actor="alice")
        manager.advance(eu_instance.instance_id, actor="alice", to_phase_id="internalreview")
        history = log.history_of(eu_instance.instance_id)
        assert history
        assert history[0].kind == "instance.phase_entered"

    def test_completed_event(self, manager, eu_instance):
        recorder = EventRecorder(manager.bus, pattern="instance.completed")
        manager.start(eu_instance.instance_id, actor="alice")
        manager.move_to(eu_instance.instance_id, actor="alice", phase_id="closed")
        assert len(recorder.events) == 1


class TestOwnerModelChange:
    def test_owner_changes_instance_model(self, manager, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        replacement = document_review_lifecycle()
        manager.change_instance_model(eu_instance.instance_id, "alice", replacement)
        assert eu_instance.model.name == "Document review"
        assert eu_instance.current_phase_id == "draft"  # fell back to initial phase

    def test_change_keeps_phase_when_it_exists(self, manager, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        variant = eu_instance.model.copy()
        variant.name = "Custom deliverable plan"
        variant.version = variant.version.bump()
        manager.change_instance_model(eu_instance.instance_id, "alice", variant)
        assert eu_instance.current_phase_id == "elaboration"
        assert eu_instance.model.name == "Custom deliverable plan"
