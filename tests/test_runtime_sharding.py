"""Tests for the sharded runtime, the instance index and the batching bus."""

import threading

import pytest

from repro.clock import SimulatedClock
from repro.errors import PropagationError, RuntimeStateError
from repro.events import BatchingEventBus, Event, EventBus, EventRecorder
from repro.monitoring import MonitoringCockpit
from repro.runtime import (
    InstanceStatus,
    ShardedLifecycleManager,
    shard_index_for,
)
from repro.service import GeleeService, RestRouter
from repro.service.rest import Request
from repro.templates import eu_deliverable_lifecycle


@pytest.fixture
def sharded(environment, clock):
    manager = ShardedLifecycleManager(environment, shard_count=4, clock=clock)
    model = eu_deliverable_lifecycle()
    manager.publish_model(model, actor="coordinator")
    return manager, model


def _docs(environment, count, owner="alice"):
    adapter = environment.adapter("Google Doc")
    return [adapter.create_resource("doc {}".format(i), owner=owner)
            for i in range(count)]


# ----------------------------------------------------------------- routing
class TestShardRouting:
    def test_routing_is_stable_and_in_range(self):
        for shard_count in (1, 4, 16):
            for instance_id in ("inst-a", "inst-b", "inst-0123456789ab"):
                index = shard_index_for(instance_id, shard_count)
                assert 0 <= index < shard_count
                assert index == shard_index_for(instance_id, shard_count)

    def test_instance_lands_on_the_shard_its_id_hashes_to(self, sharded, environment):
        manager, model = sharded
        for doc in _docs(environment, 10):
            instance = manager.instantiate(model.uri, doc, owner="alice")
            index = manager.shard_index(instance.instance_id)
            shard = manager.shards[index]
            assert shard.instance(instance.instance_id) is instance

    def test_ten_thousand_ids_spread_over_all_shards(self):
        counts = [0] * 16
        for i in range(10_000):
            counts[shard_index_for("inst-{:012x}".format(i), 16)] += 1
        assert min(counts) > 0
        # crc32 spreads roughly uniformly: no shard should be wildly off.
        assert max(counts) < 3 * (10_000 // 16)

    def test_explicit_instance_id_is_honoured_and_unique(self, sharded, environment):
        manager, model = sharded
        doc = _docs(environment, 1)[0]
        instance = manager.instantiate(model.uri, doc, owner="alice",
                                       instance_id="inst-fixed")
        assert instance.instance_id == "inst-fixed"
        assert manager.instance("inst-fixed") is instance
        with pytest.raises(RuntimeStateError):
            manager.shards[manager.shard_index("inst-fixed")].instantiate(
                model.uri, doc, owner="alice", instance_id="inst-fixed")


# ---------------------------------------------------------- cross-shard ops
class TestCrossShardQueries:
    def test_listing_merges_all_shards(self, sharded, environment):
        manager, model = sharded
        created = [manager.instantiate(model.uri, doc, owner="alice")
                   for doc in _docs(environment, 20)]
        assert manager.instance_count() == 20
        assert sum(manager.shard_sizes()) == 20
        listed = {instance.instance_id for instance in manager.instances()}
        assert listed == {instance.instance_id for instance in created}

    def test_filtered_listing_and_distributions(self, sharded, environment):
        manager, model = sharded
        docs = _docs(environment, 12)
        for position, doc in enumerate(docs):
            owner = "alice" if position % 2 == 0 else "bob"
            instance = manager.instantiate(model.uri, doc, owner=owner)
            if position < 4:
                manager.start(instance.instance_id, actor=owner)
        assert len(manager.instances(owner="alice")) == 6
        assert len(manager.instances(status=InstanceStatus.ACTIVE)) == 4
        assert manager.owner_distribution() == {"alice": 6, "bob": 6}
        assert manager.phase_distribution()[None] == 8
        assert manager.status_distribution()[InstanceStatus.CREATED] == 8

    def test_cockpit_runs_unchanged_on_the_sharded_manager(self, sharded, environment):
        manager, model = sharded
        for doc in _docs(environment, 6):
            instance = manager.instantiate(model.uri, doc, owner="alice")
            manager.start(instance.instance_id, actor="alice")
        cockpit = MonitoringCockpit(manager)
        summary = cockpit.portfolio_summary()
        assert summary.total == 6
        assert summary.active == 6
        assert cockpit.phase_counts() == {"elaboration": 6}
        assert len(cockpit.status_table()) == 6
        assert cockpit.instances_in_phase("elaboration")[0].current_phase_id == "elaboration"

    def test_instances_for_resource_across_shards(self, sharded, environment):
        manager, model = sharded
        doc = _docs(environment, 1)[0]
        first = manager.instantiate(model.uri, doc, owner="alice")
        second = manager.instantiate(model.uri, doc, owner="bob")
        found = {i.instance_id for i in manager.instances_for_resource(doc.uri)}
        assert found == {first.instance_id, second.instance_id}


# ------------------------------------------------------------- progression
class TestConcurrentProgression:
    def test_threads_progress_disjoint_shards_safely(self, environment, clock):
        manager = ShardedLifecycleManager(environment, shard_count=8, clock=clock)
        model = eu_deliverable_lifecycle()
        manager.publish_model(model, actor="coordinator")
        ids = [manager.instantiate(model.uri, doc, owner="alice").instance_id
               for doc in _docs(environment, 64)]

        errors = []

        def drive(instance_id):
            try:
                manager.start(instance_id, actor="alice")
                manager.advance(instance_id, actor="alice", to_phase_id="internalreview")
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=drive, args=(instance_id,))
                   for instance_id in ids]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert all(manager.instance(i).current_phase_id == "internalreview" for i in ids)
        assert manager.phase_distribution() == {"internalreview": 64}

    def test_map_instances_returns_results_in_input_order(self, sharded, environment):
        manager, model = sharded
        ids = [manager.instantiate(model.uri, doc, owner="alice").instance_id
               for doc in _docs(environment, 16)]
        results = manager.map_instances(
            ids, lambda shard, instance_id: shard.start(instance_id, actor="alice"))
        assert [instance.instance_id for instance in results] == ids
        assert all(instance.current_phase_id == "elaboration" for instance in results)

    def test_map_instances_propagates_worker_errors(self, sharded, environment):
        manager, model = sharded
        ids = [manager.instantiate(model.uri, doc, owner="alice").instance_id
               for doc in _docs(environment, 4)]
        manager.map_instances(ids, lambda shard, i: shard.start(i, actor="alice"))
        with pytest.raises(RuntimeStateError):
            # Starting an already-started instance fails inside the workers.
            manager.map_instances(ids, lambda shard, i: shard.start(i, actor="alice"))


# ---------------------------------------------------------- model evolution
class TestShardedPropagation:
    def test_propose_accept_and_reject_route_to_the_right_shard(self, sharded, environment):
        manager, model = sharded
        ids = [manager.instantiate(model.uri, doc, owner="alice").instance_id
               for doc in _docs(environment, 8)]
        for instance_id in ids:
            manager.start(instance_id, actor="alice")
        revised = model.new_version(created_by="coordinator")
        proposals = manager.propose_change(revised, actor="coordinator")
        assert len(proposals) == 8
        accepted = manager.accept_change(proposals[0].proposal_id, "alice")
        assert accepted.to_version == revised.version.version_number
        rejected = manager.reject_change(proposals[1].proposal_id, "alice", reason="later")
        assert rejected.decision.value == "rejected"
        assert manager.instance(proposals[0].instance_id).model_version \
            == revised.version.version_number
        with pytest.raises(PropagationError):
            manager.accept_change("prop-missing", "alice")


# ------------------------------------------------------------ event batching
class TestBatchingEventBus:
    @staticmethod
    def _event(kind, index, clock):
        return Event(kind=kind, timestamp=clock.now(), subject_id="s{}".format(index))

    def test_flush_preserves_publish_order(self):
        clock = SimulatedClock()
        bus = BatchingEventBus(clock=clock, max_batch=100, max_delay_seconds=3600)
        recorder = EventRecorder(bus)
        for index in range(10):
            bus.publish(self._event("instance.phase_entered", index, clock))
        assert recorder.events == []
        assert bus.pending_count == 10
        assert bus.flush() == 10
        assert [event.subject_id for event in recorder.events] \
            == ["s{}".format(index) for index in range(10)]

    def test_size_threshold_triggers_flush(self):
        clock = SimulatedClock()
        bus = BatchingEventBus(clock=clock, max_batch=4, max_delay_seconds=3600)
        recorder = EventRecorder(bus)
        for index in range(9):
            bus.publish(self._event("k", index, clock))
        assert len(recorder.events) == 8  # two full batches delivered
        assert bus.pending_count == 1
        assert bus.flushed_batches == 2

    def test_time_threshold_uses_the_injected_clock(self):
        clock = SimulatedClock()
        bus = BatchingEventBus(clock=clock, max_batch=1000, max_delay_seconds=60)
        recorder = EventRecorder(bus)
        bus.publish(self._event("k", 0, clock))
        assert recorder.events == []
        clock.advance(minutes=2)
        bus.publish(self._event("k", 1, clock))
        assert len(recorder.events) == 2
        assert bus.pending_count == 0

    def test_context_manager_flushes_on_exit(self):
        clock = SimulatedClock()
        recorder_events = []
        with BatchingEventBus(clock=clock, max_batch=100, max_delay_seconds=3600) as bus:
            bus.subscribe("*", recorder_events.append)
            bus.publish(self._event("k", 0, clock))
            assert recorder_events == []
        assert len(recorder_events) == 1

    def test_published_count_counts_buffered_events(self):
        clock = SimulatedClock()
        bus = BatchingEventBus(clock=clock, max_batch=100, max_delay_seconds=3600)
        bus.publish(self._event("k", 0, clock))
        assert bus.published_count == 1

    def test_sharded_runtime_on_a_batching_bus_delivers_everything(self, environment, clock):
        bus = BatchingEventBus(clock=clock, max_batch=32, max_delay_seconds=3600)
        recorder = EventRecorder(bus, pattern="instance.")
        manager = ShardedLifecycleManager(environment, shard_count=4, clock=clock, bus=bus)
        model = eu_deliverable_lifecycle()
        manager.publish_model(model, actor="coordinator")
        ids = [manager.instantiate(model.uri, doc, owner="alice").instance_id
               for doc in _docs(environment, 10)]
        manager.map_instances(ids, lambda shard, i: shard.start(i, actor="alice"))
        bus.flush()
        created = [e for e in recorder.events if e.kind == "instance.created"]
        entered = [e for e in recorder.events if e.kind == "instance.phase_entered"]
        assert len(created) == 10
        assert len(entered) == 10


# -------------------------------------------------------------- service tier
class TestShardedService:
    def test_service_accepts_a_shard_count(self, clock):
        service = GeleeService(clock=clock, shard_count=4)
        assert isinstance(service.manager, ShardedLifecycleManager)
        stats = service.runtime_stats()
        assert stats["shard_count"] == 4
        assert stats["shard_sizes"] == [0, 0, 0, 0]

    def test_service_accepts_an_injected_sharded_manager(self, environment, clock):
        bus = EventBus()
        manager = ShardedLifecycleManager(environment, shard_count=2, clock=clock, bus=bus)
        service = GeleeService(clock=clock, manager=manager)
        assert service.manager is manager
        assert service.bus is bus
        # The service must reuse the kernel's environment, or resources
        # created through one would be unknown to the other.
        assert service.environment is manager.environment
        model = eu_deliverable_lifecycle()
        manager.publish_model(model, actor="coordinator")
        doc = service.environment.adapter("Google Doc").create_resource(
            "D1.1", owner="alice")
        created = service.create_instance(model.uri, doc.to_dict(), owner="alice")
        assert created["status"] == "created"

    def test_rest_router_builds_a_sharded_service(self, clock):
        router = RestRouter(shard_count=4)
        response = router.handle(Request("GET", "/runtime/stats"))
        assert response.ok
        assert response.body["shard_count"] == 4

    def test_sharded_service_end_to_end_over_rest(self, clock):
        service = GeleeService(clock=clock, shard_count=4)
        router = RestRouter(service)
        publish = router.handle(Request(
            "POST", "/templates/eu-deliverable/publish", body={"actor": "pm"}))
        assert publish.ok
        model_uri = publish.body["uri"]
        descriptor = service.environment.adapter("Google Doc").create_resource(
            "D1.1", owner="alice")
        create = router.handle(Request("POST", "/instances", body={
            "model_uri": model_uri,
            "owner": "alice",
            "resource": descriptor.to_dict(),
        }))
        assert create.ok
        instance_id = create.body["instance_id"]
        start = router.handle(Request(
            "POST", "/instances/{}/start".format(instance_id), body={"actor": "alice"}))
        assert start.ok
        stats = router.handle(Request("GET", "/runtime/stats")).body
        assert stats["instances"] == 1
        assert sum(stats["shard_sizes"]) == 1


# ------------------------------------------------------------------ bulk ops
class TestBulkRuntimeEntryPoints:
    def test_batch_instantiate_fans_out_and_keeps_order(self, sharded, environment):
        manager, model = sharded
        docs = _docs(environment, 12)
        instances = manager.batch_instantiate([
            {"model_uri": model.uri, "resource": doc, "owner": "alice"}
            for doc in docs])
        assert len(instances) == 12
        for doc, instance in zip(docs, instances):
            assert instance.resource.uri == doc.uri
        sizes = manager.shard_sizes()
        assert sum(sizes) == 12 and sum(1 for size in sizes if size) > 1

    def test_batch_instantiate_captures_per_item_errors(self, sharded, environment):
        manager, model = sharded
        docs = _docs(environment, 3)
        requests = [{"model_uri": model.uri, "resource": doc, "owner": "alice"}
                    for doc in docs]
        requests.insert(1, {"model_uri": "urn:missing", "resource": docs[0],
                            "owner": "alice"})
        results = manager.batch_instantiate(requests, capture_errors=True)
        assert [isinstance(result, BaseException) for result in results] == [
            False, True, False, False]
        assert manager.instance_count() == 3

    def test_batch_instantiate_raises_without_capture(self, sharded, environment):
        manager, model = sharded
        from repro.errors import LifecycleNotFoundError

        with pytest.raises(LifecycleNotFoundError):
            manager.batch_instantiate([
                {"model_uri": "urn:missing", "resource": _docs(environment, 1)[0],
                 "owner": "alice"}])

    def test_map_instances_captures_errors_and_continues(self, sharded, environment):
        manager, model = sharded
        instances = manager.batch_instantiate([
            {"model_uri": model.uri, "resource": doc, "owner": "alice"}
            for doc in _docs(environment, 6)])
        ids = [instance.instance_id for instance in instances]
        ids.insert(2, "inst-missing")
        results = manager.map_instances(
            ids, lambda shard, iid: shard.start(iid, actor="alice"),
            capture_errors=True)
        assert sum(1 for result in results if isinstance(result, BaseException)) == 1
        assert all(instance.current_phase_id == "elaboration"
                   for instance in instances)

    def test_single_manager_has_the_same_bulk_surface(self, manager, eu_model, environment):
        docs = _docs(environment, 3)
        instances = manager.batch_instantiate([
            {"model_uri": eu_model.uri, "resource": doc, "owner": "alice"}
            for doc in docs])
        assert len(instances) == 3
        results = manager.map_instances(
            [instance.instance_id for instance in instances] + ["inst-missing"],
            lambda kernel, iid: kernel.start(iid, actor="alice"),
            capture_errors=True)
        assert isinstance(results[-1], BaseException)
        assert all(not isinstance(result, BaseException) for result in results[:-1])
