"""Property-based tests (hypothesis) for core data structures and invariants."""

import string

from hypothesis import given, settings, strategies as st

from repro.identifiers import normalize_uri, slugify
from repro.model import ActionCall, LifecycleBuilder, LifecycleModel, Phase, BEGIN
from repro.model.lifecycle import LifecycleModel as Model
from repro.serialization import (
    lifecycle_from_json,
    lifecycle_from_xml,
    lifecycle_to_json,
    lifecycle_to_xml,
)
from repro.storage import InMemoryRepository

# ------------------------------------------------------------------ strategies

phase_names = st.text(alphabet=string.ascii_letters + " ", min_size=1, max_size=20).filter(
    lambda text: text.strip())
safe_values = st.text(alphabet=string.ascii_letters + string.digits + " .-", max_size=30)


@st.composite
def lifecycle_models(draw):
    """Random small lifecycle models with unique phases and valid transitions."""
    names = draw(st.lists(phase_names, min_size=2, max_size=6,
                          unique_by=lambda name: slugify(name)))
    # The XML codec normalises surrounding whitespace, so generate clean names.
    model = Model(name=draw(phase_names).strip())
    phase_ids = []
    for index, name in enumerate(names):
        terminal = index == len(names) - 1
        phase = Phase(phase_id=slugify(name), name=name.strip(), terminal=terminal)
        if not terminal and draw(st.booleans()):
            phase.add_action(ActionCall("http://www.liquidpub.org/a/chr",
                                        "Change access rights",
                                        {"visibility": draw(safe_values)}))
        model.add_phase(phase)
        phase_ids.append(phase.phase_id)
    model.add_transition(BEGIN, phase_ids[0])
    for source, target in zip(phase_ids, phase_ids[1:]):
        model.add_transition(source, target)
    # optionally add a few extra (possibly backward) edges between non-terminal phases
    extra = draw(st.lists(st.tuples(st.sampled_from(phase_ids[:-1]),
                                    st.sampled_from(phase_ids[:-1])), max_size=3))
    for source, target in extra:
        if source != target:
            model.add_transition(source, target)
    return model


# ------------------------------------------------------------------- properties

class TestSerializationProperties:
    @given(lifecycle_models())
    @settings(max_examples=40, deadline=None)
    def test_xml_round_trip_preserves_model(self, model):
        restored = lifecycle_from_xml(lifecycle_to_xml(model))
        assert restored.name == model.name
        assert restored.phase_ids == model.phase_ids
        assert len(restored.transitions) == len(model.transitions)
        for phase in model.phases:
            restored_phase = restored.phase(phase.phase_id)
            assert restored_phase.terminal == phase.terminal
            assert [c.action_uri for c in restored_phase.actions] == \
                [c.action_uri for c in phase.actions]

    @given(lifecycle_models())
    @settings(max_examples=40, deadline=None)
    def test_json_round_trip_preserves_model(self, model):
        restored = lifecycle_from_json(lifecycle_to_json(model))
        assert restored.to_dict() == model.to_dict()

    @given(lifecycle_models())
    @settings(max_examples=40, deadline=None)
    def test_xml_serialization_is_stable(self, model):
        once = lifecycle_to_xml(lifecycle_from_xml(lifecycle_to_xml(model)))
        twice = lifecycle_to_xml(lifecycle_from_xml(once))
        assert once == twice


class TestModelProperties:
    @given(lifecycle_models())
    @settings(max_examples=40, deadline=None)
    def test_copy_preserves_structure_and_is_independent(self, model):
        duplicate = model.copy()
        assert duplicate.to_dict() == model.to_dict()
        if duplicate.phases:
            duplicate.phases[0].name = duplicate.phases[0].name + " changed"
            duplicate.remove_phase(duplicate.phase_ids[-1])
        assert len(model) >= len(duplicate)

    @given(lifecycle_models())
    @settings(max_examples=40, deadline=None)
    def test_successors_are_always_modeled_moves(self, model):
        for phase_id in model.phase_ids:
            for successor in model.successors(phase_id):
                assert model.is_modeled_move(phase_id, successor.phase_id)

    @given(lifecycle_models())
    @settings(max_examples=40, deadline=None)
    def test_initial_phases_are_reachable(self, model):
        reachable = model.reachable_phases()
        for phase in model.initial_phases():
            assert phase.phase_id in reachable

    @given(lifecycle_models())
    @settings(max_examples=40, deadline=None)
    def test_element_count_lower_bound(self, model):
        assert model.element_count() >= len(model) + len(model.transitions)


class TestIdentifierProperties:
    @given(st.text(min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_slugify_is_idempotent_and_safe(self, text):
        slug = slugify(text)
        assert slugify(slug) == slug
        assert " " not in slug
        assert slug == slug.lower()

    @given(st.sampled_from(["http", "https"]),
           st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=10),
           st.text(alphabet=string.ascii_letters + string.digits, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_normalize_uri_is_idempotent(self, scheme, host, path):
        uri = "{}://{}.org/{}".format(scheme, host, path)
        normalized = normalize_uri(uri)
        assert normalize_uri(normalized) == normalized


class TestRepositoryProperties:
    @given(st.dictionaries(st.text(alphabet=string.ascii_letters, min_size=1, max_size=8),
                           st.dictionaries(st.sampled_from(["a", "b", "c"]), safe_values,
                                           max_size=3),
                           max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_put_then_get_returns_latest_document(self, documents):
        repository = InMemoryRepository()
        for record_id, document in documents.items():
            repository.put(record_id, document)
            repository.put(record_id, dict(document, updated=True))
        for record_id, document in documents.items():
            stored = repository.get(record_id)
            assert stored.version == 2
            assert stored.document["updated"] is True
        assert repository.count() == len(documents)

    @given(st.lists(st.text(alphabet=string.ascii_letters, min_size=1, max_size=8),
                    unique=True, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_delete_removes_exactly_the_deleted_ids(self, record_ids):
        repository = InMemoryRepository()
        for record_id in record_ids:
            repository.put(record_id, {"x": 1})
        to_delete = record_ids[::2]
        for record_id in to_delete:
            assert repository.delete(record_id)
        assert set(repository.ids()) == set(record_ids) - set(to_delete)
