"""Tests for model-change propagation and state migration."""

import pytest

from repro.errors import PropagationError
from repro.model import LifecycleBuilder, Phase
from repro.runtime.migration import (
    suggest_phase_mapping,
    suggest_target_phase,
    unmapped_phases,
)
from repro.runtime.propagation import PropagationDecision


class TestPhaseMappingSuggestions:
    def _old(self):
        return (
            LifecycleBuilder("Plan").phase("Draft").phase("Review").terminal("Done")
            .flow("Draft", "Review", "Done").build()
        )

    def test_same_ids_map_directly(self):
        old = self._old()
        new = old.new_version()
        assert suggest_phase_mapping(old, new) == {"draft": "draft", "review": "review",
                                                   "done": "done"}

    def test_renamed_id_matched_by_name(self):
        old = self._old()
        new = (
            LifecycleBuilder("Plan", uri=old.uri)
            .phase("Draft", phase_id="drafting-v2")
            .phase("Review", phase_id="review")
            .terminal("Done", phase_id="done")
            .flow("Draft", "Review", "Done").build()
        )
        mapping = suggest_phase_mapping(old, new)
        assert mapping["draft"] == "drafting-v2"

    def test_removed_phase_has_no_suggestion(self):
        old = self._old()
        new = (
            LifecycleBuilder("Plan", uri=old.uri)
            .phase("Draft", phase_id="draft").terminal("Done", phase_id="done")
            .flow("Draft", "Done").build()
        )
        assert suggest_phase_mapping(old, new)["review"] is None
        assert unmapped_phases(old, new) == ["review"]

    def test_target_suggestion_falls_back_to_initial(self):
        old = self._old()
        new = (
            LifecycleBuilder("Plan", uri=old.uri)
            .phase("Draft", phase_id="draft").terminal("Done", phase_id="done")
            .flow("Draft", "Done").build()
        )
        assert suggest_target_phase(old, new, "review") == "draft"
        assert suggest_target_phase(old, new, None) is None


class TestPropagation:
    def _revised(self, eu_model):
        revised = eu_model.new_version(created_by="coordinator")
        revised.add_phase(Phase(phase_id="qualitycheck", name="Quality Check"))
        revised.add_transition("finalassembly", "qualitycheck")
        revised.add_transition("qualitycheck", "eureview")
        return revised

    def test_propose_change_opens_one_proposal_per_active_instance(self, manager, eu_model,
                                                                    google_doc, wiki_page):
        first = manager.instantiate(eu_model.uri, google_doc, owner="alice")
        second = manager.instantiate(eu_model.uri, wiki_page, owner="bob")
        manager.start(first.instance_id, actor="alice")
        manager.start(second.instance_id, actor="bob")
        proposals = manager.propose_change(self._revised(eu_model), actor="coordinator")
        assert len(proposals) == 2
        assert all(p.decision is PropagationDecision.PENDING for p in proposals)
        assert manager.model(eu_model.uri).version.version_number == "1.1"

    def test_accept_migrates_instance_to_suggested_phase(self, manager, eu_model, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        manager.advance(eu_instance.instance_id, actor="alice", to_phase_id="internalreview")
        proposal = manager.propose_change(self._revised(eu_model), actor="coordinator")[0]
        plan = manager.accept_change(proposal.proposal_id, actor="alice")
        assert plan.to_version == "1.1"
        assert eu_instance.model_version == "1.1"
        assert eu_instance.current_phase_id == "internalreview"
        assert eu_instance.model.has_phase("qualitycheck")

    def test_accept_with_explicit_target_phase(self, manager, eu_model, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        proposal = manager.propose_change(self._revised(eu_model), actor="coordinator")[0]
        plan = manager.accept_change(proposal.proposal_id, actor="alice",
                                     target_phase_id="qualitycheck")
        assert not plan.automatic
        assert eu_instance.current_phase_id == "qualitycheck"

    def test_reject_keeps_old_model(self, manager, eu_model, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        proposal = manager.propose_change(self._revised(eu_model), actor="coordinator")[0]
        manager.reject_change(proposal.proposal_id, actor="alice", reason="mid review")
        assert eu_instance.model_version == "1.0"
        assert not eu_instance.model.has_phase("qualitycheck")
        assert manager.propagation.proposal(proposal.proposal_id).decision \
            is PropagationDecision.REJECTED

    def test_decide_twice_rejected(self, manager, eu_model, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        proposal = manager.propose_change(self._revised(eu_model), actor="coordinator")[0]
        manager.accept_change(proposal.proposal_id, actor="alice")
        with pytest.raises(PropagationError):
            manager.reject_change(proposal.proposal_id, actor="alice")

    def test_completed_instances_are_not_targeted(self, manager, eu_model, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        manager.move_to(eu_instance.instance_id, actor="alice", phase_id="closed")
        proposals = manager.propose_change(self._revised(eu_model), actor="coordinator")
        assert proposals == []

    def test_propose_for_different_model_uri_rejected(self, manager, eu_model, eu_instance):
        other = (
            LifecycleBuilder("Other").phase("A").terminal("B").flow("A", "B").build()
        )
        other.version = other.version.bump()
        with pytest.raises(PropagationError):
            manager.propagation.propose(eu_instance, other, requested_by="coordinator")

    def test_pending_proposals_query(self, manager, eu_model, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        proposal = manager.propose_change(self._revised(eu_model), actor="coordinator")[0]
        pending = manager.propagation.pending_for_instance(eu_instance.instance_id)
        assert [p.proposal_id for p in pending] == [proposal.proposal_id]
        manager.accept_change(proposal.proposal_id, actor="alice")
        assert manager.propagation.pending_for_instance(eu_instance.instance_id) == []

    def test_light_coupling_instances_unaffected_until_acceptance(self, manager, eu_model,
                                                                  google_doc, wiki_page):
        first = manager.instantiate(eu_model.uri, google_doc, owner="alice")
        second = manager.instantiate(eu_model.uri, wiki_page, owner="bob")
        manager.start(first.instance_id, actor="alice")
        manager.start(second.instance_id, actor="bob")
        proposals = manager.propose_change(self._revised(eu_model), actor="coordinator")
        by_instance = {p.instance_id: p for p in proposals}
        manager.accept_change(by_instance[first.instance_id].proposal_id, actor="alice")
        # Only the accepting owner's instance migrated.
        assert first.model_version == "1.1"
        assert second.model_version == "1.0"
