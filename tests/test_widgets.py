"""Tests for the execution widget, the designer session, renderers and pipes."""

import pytest

from repro.actions import library
from repro.errors import PermissionDeniedError, TemplateError
from repro.storage import TemplateStore
from repro.widgets import DesignerSession, LifecycleWidget
from repro.widgets.pipes import ResourceFeed, widgets_from_feed
from repro.widgets.renderer import render_designer_html, render_widget_html, render_widget_text


class TestWidgetViewModel:
    def test_view_model_reflects_state(self, manager, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        widget = LifecycleWidget(manager, eu_instance.instance_id, viewer="alice")
        view = widget.view_model()
        assert view.lifecycle_name == "EU Project deliverable lifecycle"
        assert view.current_phase == "elaboration"
        assert view.resource_type == "Google Doc"
        assert [p["name"] for p in view.phases][:2] == ["Elaboration", "Internal Review"]
        assert view.controls_enabled
        assert [item["phase_id"] for item in view.suggested_next] == ["internalreview"]
        assert view.resource_state["application"] == "Google Docs"

    def test_visited_and_current_markers(self, manager, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        manager.advance(eu_instance.instance_id, actor="alice", to_phase_id="internalreview")
        view = LifecycleWidget(manager, eu_instance.instance_id, viewer="alice").view_model()
        phases = {p["phase_id"]: p for p in view.phases}
        assert phases["elaboration"]["visited"]
        assert phases["internalreview"]["current"]

    def test_widget_drives_the_lifecycle(self, manager, eu_instance):
        widget = LifecycleWidget(manager, eu_instance.instance_id, viewer="alice")
        widget.start()
        widget.advance(to_phase_id="internalreview")
        widget.annotate("review round open")
        widget.move_to("finalassembly", annotation="review cut short")
        assert eu_instance.current_phase_id == "finalassembly"
        assert len(eu_instance.annotations) == 2

    def test_unknown_viewer_with_policy_is_locked(self, secured_manager, policy, google_doc):
        from repro.templates import eu_deliverable_lifecycle

        model = eu_deliverable_lifecycle()
        secured_manager.publish_model(model, actor="coordinator")
        instance = secured_manager.instantiate(model.uri, google_doc, owner="alice",
                                               actor="coordinator")
        widget = LifecycleWidget(secured_manager, instance.instance_id, viewer="stranger",
                                 policy=policy)
        view = widget.view_model()
        assert view.requires_authentication
        assert view.phases == []
        with pytest.raises(PermissionDeniedError):
            widget.start()

    def test_stakeholder_sees_history_but_no_controls(self, secured_manager, policy,
                                                      google_doc):
        from repro.templates import eu_deliverable_lifecycle

        model = eu_deliverable_lifecycle()
        secured_manager.publish_model(model, actor="coordinator")
        instance = secured_manager.instantiate(model.uri, google_doc, owner="alice",
                                               actor="coordinator")
        secured_manager.start(instance.instance_id, actor="alice")
        view = LifecycleWidget(secured_manager, instance.instance_id, viewer="eve",
                               policy=policy).view_model()
        assert not view.controls_enabled
        assert view.suggested_next == []
        assert view.history  # stakeholders may monitor


class TestRenderers:
    def test_html_contains_phases_and_resource(self, manager, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        view = LifecycleWidget(manager, eu_instance.instance_id, viewer="alice").view_model()
        html = render_widget_html(view)
        assert "gelee-widget" in html
        assert "Elaboration" in html
        assert "D1.1 State of the Art" in html
        assert "Move to Internal Review" in html

    def test_html_escapes_content(self, manager, eu_model, environment):
        descriptor = environment.adapter("Google Doc").create_resource(
            "<script>alert(1)</script>", owner="alice")
        instance = manager.instantiate(eu_model.uri, descriptor, owner="alice")
        manager.start(instance.instance_id, actor="alice")
        html = render_widget_html(
            LifecycleWidget(manager, instance.instance_id, viewer="alice").view_model())
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;" in html

    def test_locked_widget_html(self, secured_manager, policy, google_doc, eu_model):
        secured_manager.publish_model(eu_model, actor="coordinator")
        instance = secured_manager.instantiate(eu_model.uri, google_doc, owner="alice",
                                               actor="coordinator")
        view = LifecycleWidget(secured_manager, instance.instance_id, viewer=None,
                               policy=policy).view_model()
        assert "Authentication required" in render_widget_html(view)
        assert "[locked]" in render_widget_text(view)

    def test_text_rendering_marks_current_phase(self, manager, eu_instance):
        manager.start(eu_instance.instance_id, actor="alice")
        text = render_widget_text(
            LifecycleWidget(manager, eu_instance.instance_id, viewer="alice").view_model())
        assert "[*] Elaboration" in text
        assert "next: Internal Review" in text


class TestDesigner:
    def test_design_and_publish(self, manager, environment):
        session = DesignerSession("Report lifecycle", environment.registry, composer="maria")
        session.add_phase("Draft").add_phase("Review").add_phase("Done", terminal=True)
        session.flow("Draft", "Review", "Done")
        session.add_action("Review", library.SEND_FOR_REVIEW, reviewers=["bob"])
        model = session.publish(manager)
        assert manager.model(model.uri).name == "Report lifecycle"
        assert model.phase("review").actions[0].name == "Send for Review"

    def test_action_browser_lists_all_actions_by_default(self, environment):
        session = DesignerSession("X", environment.registry)
        actions = session.browse_actions()
        assert any(a["uri"] == library.CHANGE_ACCESS_RIGHTS for a in actions)
        assert len(actions) == len(environment.registry.types())

    def test_action_browser_filters_by_resource_type(self, environment):
        session = DesignerSession("X", environment.registry)
        photo_actions = {a["uri"] for a in session.browse_actions("Photo album")}
        assert library.CREATE_SNAPSHOT not in photo_actions
        assert library.POST_ON_WEBSITE in photo_actions

    def test_restricted_session_limits_browser(self, environment):
        session = DesignerSession("X", environment.registry,
                                  restrict_to_resource_types=["Photo album"])
        uris = {a["uri"] for a in session.browse_actions()}
        assert library.SUBMIT_TO_AGENCY not in uris

    def test_applicable_resource_types_follow_selected_actions(self, environment):
        session = DesignerSession("X", environment.registry)
        session.add_phase("Tag").add_phase("Done", terminal=True)
        session.flow("Tag", "Done")
        session.add_action("Tag", library.CREATE_SNAPSHOT)
        applicable = session.applicable_resource_types()
        assert "Photo album" not in applicable
        assert "SVN file" in applicable

    def test_view_model_reports_problems(self, environment):
        session = DesignerSession("X", environment.registry)
        session.add_phase("Only phase")
        view = session.view_model()
        assert view.phases[0]["name"] == "Only phase"
        assert view.warnings  # no end phase yet
        html = render_designer_html(view)
        assert "Only phase" in html

    def test_save_as_template(self, environment):
        store = TemplateStore()
        session = DesignerSession("Tiny", environment.registry)
        session.add_phase("One").add_phase("Done", terminal=True).flow("One", "Done")
        template_id = session.save_as_template(store, template_id="tiny")
        assert store.exists(template_id)

    def test_save_empty_template_rejected(self, environment):
        session = DesignerSession("Empty", environment.registry)
        with pytest.raises(Exception):
            session.save_as_template(TemplateStore())


class TestPipes:
    def test_feed_lists_application_artifacts(self, environment):
        adapter = environment.adapter("Google Doc")
        adapter.create_resource("Doc A", owner="alice")
        adapter.create_resource("Doc B", owner="bob")
        feed = ResourceFeed(adapter.application, "Google Doc")
        entries = feed.entries()
        assert {entry.title for entry in entries} == {"Doc A", "Doc B"}
        filtered = feed.entries(lambda entry: "A" in entry.title)
        assert len(filtered) == 1

    def test_widgets_from_feed_matches_instances(self, manager, eu_model, environment):
        adapter = environment.adapter("Google Doc")
        managed = adapter.create_resource("Managed", owner="alice")
        adapter.create_resource("Unmanaged", owner="alice")
        instance = manager.instantiate(eu_model.uri, managed, owner="alice")
        manager.start(instance.instance_id, actor="alice")
        feed = ResourceFeed(adapter.application, "Google Doc")
        piped = widgets_from_feed(feed, manager, viewer="alice")
        assert len(piped) == 1
        assert piped[0]["entry"].title == "Managed"
        assert piped[0]["widgets"][0].view_model().current_phase == "elaboration"

    def test_include_unmanaged_entries(self, manager, eu_model, environment):
        adapter = environment.adapter("Google Doc")
        adapter.create_resource("Unmanaged", owner="alice")
        feed = ResourceFeed(adapter.application, "Google Doc")
        piped = widgets_from_feed(feed, manager, include_unmanaged=True)
        assert len(piped) == 1
        assert piped[0]["widgets"] == []
