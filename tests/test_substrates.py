"""Tests for the simulated managing applications."""

import pytest

from repro.clock import SimulatedClock
from repro.errors import ResourceAccessError, ResourceNotFoundError
from repro.substrates import (
    GoogleDocsSimulator,
    MediaWikiSimulator,
    PhotoAlbumSimulator,
    ProjectWebsiteSimulator,
    SubversionSimulator,
    ZohoWriterSimulator,
)


@pytest.fixture
def sim_clock():
    return SimulatedClock()


class TestBaseApplicationBehaviour:
    def test_create_and_read(self, sim_clock):
        app = GoogleDocsSimulator(clock=sim_clock)
        artifact = app.create("Doc", owner="alice", content="hello")
        assert app.exists(artifact.uri)
        assert app.read(artifact.uri) == "hello"

    def test_read_unknown_uri(self, sim_clock):
        with pytest.raises(ResourceNotFoundError):
            GoogleDocsSimulator(clock=sim_clock).read("https://docs.google.example/document/x")

    def test_owner_gets_edit_rights(self, sim_clock):
        app = GoogleDocsSimulator(clock=sim_clock)
        artifact = app.create("Doc", owner="alice")
        assert artifact.access.can_edit("alice")
        assert not artifact.access.can_edit("mallory")

    def test_update_requires_edit_rights(self, sim_clock):
        app = GoogleDocsSimulator(clock=sim_clock)
        artifact = app.create("Doc", owner="alice")
        with pytest.raises(ResourceAccessError):
            app.update(artifact.uri, "new", user="mallory")
        app.set_access(artifact.uri, editors=["mallory"])
        app.update(artifact.uri, "new", user="mallory")
        assert app.read(artifact.uri) == "new"

    def test_update_records_revision_and_notifies_subscribers(self, sim_clock):
        app = GoogleDocsSimulator(clock=sim_clock)
        artifact = app.create("Doc", owner="alice")
        app.subscribe(artifact.uri, "watcher")
        app.update(artifact.uri, "v2", user="alice")
        assert len(app.revisions(artifact.uri)) == 2  # create + update
        assert any("watcher" in n.recipients for n in app.notifications(artifact.uri))

    def test_private_read_denied(self, sim_clock):
        app = GoogleDocsSimulator(clock=sim_clock)
        artifact = app.create("Doc", owner="alice")
        with pytest.raises(ResourceAccessError):
            app.read(artifact.uri, user="stranger")
        app.set_access(artifact.uri, readers=["stranger"])
        assert app.read(artifact.uri, user="stranger") == ""

    def test_invalid_visibility_rejected(self, sim_clock):
        app = GoogleDocsSimulator(clock=sim_clock)
        artifact = app.create("Doc", owner="alice")
        with pytest.raises(ResourceAccessError):
            app.set_access(artifact.uri, visibility="secret")

    def test_archive_makes_read_only(self, sim_clock):
        app = GoogleDocsSimulator(clock=sim_clock)
        artifact = app.create("Doc", owner="alice")
        app.archive(artifact.uri, reason="final")
        with pytest.raises(ResourceAccessError):
            app.update(artifact.uri, "x", user="alice")

    def test_delete_only_by_owner(self, sim_clock):
        app = GoogleDocsSimulator(clock=sim_clock)
        artifact = app.create("Doc", owner="alice")
        with pytest.raises(ResourceAccessError):
            app.delete(artifact.uri, user="bob")
        app.delete(artifact.uri, user="alice")
        assert not app.exists(artifact.uri)

    def test_export_pdf_counts_pages(self, sim_clock):
        app = GoogleDocsSimulator(clock=sim_clock)
        artifact = app.create("Doc", owner="alice", content="x" * 4000)
        export = app.export_pdf(artifact.uri)
        assert export["format"] == "pdf"
        assert export["pages"] >= 3

    def test_describe_shape(self, sim_clock):
        app = GoogleDocsSimulator(clock=sim_clock)
        artifact = app.create("Doc", owner="alice", content="hello world")
        description = app.describe(artifact.uri)
        assert description["application"] == "Google Docs"
        assert description["title"] == "Doc"
        assert description["revisions"] == 1


class TestGoogleDocsSpecifics:
    def test_share_grants_and_notifies(self, sim_clock):
        app = GoogleDocsSimulator(clock=sim_clock)
        artifact = app.create("Doc", owner="alice")
        app.share(artifact.uri, ["bob"], role="writer", message="please edit")
        assert app.access(artifact.uri).can_edit("bob")
        assert len(app.notifications(artifact.uri)) == 1

    def test_comment_round(self, sim_clock):
        app = GoogleDocsSimulator(clock=sim_clock)
        artifact = app.create("Doc", owner="alice")
        app.add_comment(artifact.uri, "bob", "typo in section 2")
        app.add_comment(artifact.uri, "carol", "missing reference")
        assert len(app.unresolved_comments(artifact.uri)) == 2
        assert app.resolve_comments(artifact.uri) == 2
        assert app.unresolved_comments(artifact.uri) == []
        assert app.describe(artifact.uri)["comments"] == 2


class TestMediaWikiSpecifics:
    def test_talk_page_and_protection(self, sim_clock):
        wiki = MediaWikiSimulator(clock=sim_clock)
        page = wiki.create("Architecture", owner="bob")
        wiki.add_talk_entry(page.uri, "carol", "needs a diagram")
        wiki.protect(page.uri, level="sysop")
        assert len(wiki.talk_page(page.uri)) == 1
        assert wiki.protection_level(page.uri) == "sysop"
        wiki.unprotect(page.uri)
        assert wiki.protection_level(page.uri) == ""

    def test_categories(self, sim_clock):
        wiki = MediaWikiSimulator(clock=sim_clock)
        page = wiki.create("Architecture", owner="bob")
        wiki.categorize(page.uri, "Deliverables")
        wiki.categorize(page.uri, "Deliverables")
        assert wiki.categories(page.uri) == ["Deliverables"]
        assert wiki.describe(page.uri)["categories"] == ["Deliverables"]


class TestZohoSpecifics:
    def test_workspace_sharing(self, sim_clock):
        zoho = ZohoWriterSimulator(clock=sim_clock)
        doc = zoho.create("Plan", owner="alice")
        zoho.share_to_workspace(doc.uri, "review", ["bob", "carol"])
        assert zoho.workspaces(doc.uri) == ["review"]
        assert zoho.access(doc.uri).can_read("bob")


class TestSubversionSpecifics:
    def test_commits_increment_head_revision(self, sim_clock):
        svn = SubversionSimulator(clock=sim_clock)
        file_a = svn.create("a.py", owner="dev", content="pass")
        file_b = svn.create("b.py", owner="dev", content="pass")
        svn.commit(file_a.uri, "print(1)", user="dev", message="first")
        svn.commit(file_b.uri, "print(2)", user="dev")
        assert svn.head_revision == 2
        assert len(svn.log(file_a.uri)) == 1
        assert len(svn.log()) == 2

    def test_commit_requires_rights(self, sim_clock):
        svn = SubversionSimulator(clock=sim_clock)
        path = svn.create("a.py", owner="dev")
        with pytest.raises(ResourceAccessError):
            svn.commit(path.uri, "x", user="intern")

    def test_tags_and_frozen_release(self, sim_clock):
        svn = SubversionSimulator(clock=sim_clock)
        path = svn.create("a.py", owner="dev")
        svn.commit(path.uri, "v1", user="dev")
        revision = svn.tag(path.uri, "release-1.0")
        assert svn.tags()["release-1.0"] == revision
        svn.archive(path.uri)
        with pytest.raises(ResourceAccessError):
            svn.commit(path.uri, "v2", user="dev")

    def test_update_is_a_commit(self, sim_clock):
        svn = SubversionSimulator(clock=sim_clock)
        path = svn.create("a.py", owner="dev")
        svn.update(path.uri, "new content", user="dev")
        assert svn.head_revision == 1


class TestPhotoAlbumSpecifics:
    def test_photos_and_publication(self, sim_clock):
        albums = PhotoAlbumSimulator(clock=sim_clock)
        album = albums.create("Kick-off", owner="maria")
        albums.add_photo(album.uri, "Group", user="maria", tags=["people"])
        albums.add_photo(album.uri, "Venue", user="maria")
        result = albums.publish_album(album.uri)
        assert result["photos"] == 2
        assert albums.access(album.uri).visibility == "public"

    def test_contact_sheet(self, sim_clock):
        albums = PhotoAlbumSimulator(clock=sim_clock)
        album = albums.create("Kick-off", owner="maria")
        for index in range(15):
            albums.add_photo(album.uri, "photo {}".format(index), user="maria")
        sheet = albums.contact_sheet(album.uri)
        assert sheet["pages"] == 2
        assert albums.describe(album.uri)["photos"] == 15


class TestProjectWebsite:
    def test_publish_and_unpublish(self, sim_clock):
        site = ProjectWebsiteSimulator(clock=sim_clock)
        site.publish("D1.1", "urn:doc:1", section="deliverables")
        site.publish("News item", "urn:news:1", section="news")
        assert site.is_published("urn:doc:1")
        assert site.sections() == ["deliverables", "news"]
        assert len(site.entries()) == 2
        assert site.unpublish("urn:doc:1") == 1
        assert not site.is_published("urn:doc:1")

    def test_republish_keeps_both_entries(self, sim_clock):
        site = ProjectWebsiteSimulator(clock=sim_clock)
        site.publish("D1.1", "urn:doc:1")
        site.publish("D1.1 v2", "urn:doc:1")
        assert len(site.section("deliverables")) == 2
