"""Tests for completion-based action dispatch (docs/DISPATCH.md).

The submit/complete protocol's core promises, each proven here:

* a shard lock is **not** held while an action round-trip is in flight —
  other work on the same shard proceeds concurrently;
* the sync progression API still waits for outcomes (thin wrapper over
  submit + wait), so callers see pre-refactor semantics;
* quiesce / read-only flips drain pending completions, so checkpoints and
  replica barriers capture applied outcomes;
* a node killed with actions in flight recovers them as deterministic
  FAILED invocations (and a promoted replica does the same);
* the journal pushes appends to waiting followers instead of being polled.
"""

import threading
import time

import pytest

from repro.actions import (
    ActionImplementation,
    ActionStatus,
    InlineCompletionExecutor,
    PooledCompletionExecutor,
)
from repro.actions import library
from repro.clock import SimulatedClock
from repro.events import EventBus, EventRecorder
from repro.model import LifecycleBuilder
from repro.persistence import PersistenceConfig, PersistenceCoordinator, recover_into
from repro.persistence.recovery import INTERRUPTED_ERROR, fail_interrupted_invocations
from repro.plugins import build_standard_environment
from repro.replication import ReadReplica, ReplicationPrimary, StreamFollower
from repro.runtime import ShardedLifecycleManager, TaskHandle, WorkerPool
from repro.service import GeleeService
from repro.service.v2.dto import AdvanceItem
from repro.storage import ExecutionLog


def one_action_model(name="Dispatch lifecycle"):
    builder = LifecycleBuilder(name)
    builder.phase("Work")
    builder.terminal("End")
    builder.flow("Work", "End")
    builder.action("Work", library.CHANGE_ACCESS_RIGHTS, "Change access rights",
                   visibility="team")
    return builder.build()


class BlockingAction:
    """An action implementation that parks until the test releases it."""

    def __init__(self):
        self.started = threading.Event()
        self.gate = threading.Event()
        self.calls = 0

    def __call__(self, context):
        self.calls += 1
        self.started.set()
        if not self.gate.wait(timeout=10.0):
            raise TimeoutError("test never released the action gate")
        return {"ok": True}

    def install(self, environment, resource_type="Google Doc"):
        environment.registry.register_implementation(
            ActionImplementation(library.CHANGE_ACCESS_RIGHTS, resource_type,
                                 self),
            replace=True)
        return self


def build_pooled_runtime(shard_count=2, completion_workers=4, bus=None):
    clock = SimulatedClock()
    environment = build_standard_environment(clock=clock)
    manager = ShardedLifecycleManager(
        environment, shard_count=shard_count, clock=clock, bus=bus,
        rng_seed=0, completion_workers=completion_workers)
    return environment, manager


# ================================================================ worker pool
class TestWorkerPool:
    def test_submit_returns_a_handle_with_the_result(self):
        pool = WorkerPool(2, name="test")
        try:
            handle = pool.submit(lambda value: value * 2, 21)
            assert isinstance(handle, TaskHandle)
            assert handle.get(timeout=5.0) == 42
            assert handle.done
        finally:
            pool.close()

    def test_exceptions_surface_on_get_not_in_the_worker(self):
        pool = WorkerPool(1, name="test")
        try:
            def boom():
                raise ValueError("no")

            handle = pool.submit(boom)
            with pytest.raises(ValueError):
                handle.get(timeout=5.0)
            # The worker survived the exception and keeps serving.
            assert pool.submit(lambda: "alive").get(timeout=5.0) == "alive"
        finally:
            pool.close()

    def test_fixed_size_pool_reuses_threads_across_submissions(self):
        pool = WorkerPool(2, name="test")
        try:
            names = set()
            handles = [pool.submit(lambda: names.add(
                threading.current_thread().name) or True) for _ in range(20)]
            for handle in handles:
                assert handle.get(timeout=5.0)
            assert len(names) <= 2
            stats = pool.stats()
            assert stats["workers"] == 2
            assert stats["submitted"] == 20
            assert stats["completed"] == 20
        finally:
            pool.close()

    def test_close_is_idempotent_and_rejects_new_work(self):
        pool = WorkerPool(1, name="test")
        pool.close()
        pool.close()
        assert pool.closed
        with pytest.raises(RuntimeError):
            pool.submit(lambda: None)


# ======================================================= invocation timestamps
class TestInvocationTimestamps:
    def test_submitted_and_started_are_separate_and_round_trip(self, manager,
                                                               eu_model,
                                                               google_doc):
        instance = manager.instantiate(eu_model.uri, google_doc, owner="alice")
        manager.start(instance.instance_id, actor="alice")
        manager.advance(instance.instance_id, actor="alice")  # internal review
        invocation = next(inv for inv in instance.all_invocations()
                          if inv.status is ActionStatus.COMPLETED)
        assert invocation.submitted_at is not None
        assert invocation.started_at is not None
        assert invocation.finished_at is not None
        assert invocation.submitted_at <= invocation.started_at
        document = invocation.to_dict()
        assert document["submitted_at"] == invocation.submitted_at.isoformat()
        from repro.actions import ActionInvocation

        restored = ActionInvocation.from_dict(document)
        assert restored.submitted_at == invocation.submitted_at
        assert restored.started_at == invocation.started_at
        assert restored.finished_at == invocation.finished_at
        assert restored.wait_seconds == invocation.wait_seconds
        assert restored.execution_seconds == invocation.execution_seconds


# ================================================== locks vs in-flight actions
class TestLockNotHeldDuringDispatch:
    def test_shard_serves_other_work_while_an_action_is_in_flight(self):
        """The tentpole invariant: with shard_count=1 *every* operation needs
        the one shard lock, so if dispatch still held it through the
        round-trip, the concurrent annotate below would deadlock."""
        environment, manager = build_pooled_runtime(shard_count=1)
        action = BlockingAction().install(environment)
        model = one_action_model()
        manager.publish_model(model, actor="admin")
        adapter = environment.adapter("Google Doc")
        blocked = manager.instantiate(
            model.uri, adapter.create_resource("blocked", owner="alice"),
            owner="alice")
        other = manager.instantiate(
            model.uri, adapter.create_resource("other", owner="alice"),
            owner="alice")
        try:
            manager.start_async(blocked.instance_id, actor="alice")
            assert action.started.wait(timeout=5.0)
            assert manager.in_flight_count() >= 1
            invocation = blocked.all_invocations()[0]
            assert invocation.status is ActionStatus.RUNNING

            # The same (only) shard must answer while the action sleeps.
            done = threading.Event()

            def annotate():
                manager.annotate(other.instance_id, "alice", "still serving")
                done.set()

            worker = threading.Thread(target=annotate, daemon=True)
            worker.start()
            assert done.wait(timeout=5.0), \
                "shard lock is held through the action round-trip"
        finally:
            action.gate.set()
        assert manager.drain_in_flight(timeout=5.0)
        assert invocation.status is ActionStatus.COMPLETED
        assert invocation.result == {"ok": True}
        manager.close()

    def test_events_fire_dispatched_then_terminal_with_the_in_flight_window(self):
        bus = EventBus()
        recorder = EventRecorder(bus)
        environment, manager = build_pooled_runtime(shard_count=1, bus=bus)
        model = one_action_model()
        manager.publish_model(model, actor="admin")
        adapter = environment.adapter("Google Doc")
        instance = manager.instantiate(
            model.uri, adapter.create_resource("doc", owner="alice"),
            owner="alice")
        manager.start(instance.instance_id, actor="alice")
        kinds = [event.kind for event in recorder.events]
        assert kinds.index("action.dispatched") < kinds.index("action.completed")
        manager.close()

    def test_sync_wrappers_wait_for_submitted_outcomes(self):
        environment, manager = build_pooled_runtime(shard_count=2)
        model = one_action_model()
        manager.publish_model(model, actor="admin")
        adapter = environment.adapter("Google Doc")
        instance = manager.instantiate(
            model.uri, adapter.create_resource("doc", owner="alice"),
            owner="alice")
        manager.start(instance.instance_id, actor="alice")
        # The sync wrapper returned: every invocation it submitted is
        # terminal, even though the round-trip ran on the pool.
        assert all(inv.status.is_terminal for inv in instance.all_invocations())
        assert manager.in_flight_count() == 0
        manager.close()

    def test_quiesce_and_read_only_drain_pending_completions(self):
        environment, manager = build_pooled_runtime(shard_count=2)
        action = BlockingAction().install(environment)
        model = one_action_model()
        manager.publish_model(model, actor="admin")
        adapter = environment.adapter("Google Doc")
        instance = manager.instantiate(
            model.uri, adapter.create_resource("doc", owner="alice"),
            owner="alice")
        manager.start_async(instance.instance_id, actor="alice")
        assert action.started.wait(timeout=5.0)
        releaser = threading.Timer(0.05, action.gate.set)
        releaser.start()
        try:
            with manager.quiesce(drain_timeout=10.0):
                # Inside the barrier nothing is in flight any more.
                assert manager.in_flight_count() == 0
                assert instance.all_invocations()[0].status.is_terminal
        finally:
            releaser.cancel()
            action.gate.set()
        manager.close()


# ===================================================== kill-during-in-flight
class TestKillDuringInFlightRecovery:
    def test_invocations_running_at_the_crash_recover_as_failed(self, tmp_path):
        clock = SimulatedClock()
        environment = build_standard_environment(clock=clock)
        bus = EventBus()
        log = ExecutionLog(bus=bus)
        manager = ShardedLifecycleManager(
            environment, shard_count=2, clock=clock, bus=bus, rng_seed=0,
            completion_workers=4)
        action = BlockingAction().install(environment)
        config = PersistenceConfig(str(tmp_path), backend="file", fsync="never")
        coordinator = PersistenceCoordinator(
            manager, log, config.open_journal(), config.open_snapshots(),
            config.open_store(), bus=bus)
        model = one_action_model()
        manager.publish_model(model, actor="admin")
        adapter = environment.adapter("Google Doc")
        instance = manager.instantiate(
            model.uri, adapter.create_resource("doc", owner="alice"),
            owner="alice")
        manager.start_async(instance.instance_id, actor="alice")
        assert action.started.wait(timeout=5.0)
        assert instance.all_invocations()[0].status is ActionStatus.RUNNING

        # The "kill": checkpoint with a zero drain budget captures the
        # invocation mid-flight, exactly like a crash between submit and
        # complete would leave it on disk.
        manager.quiesce_drain_timeout = 0.0
        coordinator.checkpoint()
        coordinator.close()

        clock2 = SimulatedClock()
        environment2 = build_standard_environment(clock=clock2)
        bus2 = EventBus()
        log2 = ExecutionLog(bus=bus2)
        manager2 = ShardedLifecycleManager(
            environment2, shard_count=2, clock=clock2, bus=bus2, rng_seed=0)
        report = recover_into(manager2, log2, config.open_journal(),
                              config.open_snapshots(), config.open_store())
        assert report.invocations_interrupted == 1
        recovered = manager2.instance(instance.instance_id)
        invocation = recovered.all_invocations()[0]
        assert invocation.status is ActionStatus.FAILED
        assert invocation.error == INTERRUPTED_ERROR
        assert recovered.instance_id in report.touched_instance_ids
        # The resolution is deterministic: a second pass finds nothing.
        assert fail_interrupted_invocations(manager2) == []

        action.gate.set()
        manager.drain_in_flight(timeout=5.0)
        manager.close()

    def test_completed_invocations_are_not_touched_by_recovery(self, tmp_path):
        clock = SimulatedClock()
        environment = build_standard_environment(clock=clock)
        bus = EventBus()
        log = ExecutionLog(bus=bus)
        manager = ShardedLifecycleManager(
            environment, shard_count=2, clock=clock, bus=bus, rng_seed=0)
        config = PersistenceConfig(str(tmp_path), backend="file", fsync="never")
        coordinator = PersistenceCoordinator(
            manager, log, config.open_journal(), config.open_snapshots(),
            config.open_store(), bus=bus)
        model = one_action_model()
        manager.publish_model(model, actor="admin")
        adapter = environment.adapter("Google Doc")
        instance = manager.instantiate(
            model.uri, adapter.create_resource("doc", owner="alice"),
            owner="alice")
        manager.start(instance.instance_id, actor="alice")
        coordinator.checkpoint()
        coordinator.close()

        environment2 = build_standard_environment(clock=SimulatedClock())
        manager2 = ShardedLifecycleManager(
            environment2, shard_count=2, clock=environment2.clock,
            bus=EventBus(), rng_seed=0)
        report = recover_into(manager2, ExecutionLog(bus=EventBus()),
                              config.open_journal(), config.open_snapshots(),
                              config.open_store())
        assert report.invocations_interrupted == 0
        recovered = manager2.instance(instance.instance_id)
        assert recovered.all_invocations()[0].status is ActionStatus.COMPLETED


# ================================================================ service tier
class TestServiceDispatch:
    def test_batch_advance_overlaps_round_trips_and_reports_outcomes(self):
        service = GeleeService(shard_count=4, completion_workers=8,
                               clock=SimulatedClock())
        model = one_action_model()
        service.manager.publish_model(model, actor="admin")
        adapter = service.environment.adapter("Google Doc")
        created = [service.manager.instantiate(
            model.uri, adapter.create_resource("doc {}".format(i), owner="alice"),
            owner="alice") for i in range(12)]
        result = service.batch_advance_instances(
            [AdvanceItem(instance_id=instance.instance_id)
             for instance in created], actor="alice")
        assert all(item.ok for item in result.results)
        assert service.manager.in_flight_count() == 0
        for instance in created:
            assert all(inv.status.is_terminal
                       for inv in instance.all_invocations())
        stats = service.runtime_stats()
        assert stats["dispatch_mode"] == "pooled"
        assert stats["in_flight_actions"] == 0
        assert stats["worker_pool"]["workers"] == 12  # 4 shards + 8 completions
        service.close()

    def test_operations_run_on_a_persistent_pool(self):
        service = GeleeService(shard_count=2, clock=SimulatedClock())
        operations = [service.submit_operation(
            "test.op", lambda value=value: {"value": value})
            for value in range(8)]
        for operation in operations:
            service.operations.wait(operation.operation_id, timeout=5.0)
            assert operation.result["value"] is not None
        stats = service.operations.pool_stats()
        assert stats is not None
        assert stats["workers"] == service.operations.DEFAULT_WORKERS
        assert stats["submitted"] == 8
        service.close()
        assert service.operations.pool_stats() is None

    def test_completion_executor_modes(self):
        assert InlineCompletionExecutor().mode == "inline"
        pool = WorkerPool(1, name="test")
        try:
            assert PooledCompletionExecutor(pool).mode == "pooled"
        finally:
            pool.close()


# ============================================================ journal push
class TestJournalPush:
    def test_wait_for_seq_wakes_on_append_not_on_a_poll_interval(self, tmp_path):
        config = PersistenceConfig(str(tmp_path), backend="file", fsync="never")
        service = GeleeService(shard_count=2, clock=SimulatedClock(),
                               persistence=config)
        primary = ReplicationPrimary(service)
        model = one_action_model()
        service.manager.publish_model(model, actor="admin")
        head = primary.head_seq()
        adapter = service.environment.adapter("Google Doc")

        def write():
            service.manager.instantiate(
                model.uri, adapter.create_resource("pushed", owner="alice"),
                owner="alice")

        writer = threading.Timer(0.05, write)
        started = time.monotonic()
        writer.start()
        try:
            reached = primary.wait_for(head + 1, timeout=5.0)
        finally:
            writer.join()
        elapsed = time.monotonic() - started
        assert reached > head
        assert elapsed < 2.0
        batch = service.replication_stream(after_seq=head)
        assert any(record["kind"] == "instance.created"
                   for record in batch["records"])
        service.close()

    def test_stream_follower_applies_writes_within_the_push_window(self, tmp_path):
        config = PersistenceConfig(str(tmp_path), backend="file", fsync="never")
        service = GeleeService(shard_count=2, clock=SimulatedClock(),
                               persistence=config)
        primary = ReplicationPrimary(service)
        model = one_action_model()
        service.manager.publish_model(model, actor="admin")
        replica = ReadReplica(primary, shard_count=2, clock=SimulatedClock())
        replica.sync()
        follower = StreamFollower(replica, wait_timeout=2.0).start()
        try:
            poll_interval = 0.5  # what a timer-driven follower would use
            adapter = service.environment.adapter("Google Doc")
            started = time.monotonic()
            instance = service.manager.instantiate(
                model.uri, adapter.create_resource("pushed", owner="alice"),
                owner="alice")
            while time.monotonic() - started < poll_interval:
                if replica.manager.peek_instance(instance.instance_id) is not None:
                    break
                time.sleep(0.005)
            elapsed = time.monotonic() - started
            assert replica.manager.peek_instance(instance.instance_id) is not None, \
                "push never reached the replica within a poll interval"
            assert elapsed < poll_interval
            assert follower.stats()["records_applied"] >= 1
        finally:
            follower.stop()
            service.close()

    def test_promote_fails_invocations_the_primary_left_in_flight(self, tmp_path):
        config = PersistenceConfig(str(tmp_path), backend="file", fsync="never")
        clock = SimulatedClock()
        environment = build_standard_environment(clock=clock)
        service = GeleeService(environment=environment, shard_count=2,
                               clock=clock, persistence=config,
                               completion_workers=4)
        primary = ReplicationPrimary(service)
        action = BlockingAction().install(environment)
        model = one_action_model()
        service.manager.publish_model(model, actor="admin")
        adapter = environment.adapter("Google Doc")
        instance = service.manager.instantiate(
            model.uri, adapter.create_resource("doc", owner="alice"),
            owner="alice")
        service.manager.start_async(instance.instance_id, actor="alice")
        assert action.started.wait(timeout=5.0)
        # Flush the in-flight state to disk, then "lose" the primary.
        service.manager.quiesce_drain_timeout = 0.0
        service.persistence.checkpoint()

        replica = ReadReplica(primary, shard_count=2, clock=SimulatedClock())
        replica.sync()
        report = replica.promote()
        assert report["invocations_interrupted"] == 1
        recovered = replica.manager.instance(instance.instance_id)
        invocation = recovered.all_invocations()[0]
        assert invocation.status is ActionStatus.FAILED
        assert invocation.error == INTERRUPTED_ERROR

        action.gate.set()
        service.manager.drain_in_flight(timeout=5.0)
        service.close()
