"""Tests for the GeleeService application facade (used by both REST and SOAP)."""

import pytest

from repro.errors import ServiceError
from repro.plugins import build_standard_environment
from repro.service import GeleeService
from repro.templates import eu_deliverable_lifecycle


@pytest.fixture
def service(clock):
    return GeleeService(environment=build_standard_environment(clock=clock), clock=clock)


class TestServiceSetup:
    def test_builtin_templates_loaded(self, service):
        template_ids = {entry["template_id"] for entry in service.list_templates()}
        assert {"eu-deliverable", "document-review", "software-release",
                "photo-story", "simple-publication"} <= template_ids

    def test_builtin_templates_can_be_disabled(self, clock):
        bare = GeleeService(environment=build_standard_environment(clock=clock),
                            clock=clock, with_builtin_templates=False)
        assert bare.list_templates() == []

    def test_resource_types(self, service):
        assert "Google Doc" in service.resource_types()

    def test_require_helper(self, service):
        assert service.require("x", "field") == "x"
        with pytest.raises(ServiceError):
            service.require("  ", "field")
        with pytest.raises(ServiceError):
            service.require(None, "field")


class TestServiceModelOperations:
    def test_publish_template_then_list_models(self, service):
        published = service.publish_template("eu-deliverable", actor="pm",
                                             name="Quality plan for D-series")
        models = service.list_models()
        assert any(entry["uri"] == published["uri"] for entry in models)
        entry = [m for m in models if m["uri"] == published["uri"]][0]
        assert entry["phases"] == 6
        assert "Google Doc" in entry["resource_types"]

    def test_publish_model_json_and_detail(self, service):
        model = eu_deliverable_lifecycle()
        model.uri = "urn:svc:json"
        service.publish_model_json(model.to_dict(), actor="pm")
        detail = service.model_detail("urn:svc:json")
        assert detail["name"] == model.name
        xml_detail = service.model_detail("urn:svc:json", as_xml=True)
        assert xml_detail["xml"].startswith("<process")

    def test_register_resource_persists_descriptor(self, service):
        descriptor = service.environment.adapter("Google Doc").create_resource(
            "Doc", owner="alice")
        stored = service.register_resource(descriptor.to_dict())
        assert stored["uri"] == descriptor.uri
        assert service.definitions.resource(descriptor.uri) is not None


class TestServiceInstanceOperations:
    def _instance(self, service):
        published = service.publish_template("eu-deliverable", actor="pm")
        descriptor = service.environment.adapter("Google Doc").create_resource(
            "D1.1", owner="alice")
        summary = service.create_instance(published["uri"], descriptor.to_dict(),
                                          owner="alice")
        return published["uri"], summary["instance_id"]

    def test_full_instance_flow(self, service):
        model_uri, instance_id = self._instance(service)
        assert service.start_instance(instance_id, "alice")["current_phase_id"] == "elaboration"
        advanced = service.advance_instance(instance_id, "alice",
                                            to_phase_id="internalreview")
        assert advanced["current_phase_id"] == "internalreview"
        moved = service.move_instance(instance_id, "alice", "publication",
                                      annotation="fast-tracked")
        assert moved["deviations"] == 1
        note = service.annotate_instance(instance_id, "alice", "note text")
        assert note["text"] == "note text"
        detail = service.instance_detail(instance_id)
        assert detail["current_phase_id"] == "publication"
        history = service.instance_history(instance_id)
        assert any(entry["kind"] == "instance.phase_entered" for entry in history)
        listed = service.list_instances(model_uri=model_uri)
        assert len(listed) == 1

    def test_monitoring_views(self, service):
        self._instance(service)
        summary = service.monitoring_summary()
        assert summary["total"] == 1
        assert len(service.monitoring_table()) == 1
        assert isinstance(service.monitoring_alerts(), list)

    def test_widget_view(self, service):
        _, instance_id = self._instance(service)
        service.start_instance(instance_id, "alice")
        view = service.widget_view(instance_id, viewer="alice")
        assert view["current_phase"] == "elaboration"
        assert view["controls_enabled"] is True

    def test_action_callback(self, service):
        _, instance_id = self._instance(service)
        service.start_instance(instance_id, "alice")
        service.advance_instance(instance_id, "alice", to_phase_id="internalreview")
        detail = service.instance_detail(instance_id)
        visit = detail["visits"][-1]
        result = service.action_callback(instance_id, visit["phase_id"],
                                         visit["invocations"][0]["call_id"],
                                         status="in progress", detail="waiting")
        assert result["status"] == "in progress"

    def test_propagation_via_service(self, service):
        from repro.serialization import lifecycle_to_xml

        model_uri, instance_id = self._instance(service)
        service.start_instance(instance_id, "alice")
        revised = service.manager.model(model_uri).new_version(created_by="pm")
        proposals = service.propose_change_xml(lifecycle_to_xml(revised), actor="pm")
        assert len(proposals) == 1
        outcome = service.decide_change(proposals[0]["proposal_id"], "alice", accept=True)
        assert outcome["to_version"] == "1.1"
