"""Tests for action invocations, status messages and the dispatcher semantics."""

import random

import pytest

from repro.actions.invocation import (
    ActionInvocation,
    ActionStatus,
    InvocationDispatcher,
    StatusMessage,
)
from repro.clock import SimulatedClock
from repro.errors import ActionInvocationError


def _invocation(name="act", call_id="c1"):
    return ActionInvocation(
        action_uri="urn:{}".format(name),
        action_name=name,
        call_id=call_id,
        resource_uri="https://doc/1",
        resource_type="Google Doc",
        callback_uri="urn:gelee:runtime/callbacks/i/p/{}".format(call_id),
    )


class TestActionStatus:
    def test_terminal_flags(self):
        assert ActionStatus.COMPLETED.is_terminal
        assert ActionStatus.FAILED.is_terminal
        assert not ActionStatus.RUNNING.is_terminal
        assert not ActionStatus.PENDING.is_terminal


class TestStatusMessages:
    def test_model_defined_statuses(self):
        assert StatusMessage("completed").is_model_defined
        assert StatusMessage("failed").is_model_defined
        assert not StatusMessage("waiting for reviews").is_model_defined

    def test_record_updates_terminal_status(self):
        invocation = _invocation()
        invocation.record(StatusMessage("halfway"))
        assert invocation.status is ActionStatus.PENDING
        invocation.record(StatusMessage("completed"))
        assert invocation.status is ActionStatus.COMPLETED

    def test_record_failure(self):
        invocation = _invocation()
        invocation.record(StatusMessage("failed", detail="boom"))
        assert invocation.status is ActionStatus.FAILED


class TestDispatcher:
    def test_successful_dispatch(self):
        dispatcher = InvocationDispatcher(clock=SimulatedClock(), rng=random.Random(1))
        invocation = _invocation()
        dispatcher.dispatch_one(invocation, lambda inv: {"done": True})
        assert invocation.status is ActionStatus.COMPLETED
        assert invocation.result == {"done": True}
        assert invocation.finished_at is not None

    def test_failure_is_captured_not_raised(self):
        dispatcher = InvocationDispatcher(clock=SimulatedClock(), rng=random.Random(1))
        invocation = _invocation()

        def explode(inv):
            raise ActionInvocationError("service unavailable")

        dispatcher.dispatch_one(invocation, explode)
        assert invocation.status is ActionStatus.FAILED
        assert "service unavailable" in invocation.error

    def test_unexpected_exception_also_captured(self):
        dispatcher = InvocationDispatcher(clock=SimulatedClock(), rng=random.Random(1))
        invocation = _invocation()

        def explode(inv):
            raise ValueError("bad input")

        dispatcher.dispatch_one(invocation, explode)
        assert invocation.status is ActionStatus.FAILED
        assert "ValueError" in invocation.error

    def test_one_failure_does_not_block_others(self):
        dispatcher = InvocationDispatcher(clock=SimulatedClock(), rng=random.Random(1))
        invocations = [_invocation("a", "c1"), _invocation("b", "c2"), _invocation("c", "c3")]

        def executor(invocation):
            if invocation.action_name == "b":
                raise RuntimeError("boom")
            return {}

        dispatcher.dispatch(invocations, executor)
        statuses = {inv.action_name: inv.status for inv in invocations}
        assert statuses["a"] is ActionStatus.COMPLETED
        assert statuses["b"] is ActionStatus.FAILED
        assert statuses["c"] is ActionStatus.COMPLETED

    def test_dispatch_order_is_shuffled_but_input_preserved(self):
        clock = SimulatedClock()
        executed = []
        invocations = [_invocation(str(index), "c{}".format(index)) for index in range(6)]

        def executor(invocation):
            executed.append(invocation.action_name)
            return {}

        dispatcher = InvocationDispatcher(clock=clock, rng=random.Random(3))
        result = dispatcher.dispatch(list(invocations), executor)
        assert sorted(executed) == sorted(inv.action_name for inv in invocations)
        assert executed != [inv.action_name for inv in invocations]  # shuffled with this seed
        assert [inv.action_name for inv in result] == [inv.action_name for inv in invocations]

    def test_callback_invoked_on_completion(self):
        received = []

        def callback(uri, invocation, message):
            received.append((uri, message.status))

        dispatcher = InvocationDispatcher(clock=SimulatedClock(), rng=random.Random(1),
                                          callback=callback)
        invocation = _invocation()
        dispatcher.dispatch_one(invocation, lambda inv: {})
        assert received == [(invocation.callback_uri, "completed")]

    def test_report_progress_is_informational(self):
        dispatcher = InvocationDispatcher(clock=SimulatedClock(), rng=random.Random(1))
        invocation = _invocation()
        message = dispatcher.report_progress(invocation, "2 of 3 reviews", detail="waiting")
        assert message in invocation.messages
        assert invocation.status is ActionStatus.PENDING

    def test_to_dict_includes_messages(self):
        dispatcher = InvocationDispatcher(clock=SimulatedClock(), rng=random.Random(1))
        invocation = _invocation()
        dispatcher.dispatch_one(invocation, lambda inv: {"x": 1})
        document = invocation.to_dict()
        assert document["status"] == "completed"
        assert document["messages"][-1]["status"] == "completed"
        assert document["result"] == {"x": 1}
