"""Integration tests crossing every layer of the system.

These follow the paper's motivating scenario (§II.A): the State-of-the-Art
deliverable drafted in a shared document, reviewed internally, assembled,
evaluated by the EU and published — including the deviations and the
"work continues afterwards" coda the paper describes.
"""

import pytest

from repro.monitoring import MonitoringCockpit, instance_timeline
from repro.storage import ExecutionLog
from repro.widgets import LifecycleWidget


class TestStateOfTheArtDeliverable:
    def test_full_quality_plan_run(self, manager, environment, eu_model, clock):
        """The ideal scenario: every phase in order, all actions succeed."""
        log = ExecutionLog(bus=manager.bus)
        google_docs = environment.adapter("Google Doc")
        deliverable = google_docs.create_resource(
            "D1.1 State of the Art", owner="alice",
            content="Survey of resource lifecycle management systems. " * 40)
        parameters = {
            call.call_id: {"reviewers": ["bob", "carol"]}
            for phase_id, call in eu_model.action_calls()
            if phase_id == "internalreview" and "notify" in call.action_uri
        }
        instance = manager.instantiate(eu_model.uri, deliverable, owner="alice",
                                       instantiation_parameters=parameters)

        manager.start(instance.instance_id, actor="alice")
        clock.advance(days=20)
        manager.advance(instance.instance_id, actor="alice", to_phase_id="internalreview")
        clock.advance(days=10)

        # reviewers got notified and the document became team-visible
        app = google_docs.application
        assert app.notifications(deliverable.uri)
        assert app.access(deliverable.uri).visibility == "team"

        manager.advance(instance.instance_id, actor="alice", to_phase_id="finalassembly")
        assert app.artifact(deliverable.uri).exports  # PDF generated

        clock.advance(days=5)
        manager.advance(instance.instance_id, actor="alice", to_phase_id="eureview")
        clock.advance(days=30)
        manager.advance(instance.instance_id, actor="alice", to_phase_id="publication")
        assert environment.website.is_published(deliverable.uri)
        assert app.access(deliverable.uri).visibility == "public"

        manager.advance(instance.instance_id, actor="alice", to_phase_id="closed")
        assert instance.is_completed

        # monitoring, timeline and log all agree on what happened
        cockpit = MonitoringCockpit(manager)
        assert cockpit.completion_rate() == 1.0
        timeline = instance_timeline(instance)
        phase_names = [e.title for e in timeline if e.kind == "phase_entered"]
        assert phase_names == ["Entered Elaboration", "Entered Internal Review",
                               "Entered Final Assembly", "Entered EU Review",
                               "Entered Publication", "Entered Closed"]
        assert log.count(kind="instance.phase_entered", subject_id=instance.instance_id) == 6
        assert log.count(kind="action.completed", subject_id=instance.instance_id) == 8

    def test_realistic_scenario_with_iteration_and_deviation(self, manager, environment,
                                                             eu_model, clock):
        """The non-ideal path: review iteration, skipped phase, late reopening."""
        wiki = environment.adapter("MediaWiki page")
        deliverable = wiki.create_resource("D2.1 Conceptual model", owner="bob",
                                           content="== Model ==")
        parameters = {
            call.call_id: {"reviewers": ["alice"]}
            for phase_id, call in eu_model.action_calls()
            if "notify" in call.action_uri
        }
        instance = manager.instantiate(eu_model.uri, deliverable, owner="bob",
                                       instantiation_parameters=parameters)
        widget = LifecycleWidget(manager, instance.instance_id, viewer="bob")

        widget.start()
        widget.advance(to_phase_id="internalreview")
        # reviewers unhappy: iterate back to elaboration (modelled loop, not a deviation)
        widget.advance(to_phase_id="elaboration",
                       annotation="Reviewers requested restructuring")
        widget.advance(to_phase_id="internalreview")
        # deadline pressure: skip final assembly (deviation)
        widget.move_to("eureview", annotation="Skipping assembly; latex already formatted")
        widget.advance(to_phase_id="publication")
        widget.advance(to_phase_id="closed")
        assert instance.is_completed

        # the owner reopens it to turn it into a journal paper (paper §II.A)
        widget.move_to("elaboration", annotation="Extending into a journal survey")
        assert instance.is_active
        assert instance.visit_count("elaboration") == 3
        deviations = instance.deviations()
        assert len(deviations) >= 2  # the skip and the reopening
        kinds = {a.kind for a in instance.annotations}
        assert "deviation" in kinds and "note" in kinds

    def test_two_lifecycles_on_one_resource(self, manager, environment, eu_model):
        """Light-coupling: several instances can run on the same URI (§IV.B)."""
        from repro.templates import document_review_lifecycle

        review_model = document_review_lifecycle()
        manager.publish_model(review_model, actor="coordinator")
        doc = environment.adapter("Google Doc").create_resource("Shared doc", owner="alice")

        deliverable_instance = manager.instantiate(eu_model.uri, doc, owner="alice")
        review_instance = manager.instantiate(review_model.uri, doc, owner="bob")
        manager.start(deliverable_instance.instance_id, actor="alice")
        manager.start(review_instance.instance_id, actor="bob")
        manager.advance(review_instance.instance_id, actor="bob", to_phase_id="under-review",
                        call_parameters={
                            call.call_id: {"reviewers": ["alice"]}
                            for _, call in review_model.action_calls()
                            if "sfr" in call.action_uri
                        })
        attached = manager.instances_for_resource(doc.uri)
        assert len(attached) == 2
        assert deliverable_instance.current_phase_id == "elaboration"
        assert review_instance.current_phase_id == "under-review"

    def test_secured_end_to_end(self, secured_manager, policy, environment, clock):
        """Roles: the coordinator designs, the owner drives, the stakeholder watches."""
        from repro.templates import eu_deliverable_lifecycle
        from repro.widgets.renderer import render_widget_html

        model = eu_deliverable_lifecycle()
        secured_manager.publish_model(model, actor="coordinator")
        doc = environment.adapter("Google Doc").create_resource("D4.2", owner="alice")
        instance = secured_manager.instantiate(model.uri, doc, owner="alice",
                                               actor="coordinator")
        secured_manager.start(instance.instance_id, actor="alice")

        owner_widget = LifecycleWidget(secured_manager, instance.instance_id,
                                       viewer="alice", policy=policy)
        stakeholder_widget = LifecycleWidget(secured_manager, instance.instance_id,
                                             viewer="eve", policy=policy)
        owner_html = render_widget_html(owner_widget.view_model())
        stakeholder_html = render_widget_html(stakeholder_widget.view_model())
        assert "Move to" in owner_html
        assert "Move to" not in stakeholder_html
        from repro.errors import PermissionDeniedError

        with pytest.raises(PermissionDeniedError):
            stakeholder_widget.advance(to_phase_id="internalreview")
