"""Tests for the LifecycleInstance data structure."""

import pytest

from repro.clock import SimulatedClock
from repro.errors import RuntimeStateError, UnknownPhaseError
from repro.model import LifecycleBuilder
from repro.model.annotation import Annotation
from repro.resources import ResourceDescriptor
from repro.runtime.instance import InstanceStatus, LifecycleInstance


def _model(name="Doc lifecycle"):
    return (
        LifecycleBuilder(name)
        .phase("Draft").phase("Review").terminal("Done")
        .flow("Draft", "Review", "Done")
        .build()
    )


def _instance(clock=None):
    clock = clock or SimulatedClock()
    model = _model()
    resource = ResourceDescriptor(uri="urn:doc:1", resource_type="Google Doc",
                                  display_name="Doc 1")
    return LifecycleInstance(model=model, resource=resource, owner="alice",
                             created_at=clock.now()), clock


class TestCreation:
    def test_initial_state(self):
        instance, _ = _instance()
        assert instance.status is InstanceStatus.CREATED
        assert instance.current_phase() is None
        assert instance.model_version == "1.0"
        assert "alice" in instance.token_owners

    def test_suggested_next_before_start_is_initial_phase(self):
        instance, _ = _instance()
        assert [p.phase_id for p in instance.suggested_next_phases()] == ["draft"]


class TestTokenMovement:
    def test_record_entry_moves_token(self):
        instance, clock = _instance()
        instance.record_entry("draft", clock.now(), "alice", followed_model=True)
        assert instance.current_phase_id == "draft"
        assert instance.status is InstanceStatus.ACTIVE
        assert instance.visit_count("draft") == 1

    def test_entry_closes_previous_visit(self):
        instance, clock = _instance()
        instance.record_entry("draft", clock.now(), "alice", True)
        clock.advance(days=2)
        instance.record_entry("review", clock.now(), "alice", True)
        draft_visit = instance.visits[0]
        assert draft_visit.left_at is not None
        assert round(draft_visit.duration_days()) == 2
        assert instance.current_visit().phase_id == "review"

    def test_terminal_entry_completes(self):
        instance, clock = _instance()
        instance.record_entry("draft", clock.now(), "alice", True)
        instance.record_entry("done", clock.now(), "alice", False)
        assert instance.is_completed
        assert instance.completed_at is not None
        assert instance.current_visit() is None  # terminal visit is closed

    def test_reopen_after_completion(self):
        instance, clock = _instance()
        instance.record_entry("done", clock.now(), "alice", False)
        instance.reopen()
        assert instance.status is InstanceStatus.ACTIVE
        assert instance.completed_at is None

    def test_unknown_phase_rejected(self):
        instance, clock = _instance()
        with pytest.raises(UnknownPhaseError):
            instance.record_entry("missing", clock.now(), "alice", True)

    def test_deviations_tracked(self):
        instance, clock = _instance()
        instance.record_entry("draft", clock.now(), "alice", True)
        instance.record_entry("done", clock.now(), "alice", False)
        assert len(instance.deviations()) == 1
        assert instance.deviations()[0].phase_id == "done"


class TestAnnotationsAndParameters:
    def test_annotate(self):
        instance, clock = _instance()
        instance.annotate(Annotation(text="note", author="alice", created_at=clock.now()))
        assert len(instance.annotations) == 1

    def test_bind_instantiation_parameters_merges(self):
        instance, _ = _instance()
        instance.bind_instantiation_parameters("call-1", {"reviewers": ["a"]})
        instance.bind_instantiation_parameters("call-1", {"message": "hi"})
        assert instance.instantiation_parameters["call-1"] == {"reviewers": ["a"],
                                                               "message": "hi"}

    def test_grant_token_ownership_is_idempotent(self):
        instance, _ = _instance()
        instance.grant_token_ownership("bob")
        instance.grant_token_ownership("bob")
        assert instance.token_owners.count("bob") == 1


class TestModelReplacement:
    def test_replace_model_with_target_phase(self):
        instance, clock = _instance()
        instance.record_entry("draft", clock.now(), "alice", True)
        new_model = _model()
        new_model.version = new_model.version.bump()
        instance.replace_model(new_model, "review")
        assert instance.current_phase_id == "review"
        assert instance.model_version == "1.1"
        assert len(instance.visits) == 1  # history preserved

    def test_replace_model_unknown_target_rejected(self):
        instance, clock = _instance()
        with pytest.raises(UnknownPhaseError):
            instance.replace_model(_model(), "nonexistent")

    def test_replace_model_without_target_requires_matching_phase(self):
        instance, clock = _instance()
        instance.record_entry("review", clock.now(), "alice", False)
        incompatible = (
            LifecycleBuilder("Other").phase("Alpha").terminal("Omega")
            .flow("Alpha", "Omega").build()
        )
        with pytest.raises(RuntimeStateError):
            instance.replace_model(incompatible, None)

    def test_replace_model_to_terminal_completes(self):
        instance, clock = _instance()
        instance.record_entry("draft", clock.now(), "alice", True)
        instance.replace_model(_model(), "done")
        assert instance.is_completed


class TestSerialization:
    def test_to_dict_and_summary(self):
        instance, clock = _instance()
        instance.record_entry("draft", clock.now(), "alice", True)
        document = instance.to_dict()
        assert document["current_phase_id"] == "draft"
        assert document["resource"]["resource_type"] == "Google Doc"
        summary = instance.summary()
        assert summary["status"] == "active"
        assert summary["current_phase_name"] == "Draft"
        assert summary["visits"] == 1

    def test_elapsed_days(self):
        instance, clock = _instance()
        clock.advance(days=10)
        assert round(instance.elapsed_days(clock.now())) == 10
