"""Tests for the JSON codec used by the REST layer."""

import pytest

from repro.errors import SerializationError
from repro.serialization import (
    from_json,
    instance_to_json,
    lifecycle_from_json,
    lifecycle_to_json,
    to_json,
)
from repro.templates import eu_deliverable_lifecycle


class TestGenericJson:
    def test_round_trip(self):
        payload = {"a": [1, 2, 3], "b": {"nested": True}}
        assert from_json(to_json(payload)) == payload

    def test_pretty_output_is_indented(self):
        assert "\n" in to_json({"a": 1}, pretty=True)

    def test_non_serializable_falls_back_to_str(self):
        class Odd:
            def __str__(self):
                return "odd"

        assert "odd" in to_json({"x": Odd()})

    def test_invalid_document_raises(self):
        with pytest.raises(SerializationError):
            from_json("{not json")


class TestLifecycleJson:
    def test_round_trip(self):
        model = eu_deliverable_lifecycle()
        restored = lifecycle_from_json(lifecycle_to_json(model))
        assert restored.name == model.name
        assert restored.phase_ids == model.phase_ids
        assert len(restored.transitions) == len(model.transitions)

    def test_rejects_non_object(self):
        with pytest.raises(SerializationError):
            lifecycle_from_json("[1, 2]")

    def test_rejects_missing_fields(self):
        with pytest.raises(SerializationError):
            lifecycle_from_json("{}")


class TestInstanceJson:
    def test_serializes_any_to_dict_object(self, manager, eu_model, google_doc):
        instance = manager.instantiate(eu_model.uri, google_doc, owner="alice")
        manager.start(instance.instance_id, actor="alice")
        document = from_json(instance_to_json(instance))
        assert document["instance_id"] == instance.instance_id
        assert document["current_phase_id"] == "elaboration"
        assert document["visits"][0]["phase_id"] == "elaboration"
