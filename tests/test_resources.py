"""Tests for resource descriptors and credentials."""

import pytest

from repro.errors import ValidationError
from repro.resources import Credentials, ResourceDescriptor


class TestCredentials:
    def test_repr_hides_secret(self):
        credentials = Credentials("alice", "hunter2")
        assert "hunter2" not in repr(credentials)

    def test_dict_round_trip(self):
        credentials = Credentials("alice", "hunter2")
        assert Credentials.from_dict(credentials.to_dict()) == credentials


class TestResourceDescriptor:
    def test_uri_is_normalized(self):
        descriptor = ResourceDescriptor(uri="HTTP://Docs.Example.org/Doc/",
                                        resource_type="Google Doc")
        assert descriptor.uri == "http://docs.example.org/Doc"

    def test_requires_resource_type(self):
        with pytest.raises(ValidationError):
            ResourceDescriptor(uri="urn:x", resource_type="  ")

    def test_display_name_defaults_to_uri(self):
        descriptor = ResourceDescriptor(uri="urn:doc:1", resource_type="Google Doc")
        assert descriptor.display_name == "urn:doc:1"

    def test_with_credentials_returns_copy(self):
        descriptor = ResourceDescriptor(uri="urn:doc:1", resource_type="Google Doc")
        secured = descriptor.with_credentials("alice", "secret")
        assert secured.credentials.username == "alice"
        assert descriptor.credentials is None

    def test_to_dict_omits_credentials_by_default(self):
        descriptor = ResourceDescriptor(uri="urn:doc:1", resource_type="Google Doc",
                                        credentials=Credentials("alice", "secret"))
        assert "credentials" not in descriptor.to_dict()
        assert descriptor.to_dict(include_credentials=True)["credentials"]["secret"] == "secret"

    def test_dict_round_trip(self):
        descriptor = ResourceDescriptor(uri="urn:doc:1", resource_type="Google Doc",
                                        display_name="D1", owner="alice",
                                        metadata={"wp": "WP2"})
        restored = ResourceDescriptor.from_dict(descriptor.to_dict())
        assert restored.uri == descriptor.uri
        assert restored.metadata == {"wp": "WP2"}

    def test_same_uri_different_types_allowed(self):
        # Light-coupling: nothing prevents two descriptors over the same URI.
        first = ResourceDescriptor(uri="urn:doc:1", resource_type="Google Doc")
        second = ResourceDescriptor(uri="urn:doc:1", resource_type="MediaWiki page")
        assert first.uri == second.uri
