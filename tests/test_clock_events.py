"""Unit tests for the clock and the event bus."""

from datetime import datetime, timezone

import pytest

from repro.clock import SimulatedClock, SystemClock
from repro.events import Event, EventBus, EventRecorder


class TestSystemClock:
    def test_now_is_timezone_aware(self):
        assert SystemClock().now().tzinfo is not None

    def test_now_moves_forward(self):
        clock = SystemClock()
        assert clock.now() <= clock.now()


class TestSimulatedClock:
    def test_default_start(self):
        clock = SimulatedClock()
        assert clock.now().year == 2009

    def test_advance_days(self):
        clock = SimulatedClock()
        start = clock.now()
        clock.advance(days=3)
        assert (clock.now() - start).days == 3

    def test_advance_mixed_units(self):
        clock = SimulatedClock()
        start = clock.now()
        clock.advance(hours=12, minutes=30)
        assert (clock.now() - start).total_seconds() == 12.5 * 3600

    def test_advance_backwards_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(days=-1)

    def test_set_forward(self):
        clock = SimulatedClock()
        clock.set(datetime(2010, 1, 1, tzinfo=timezone.utc))
        assert clock.now().year == 2010

    def test_set_backwards_rejected(self):
        clock = SimulatedClock(datetime(2010, 1, 1, tzinfo=timezone.utc))
        with pytest.raises(ValueError):
            clock.set(datetime(2009, 1, 1, tzinfo=timezone.utc))

    def test_naive_start_becomes_utc(self):
        clock = SimulatedClock(datetime(2009, 5, 1))
        assert clock.now().tzinfo is not None

    def test_today(self):
        assert SimulatedClock().today().year == 2009


def _event(kind, subject="s1"):
    return Event(kind=kind, timestamp=SimulatedClock().now(), subject_id=subject)


class TestEventBus:
    def test_exact_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe("instance.created", seen.append)
        bus.publish(_event("instance.created"))
        bus.publish(_event("instance.completed"))
        assert [e.kind for e in seen] == ["instance.created"]

    def test_prefix_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe("action.", seen.append)
        bus.publish(_event("action.completed"))
        bus.publish(_event("instance.created"))
        assert len(seen) == 1

    def test_wildcard_subscription(self):
        bus = EventBus()
        recorder = EventRecorder(bus)
        bus.publish(_event("a"))
        bus.publish(_event("b"))
        assert recorder.kinds() == ["a", "b"]

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe("x", seen.append)
        bus.publish(_event("x"))
        unsubscribe()
        bus.publish(_event("x"))
        assert len(seen) == 1

    def test_failing_handler_does_not_block_others(self):
        bus = EventBus()
        seen = []

        def broken(event):
            raise RuntimeError("boom")

        bus.subscribe("x", broken)
        bus.subscribe("x", seen.append)
        bus.publish(_event("x"))
        assert len(seen) == 1

    def test_strict_bus_raises(self):
        bus = EventBus(strict=True)

        def broken(event):
            raise RuntimeError("boom")

        bus.subscribe("x", broken)
        with pytest.raises(RuntimeError):
            bus.publish(_event("x"))

    def test_published_count(self):
        bus = EventBus()
        bus.publish(_event("x"))
        bus.publish(_event("y"))
        assert bus.published_count == 2


class TestEventRecorder:
    def test_of_kind_and_clear(self):
        bus = EventBus()
        recorder = EventRecorder(bus)
        bus.publish(_event("a"))
        bus.publish(_event("a"))
        bus.publish(_event("b"))
        assert len(recorder.of_kind("a")) == 2
        recorder.clear()
        assert recorder.events == []

    def test_pattern_filter(self):
        bus = EventBus()
        recorder = EventRecorder(bus, pattern="instance.")
        bus.publish(_event("instance.created"))
        bus.publish(_event("action.failed"))
        assert recorder.kinds() == ["instance.created"]
