"""Tests for the resource plug-ins (adapters) and the standard environment."""

import pytest

from repro.actions import library
from repro.errors import ActionInvocationError, ResourceNotFoundError, UnknownResourceTypeError
from repro.plugins import build_standard_environment
from repro.resources import ResourceDescriptor


@pytest.fixture
def env(clock):
    return build_standard_environment(clock=clock)


class TestStandardEnvironment:
    def test_all_adapters_registered(self, env):
        expected = {"Google Doc", "MediaWiki page", "Zoho document", "SVN file", "Photo album"}
        assert set(env.resource_types()) == expected
        assert set(env.resource_manager.resource_types()) == expected

    def test_every_adapter_implements_change_access_rights(self, env):
        for resource_type in env.resource_types():
            assert env.registry.has_implementation(library.CHANGE_ACCESS_RIGHTS, resource_type)

    def test_document_types_share_the_core_action_surface(self, env):
        core = {library.CHANGE_ACCESS_RIGHTS, library.NOTIFY_REVIEWERS, library.SEND_FOR_REVIEW,
                library.GENERATE_PDF, library.POST_ON_WEBSITE}
        for resource_type in ("Google Doc", "MediaWiki page", "Zoho document"):
            available = {t.uri for t in env.registry.actions_for_resource_type(resource_type)}
            assert core <= available

    def test_unknown_adapter_raises(self, env):
        with pytest.raises(UnknownResourceTypeError):
            env.resource_manager.adapter("Napster playlist")


class TestAdapterResourceAccess:
    def test_create_resource_returns_descriptor(self, env):
        descriptor = env.adapter("Google Doc").create_resource("Doc", owner="alice")
        assert isinstance(descriptor, ResourceDescriptor)
        assert descriptor.resource_type == "Google Doc"
        assert env.resource_manager.exists(descriptor)

    def test_require_unknown_resource(self, env):
        ghost = ResourceDescriptor(uri="https://docs.google.example/document/ghost",
                                   resource_type="Google Doc")
        with pytest.raises(ResourceNotFoundError):
            env.resource_manager.require(ghost)

    def test_render_resource_view(self, env):
        descriptor = env.adapter("MediaWiki page").create_resource(
            "Architecture", owner="bob", content="== Intro ==")
        view = env.resource_manager.render(descriptor)
        assert view.title == "Architecture"
        assert view.resource_type == "MediaWiki page"
        assert view.state["application"] == "MediaWiki"

    def test_handle_returns_artifact(self, env):
        descriptor = env.adapter("Google Doc").create_resource("Doc", owner="alice")
        artifact = env.resource_manager.handle(descriptor)
        assert artifact.title == "Doc"


def _run(env, resource_type, action_uri, parameters, actor="alice", resource=None):
    """Resolve and execute one action implementation directly."""
    adapter = env.adapter(resource_type)
    descriptor = resource or adapter.create_resource("Artifact", owner=actor,
                                                     content="content " * 50)
    implementation = env.registry.implementation(action_uri, resource_type)
    action_type = env.registry.type(action_uri)
    values = implementation.check_parameters(action_type, parameters)
    context = adapter.context_for(descriptor.uri, values, actor=actor)
    return descriptor, implementation.callable(context)


class TestGoogleDocsAdapterActions:
    def test_change_access_rights(self, env):
        descriptor, result = _run(env, "Google Doc", library.CHANGE_ACCESS_RIGHTS,
                                  {"visibility": "team", "editors": ["bob"]})
        assert result["visibility"] == "team"
        assert "bob" in result["editors"]

    def test_notify_reviewers_requires_list(self, env):
        with pytest.raises(ActionInvocationError):
            _run(env, "Google Doc", library.NOTIFY_REVIEWERS, {"reviewers": []})

    def test_notify_reviewers_sends_message(self, env):
        descriptor, result = _run(env, "Google Doc", library.NOTIFY_REVIEWERS,
                                  {"reviewers": ["bob", "carol"], "message": "please"})
        assert result["notified"] == ["bob", "carol"]
        app = env.adapter("Google Doc").application
        assert len(app.notifications(descriptor.uri)) == 1

    def test_generate_pdf_then_post_on_website(self, env):
        adapter = env.adapter("Google Doc")
        descriptor = adapter.create_resource("D5.2", owner="alice", content="text " * 500)
        _run(env, "Google Doc", library.GENERATE_PDF, {}, resource=descriptor)
        _, result = _run(env, "Google Doc", library.POST_ON_WEBSITE, {}, resource=descriptor)
        assert result["published"]
        assert env.website.is_published(descriptor.uri)
        entry = env.website.section("deliverables")[-1]
        assert entry.rendition["format"] == "pdf"

    def test_submit_to_agency_exports_implicitly(self, env):
        descriptor, result = _run(env, "Google Doc", library.SUBMIT_TO_AGENCY, {})
        assert result["submitted_to"] == "European Commission"
        assert result["rendition"]["format"] == "pdf"

    def test_subscribe_and_archive(self, env):
        descriptor, _ = _run(env, "Google Doc", library.SUBSCRIBE_TO_CHANGES,
                             {"subscriber": "pm"})
        app = env.adapter("Google Doc").application
        assert "pm" in app.artifact(descriptor.uri).subscribers
        _, result = _run(env, "Google Doc", library.ARCHIVE_RESOURCE, {}, resource=descriptor)
        assert result["archived"]


class TestMediaWikiAdapterActions:
    def test_change_access_rights_maps_to_protection(self, env):
        descriptor, result = _run(env, "MediaWiki page", library.CHANGE_ACCESS_RIGHTS,
                                  {"visibility": "private"})
        assert result["protection"] == "sysop"
        descriptor2, result2 = _run(env, "MediaWiki page", library.CHANGE_ACCESS_RIGHTS,
                                    {"visibility": "public"})
        assert result2["protection"] == ""

    def test_send_for_review_uses_talk_page(self, env):
        descriptor, result = _run(env, "MediaWiki page", library.SEND_FOR_REVIEW,
                                  {"reviewers": ["carol"]})
        wiki = env.adapter("MediaWiki page").application
        assert result["review_round_open"]
        assert len(wiki.talk_page(descriptor.uri)) == 1

    def test_collect_reviews_counts_talk_entries(self, env):
        adapter = env.adapter("MediaWiki page")
        descriptor = adapter.create_resource("Page", owner="bob")
        adapter.application.add_talk_entry(descriptor.uri, "carol", "fine")
        _, result = _run(env, "MediaWiki page", library.COLLECT_REVIEWS,
                         {"minimum_reviews": 1}, resource=descriptor)
        assert result["satisfied"]


class TestSubversionAdapterActions:
    def test_snapshot_creates_tag(self, env):
        descriptor, result = _run(env, "SVN file", library.CREATE_SNAPSHOT, {"label": "rc1"})
        svn = env.adapter("SVN file").application
        assert "rc1" in svn.tags()
        assert result["tagged_revision"] == svn.tags()["rc1"]

    def test_send_for_review_tags_review_revision(self, env):
        descriptor, result = _run(env, "SVN file", library.SEND_FOR_REVIEW,
                                  {"reviewers": ["lead"]})
        assert result["review_round_open"]
        svn = env.adapter("SVN file").application
        assert svn.access(descriptor.uri).can_read("lead")


class TestPhotoAlbumAdapterActions:
    def test_generate_pdf_is_contact_sheet(self, env):
        adapter = env.adapter("Photo album")
        descriptor = adapter.create_resource("Album", owner="maria")
        adapter.application.add_photo(descriptor.uri, "p1", user="maria")
        _, result = _run(env, "Photo album", library.GENERATE_PDF, {}, resource=descriptor)
        assert result["kind"] == "contact-sheet"

    def test_post_on_website_publishes_album(self, env):
        adapter = env.adapter("Photo album")
        descriptor = adapter.create_resource("Album", owner="maria")
        adapter.application.add_photo(descriptor.uri, "p1", user="maria")
        _, result = _run(env, "Photo album", library.POST_ON_WEBSITE, {}, resource=descriptor)
        assert result["published"]
        assert env.website.is_published(descriptor.uri)
        assert adapter.application.access(descriptor.uri).visibility == "public"
