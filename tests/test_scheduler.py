"""Tests for :mod:`repro.scheduler`: timers, deadline enforcement, retries,
maintenance jobs, the v2 API surface, and timer durability.

The durability centrepiece mirrors ``tests/test_persistence.py``: a durable
deployment arms deadline and retry timers, is killed, and a fresh process
rebuilds the pending timers and the retry backoff state from snapshot +
journal — then the restored timers actually fire.
"""

from datetime import timedelta

import pytest

from repro.actions import ActionImplementation, ActionType, library
from repro.clock import SimulatedClock
from repro.errors import (
    ActionInvocationError,
    RuntimeStateError,
    SchedulerError,
)
from repro.events import BatchingEventBus, EventBus, EventRecorder
from repro.client import GeleeApiError, GeleeClient
from repro.model import Deadline, LifecycleBuilder
from repro.persistence import PersistenceConfig
from repro.storage import ExecutionLog
from repro.plugins import build_standard_environment
from repro.runtime import LifecycleManager, ShardedLifecycleManager
from repro.scheduler import (
    LifecycleScheduler,
    SchedulerConfig,
    TimerService,
    deadline_timer_id,
    retry_timer_id,
)
from repro.service import GeleeService
from repro.service.rest import RestRouter

FLAKY_URI = "urn:test:flaky"


def deadline_model(days=2.0, escalation="notify", name="Deadline lifecycle"):
    builder = LifecycleBuilder(name)
    builder.phase("Work", deadline_days=None)
    builder.phase("Review")
    builder.terminal("End")
    builder.flow("Work", "Review", "End")
    if escalation == "advance":
        builder.timeout_flow("Work", "Review", days=days)
    else:
        builder.deadline("Work", days=days, escalation=escalation)
    return builder.build()


def build_runtime(shard_count=None, config=None, bus=None):
    clock = SimulatedClock()
    environment = build_standard_environment(clock=clock)
    bus = bus or EventBus()
    if shard_count:
        manager = ShardedLifecycleManager(environment, shard_count=shard_count,
                                          clock=clock, bus=bus, rng_seed=0)
    else:
        manager = LifecycleManager(environment, clock=clock, bus=bus)
    scheduler = LifecycleScheduler(manager, bus=bus, config=config)
    return clock, environment, bus, manager, scheduler


def start_instance(environment, manager, model, name="doc", owner="alice"):
    adapter = environment.adapter("Google Doc")
    resource = adapter.create_resource(name, owner=owner)
    instance = manager.instantiate(model.uri, resource, owner=owner)
    manager.start(instance.instance_id, actor=owner)
    return instance


def register_flaky_action(environment, failures=2):
    """An action that fails ``failures`` times, then succeeds."""
    state = {"calls": 0}

    def flaky(context):
        state["calls"] += 1
        if state["calls"] <= failures:
            raise ActionInvocationError("flaky failure #{}".format(state["calls"]))
        return {"ok": True, "calls": state["calls"]}

    environment.registry.register_type(ActionType(uri=FLAKY_URI, name="Flaky"))
    environment.registry.register_implementation(
        ActionImplementation(FLAKY_URI, "Google Doc", flaky))
    return state


# ================================================================ TimerService
class TestTimerService:
    def _service(self):
        clock = SimulatedClock()
        return clock, TimerService(clock=clock)

    def test_schedule_requires_a_due_time(self):
        _, timers = self._service()
        with pytest.raises(SchedulerError):
            timers.schedule("t1")
        with pytest.raises(SchedulerError):
            timers.schedule("")
        with pytest.raises(SchedulerError):
            timers.schedule("t1", delay_seconds=10, fire_at=SimulatedClock().now())

    def test_fires_in_due_order_with_inclusive_boundary(self):
        clock, timers = self._service()
        timers.schedule("late", delay_seconds=120, kind="k")
        timers.schedule("early", delay_seconds=60, kind="k")
        assert timers.pending_count == 2
        assert [t.timer_id for t in timers.pending()] == ["early", "late"]
        clock.advance(seconds=60)
        # Due exactly now: the boundary instant fires.
        fired = timers.fire_due()
        assert [f.timer.timer_id for f in fired] == ["early"]
        assert fired[0].drift_seconds == 0.0
        clock.advance(seconds=60)
        assert [f.timer.timer_id for f in timers.fire_due()] == ["late"]
        assert timers.pending_count == 0

    def test_named_timers_are_idempotent_and_cancellable(self):
        clock, timers = self._service()
        timers.schedule("t", delay_seconds=60)
        timers.schedule("t", delay_seconds=600)  # replaces, does not duplicate
        assert timers.pending_count == 1
        clock.advance(seconds=120)
        assert timers.fire_due() == []  # the 60s schedule no longer exists
        assert timers.cancel("t") is True
        assert timers.cancel("t") is False
        clock.advance(seconds=600)
        assert timers.fire_due() == []

    def test_recurring_timer_reschedules_and_catches_up(self):
        clock, timers = self._service()
        fired = []
        timers.on("m", lambda timer, now: fired.append(now))
        timers.schedule("job", kind="m", interval_seconds=60)
        clock.advance(seconds=60)
        timers.fire_due()
        clock.advance(seconds=60)
        timers.fire_due()
        assert len(fired) == 2
        # Sleeping through many periods yields ONE catch-up run, and the
        # next occurrence lands a full interval in the future.
        clock.advance(seconds=600)
        assert len(timers.fire_due()) == 1
        pending = timers.get("job")
        assert pending.fire_at == clock.now() + timedelta(seconds=60)
        assert pending.attempts == 3

    def test_drift_is_measured(self):
        clock, timers = self._service()
        timers.schedule("t", delay_seconds=10)
        clock.advance(seconds=25)
        firing = timers.fire_due()[0]
        assert firing.drift_seconds == pytest.approx(15.0)
        assert timers.stats()["max_drift_seconds"] == pytest.approx(15.0)

    def test_handler_failures_are_isolated(self):
        clock, timers = self._service()

        def boom(timer, now):
            raise RuntimeError("handler exploded")

        timers.on("bad", boom)
        timers.schedule("a", delay_seconds=1, kind="bad")
        timers.schedule("b", delay_seconds=1, kind="good")
        clock.advance(seconds=2)
        firings = timers.fire_due()
        assert len(firings) == 2
        assert firings[0].handled is False and "exploded" in firings[0].error
        assert timers.stats()["handler_failures"] == 1

    def test_dump_restore_round_trip(self):
        clock, timers = self._service()
        timers.schedule("a", delay_seconds=60, kind="deadline", subject_id="i1",
                        payload={"phase_id": "work"})
        timers.schedule("b", interval_seconds=300, kind="maintenance", subject_id="job")
        state = timers.dump_state()
        rebuilt = TimerService(clock=clock)
        assert rebuilt.restore_state(state) == 2
        assert {t.timer_id for t in rebuilt.pending()} == {"a", "b"}
        restored = rebuilt.get("a")
        assert restored.fire_at == timers.get("a").fire_at
        assert restored.payload == {"phase_id": "work"}
        assert rebuilt.get("b").is_recurring

    def test_cancel_then_reschedule_does_not_fire_at_the_old_time(self):
        """A stale heap entry must never match a later timer of the same
        name (the generation counter is monotonic, not reset-on-remove)."""
        clock, timers = self._service()
        timers.schedule("t", delay_seconds=10)
        timers.cancel("t")
        timers.schedule("t", delay_seconds=1000)
        clock.advance(seconds=20)  # past the OLD fire time only
        assert timers.fire_due() == []
        assert timers.get("t") is not None  # still pending for +1000s
        clock.advance(seconds=1000)
        assert [f.timer.timer_id for f in timers.fire_due()] == ["t"]

    def test_fire_then_reschedule_does_not_reuse_generations(self):
        clock, timers = self._service()
        timers.schedule("t", delay_seconds=5)
        clock.advance(seconds=5)
        assert len(timers.fire_due()) == 1
        timers.schedule("t", delay_seconds=1000)
        clock.advance(seconds=5)
        assert timers.fire_due() == []  # no ghost from the fired entry
        assert timers.pending_count == 1

    def test_non_utc_offsets_are_normalised_for_ordering(self):
        from datetime import datetime, timezone as tz

        clock, timers = self._service()
        # a is due 07:00Z (expressed at +05:00), b at 08:00Z.
        timers.schedule("a", fire_at=datetime(2026, 1, 1, 12, 0,
                                              tzinfo=tz(timedelta(hours=5))))
        timers.schedule("b", fire_at=datetime(2026, 1, 1, 8, 0, tzinfo=tz.utc))
        assert [t.timer_id for t in timers.pending()] == ["a", "b"]
        assert timers.get("a").fire_at.utcoffset() == timedelta(0)
        assert timers.get("a").to_dict()["fire_at"].endswith("+00:00")

    def test_naive_fire_at_is_coerced_to_utc(self):
        """One naive datetime must not poison heap comparisons forever."""
        from datetime import datetime

        clock, timers = self._service()
        timers.schedule("naive", fire_at=datetime(2030, 1, 1))  # no tzinfo
        assert timers.get("naive").fire_at.tzinfo is not None
        # The queue still works: aware timers schedule, list and fire.
        timers.schedule("aware", delay_seconds=10)
        assert [t.timer_id for t in timers.pending()] == ["aware", "naive"]
        clock.advance(seconds=10)
        assert [f.timer.timer_id for f in timers.fire_due()] == ["aware"]

    def test_handler_armed_due_timers_wait_for_the_next_tick(self):
        """A handler re-arming an already-due timer must not hang the tick."""
        clock, timers = self._service()
        ticks = []

        def rearm(timer, now):
            ticks.append(timer.attempts)
            timers.schedule(timer.timer_id, fire_at=now, kind="loop")

        timers.on("loop", rearm)
        timers.schedule("cycle", delay_seconds=0, kind="loop")
        fired = timers.fire_due()  # would never return without the pop budget
        assert len(fired) == 1
        assert timers.pending_count == 1  # re-armed for the NEXT tick
        assert len(timers.fire_due()) == 1

    def test_events_are_published_on_the_bus(self):
        clock = SimulatedClock()
        bus = EventBus()
        recorder = EventRecorder(bus, pattern="timer.")
        timers = TimerService(clock=clock, bus=bus)
        timers.schedule("t", delay_seconds=30)
        timers.cancel("t")
        timers.schedule("t", delay_seconds=30)
        clock.advance(seconds=30)
        timers.fire_due()
        assert recorder.kinds() == ["timer.scheduled", "timer.cancelled",
                                    "timer.scheduled", "timer.fired"]


# ======================================================== deadline enforcement
class TestDeadlineEnforcement:
    def test_deadline_timer_armed_on_start_and_moved_on_advance(self):
        clock, env, bus, manager, scheduler = build_runtime()
        model = deadline_model(days=2.0)
        manager.publish_model(model, actor="x")
        instance = start_instance(env, manager, model)
        timer = scheduler.timers.get(deadline_timer_id(instance.instance_id))
        assert timer is not None and timer.kind == "deadline"
        assert timer.fire_at == clock.now() + timedelta(days=2)
        # Leaving the deadline phase disarms (Review has no deadline).
        manager.advance(instance.instance_id, "alice", to_phase_id="review")
        assert scheduler.timers.get(deadline_timer_id(instance.instance_id)) is None

    def test_notify_escalation_fires_at_the_boundary_instant(self):
        clock, env, bus, manager, scheduler = build_runtime()
        recorder = EventRecorder(bus, pattern="deadline.escalated")
        model = deadline_model(days=2.0)
        manager.publish_model(model, actor="x")
        instance = start_instance(env, manager, model)
        clock.advance(days=2)  # exactly the due instant
        fired = scheduler.tick()
        assert len(fired) == 1 and fired[0].handled
        assert len(recorder.events) == 1
        event = recorder.events[0]
        assert event.subject_id == instance.instance_id
        assert event.payload["policy"] == "notify"
        assert event.payload["overdue_seconds"] == 0.0
        # The escalation is annotated durably and happens once per visit.
        assert [a.kind for a in instance.annotations] == ["escalation"]
        assert instance.current_phase_id == "work"  # notify does not move
        clock.advance(days=5)
        assert scheduler.tick() == []

    def test_advance_escalation_follows_the_timeout_transition(self):
        clock, env, bus, manager, scheduler = build_runtime()
        model = deadline_model(days=1.0, escalation="advance")
        manager.publish_model(model, actor="x")
        instance = start_instance(env, manager, model)
        clock.advance(days=1, hours=3)
        assert len(scheduler.tick()) == 1
        assert instance.current_phase_id == "review"
        # The timeout transition is modelled, so the move is not a deviation.
        assert instance.visits[-1].followed_model is True
        assert instance.deviations() == []
        assert scheduler.status()["escalations"] == 1

    def test_invoke_escalation_dispatches_the_bound_call(self):
        clock, env, bus, manager, scheduler = build_runtime()
        builder = LifecycleBuilder("Invoke lifecycle")
        builder.phase("Work")
        builder.terminal("End")
        builder.flow("Work", "End")
        builder.action("Work", library.NOTIFY_REVIEWERS, "Notify",
                       reviewers=["bob"])
        model = builder.peek()
        call_id = model.phase("work").actions[0].call_id
        builder.deadline("Work", days=1, escalation="invoke",
                         escalate_call_id=call_id)
        model = builder.build()
        manager.publish_model(model, actor="x")
        instance = start_instance(env, manager, model)
        before = len(instance.current_visit().invocations)
        clock.advance(days=1)
        assert len(scheduler.tick()) == 1
        invocations = instance.current_visit().invocations
        assert len(invocations) == before + 1
        assert invocations[-1].status.value == "completed"
        assert instance.current_phase_id == "work"  # invoke does not move

    def test_stale_timer_is_a_no_op(self):
        """A timer armed for a phase the token already left does nothing."""
        clock, env, bus, manager, scheduler = build_runtime()
        model = deadline_model(days=2.0)
        manager.publish_model(model, actor="x")
        instance = start_instance(env, manager, model)
        # Simulate staleness: re-install the armed timer behind the
        # scheduler's back, then move the token away.
        timer = scheduler.timers.get(deadline_timer_id(instance.instance_id))
        manager.advance(instance.instance_id, "alice", to_phase_id="review")
        scheduler.timers.install_timer(timer)
        clock.advance(days=3)
        fired = scheduler.tick()
        assert len(fired) == 1 and fired[0].handled
        assert instance.annotations == []  # no escalation happened
        assert scheduler.status()["escalations"] == 0

    def test_absolute_due_in_the_past_fires_on_first_tick(self):
        clock, env, bus, manager, scheduler = build_runtime()
        builder = LifecycleBuilder("Past-due lifecycle")
        builder.phase("Work")
        builder.terminal("End")
        builder.flow("Work", "End")
        model = builder.peek()
        model.phase("work").deadline = Deadline(due=clock.now() - timedelta(days=1))
        model = builder.build()
        manager.publish_model(model, actor="x")
        instance = start_instance(env, manager, model)
        # Armed in the past: fires on the very next tick, without any
        # clock advance at all.
        fired = scheduler.tick()
        assert len(fired) == 1
        assert [a.kind for a in instance.annotations] == ["escalation"]

    def test_days_zero_deadline_fires_immediately(self):
        clock, env, bus, manager, scheduler = build_runtime()
        builder = LifecycleBuilder("Zero-day lifecycle")
        builder.phase("Triage", deadline_days=0)
        builder.phase("Work")
        builder.terminal("End")
        builder.flow("Triage", "Work", "End")
        model = builder.build()
        assert model.phase("triage").deadline is not None  # 0 is not "no deadline"
        manager.publish_model(model, actor="x")
        instance = start_instance(env, manager, model)
        fired = scheduler.tick()
        assert len(fired) == 1
        assert [a.kind for a in instance.annotations] == ["escalation"]

    def test_zero_delay_timeout_cycle_terminates_each_tick(self):
        """Two phases timing out into each other with days=0 must advance
        one step per tick, not hang the scheduler."""
        clock, env, bus, manager, scheduler = build_runtime()
        builder = LifecycleBuilder("Ping-pong lifecycle")
        builder.phase("A")
        builder.phase("B")
        builder.terminal("End")
        builder.flow("A", "B", "End")
        builder.timeout_flow("A", "B", days=0)
        builder.timeout_flow("B", "A", days=0)
        model = builder.build()
        manager.publish_model(model, actor="x")
        instance = start_instance(env, manager, model)
        assert len(scheduler.tick()) == 1  # A -> B, then the tick ENDS
        assert instance.current_phase_id == "b"
        assert len(scheduler.tick()) == 1  # B -> A
        assert instance.current_phase_id == "a"

    def test_failed_escalation_rearms_the_deadline_timer(self):
        """A transient escalation failure must not abandon the deadline."""
        clock, env, bus, manager, scheduler = build_runtime(
            config=SchedulerConfig(retry_initial_delay_seconds=600))
        builder = LifecycleBuilder("Broken-invoke lifecycle")
        builder.phase("Work")
        builder.terminal("End")
        builder.flow("Work", "End")
        builder.action("Work", FLAKY_URI, "Unimplemented call")
        model = builder.peek()
        call_id = model.phase("work").actions[0].call_id
        builder.deadline("Work", days=1, escalation="invoke",
                         escalate_call_id=call_id)
        # FLAKY_URI is never registered: resolution fails at escalation time.
        model = builder.build()
        manager.publish_model(model, actor="x")
        instance = start_instance(env, manager, model)
        clock.advance(days=1)
        fired = scheduler.tick()
        assert len(fired) == 1 and fired[0].handled is False
        assert scheduler.status()["escalation_failures"] == 1
        assert scheduler.status()["escalations"] == 0
        assert instance.annotations == []  # not marked escalated
        rearmed = scheduler.timers.get(deadline_timer_id(instance.instance_id))
        assert rearmed is not None
        assert rearmed.fire_at == clock.now() + timedelta(seconds=600)

    def test_completion_disarms_the_deadline_timer(self):
        clock, env, bus, manager, scheduler = build_runtime()
        model = deadline_model(days=2.0)
        manager.publish_model(model, actor="x")
        instance = start_instance(env, manager, model)
        manager.advance(instance.instance_id, "alice", to_phase_id="review")
        manager.advance(instance.instance_id, "alice", to_phase_id="end")
        assert scheduler.timers.pending(kind="deadline") == []

    def test_sharded_runtime_with_batching_bus(self):
        clock = SimulatedClock()
        env = build_standard_environment(clock=clock)
        bus = BatchingEventBus(max_batch=256, clock=clock)
        manager = ShardedLifecycleManager(env, shard_count=4, clock=clock,
                                          bus=bus, rng_seed=0)
        scheduler = LifecycleScheduler(manager, bus=bus)
        model = deadline_model(days=1.0, escalation="advance")
        manager.publish_model(model, actor="x")
        instances = [start_instance(env, manager, model, name="doc {}".format(i))
                     for i in range(12)]
        clock.advance(days=1)
        fired = scheduler.tick()  # tick flushes the batching bus first
        assert len(fired) == 12
        bus.flush()
        for instance in instances:
            assert manager.instance(instance.instance_id).current_phase_id == "review"


# ===================================================================== retries
class TestRetryWithBackoff:
    def _config(self, **overrides):
        defaults = dict(retry_initial_delay_seconds=60.0,
                        retry_backoff_factor=2.0, retry_max_attempts=3)
        defaults.update(overrides)
        return SchedulerConfig(**defaults)

    def _flaky_model(self):
        builder = LifecycleBuilder("Flaky lifecycle")
        builder.phase("Work")
        builder.terminal("End")
        builder.flow("Work", "End")
        builder.action("Work", FLAKY_URI, "Flaky call")
        return builder.build()

    def test_failed_action_retries_with_backoff_until_success(self):
        clock, env, bus, manager, scheduler = build_runtime(config=self._config())
        state = register_flaky_action(env, failures=2)
        model = self._flaky_model()
        manager.publish_model(model, actor="x")
        instance = start_instance(env, manager, model)
        assert state["calls"] == 1  # entry dispatch failed
        call_id = model.phase("work").actions[0].call_id
        timer = scheduler.timers.get(retry_timer_id(instance.instance_id, call_id))
        assert timer is not None
        assert timer.fire_at == clock.now() + timedelta(seconds=60)
        assert timer.payload["attempt"] == 1

        clock.advance(seconds=60)
        scheduler.tick()  # retry #1 fails again
        assert state["calls"] == 2
        timer = scheduler.timers.get(retry_timer_id(instance.instance_id, call_id))
        assert timer.payload["attempt"] == 2
        assert timer.fire_at == clock.now() + timedelta(seconds=120)  # backoff

        clock.advance(seconds=120)
        scheduler.tick()  # retry #2 succeeds
        assert state["calls"] == 3
        assert scheduler.timers.get(
            retry_timer_id(instance.instance_id, call_id)) is None
        assert scheduler.status()["retry_states"] == 0
        assert scheduler.status()["retries_dispatched"] == 2
        statuses = [inv.status.value for inv in instance.current_visit().invocations]
        assert statuses == ["failed", "failed", "completed"]

    def test_retries_exhaust_after_max_attempts(self):
        clock, env, bus, manager, scheduler = build_runtime(
            config=self._config(retry_max_attempts=2))
        recorder = EventRecorder(bus, pattern="action.retries_exhausted")
        register_flaky_action(env, failures=100)
        model = self._flaky_model()
        manager.publish_model(model, actor="x")
        instance = start_instance(env, manager, model)
        for _ in range(3):
            clock.advance(days=1)
            scheduler.tick()
        assert scheduler.timers.pending(kind="retry") == []
        assert scheduler.status()["retries_exhausted"] == 1
        assert len(recorder.events) == 1
        assert recorder.events[0].subject_id == instance.instance_id

    def test_leaving_the_phase_abandons_the_retry(self):
        clock, env, bus, manager, scheduler = build_runtime(config=self._config())
        state = register_flaky_action(env, failures=100)
        model = self._flaky_model()
        manager.publish_model(model, actor="x")
        instance = start_instance(env, manager, model)
        manager.advance(instance.instance_id, "alice", to_phase_id="end")
        clock.advance(days=1)
        scheduler.tick()
        assert state["calls"] == 1  # never re-invoked
        assert scheduler.status()["retry_states"] == 0

    def test_zero_delay_retry_still_spans_ticks(self):
        """retry_initial_delay_seconds=0 must not burn every attempt
        back-to-back inside one tick: handler-armed timers are fenced."""
        clock, env, bus, manager, scheduler = build_runtime(
            config=self._config(retry_initial_delay_seconds=0.0,
                                retry_max_attempts=3))
        state = register_flaky_action(env, failures=100)
        model = self._flaky_model()
        manager.publish_model(model, actor="x")
        start_instance(env, manager, model)
        assert state["calls"] == 1
        assert len(scheduler.tick()) == 1  # ONE retry per tick, then it ends
        assert state["calls"] == 2
        assert len(scheduler.tick()) == 1
        assert state["calls"] == 3

    def test_invoke_action_validates_its_inputs(self):
        clock, env, bus, manager, scheduler = build_runtime()
        model = deadline_model()
        manager.publish_model(model, actor="x")
        adapter = env.adapter("Google Doc")
        resource = adapter.create_resource("doc", owner="alice")
        instance = manager.instantiate(model.uri, resource, owner="alice")
        with pytest.raises(RuntimeStateError):
            manager.invoke_action(instance.instance_id, "alice", "nope")  # not started
        manager.start(instance.instance_id, actor="alice")
        with pytest.raises(RuntimeStateError):
            manager.invoke_action(instance.instance_id, "alice", "unknown-call")

    def test_invoke_action_is_gated_like_a_token_move(self):
        """A view-only stakeholder must not dispatch side-effectful actions."""
        from repro.accesscontrol import AccessPolicy, UserDirectory
        from repro.errors import PermissionDeniedError

        clock = SimulatedClock()
        env = build_standard_environment(clock=clock)
        directory = UserDirectory()
        directory.register_many("alice", "bob")
        policy = AccessPolicy(directory)
        policy.grant_manager("alice")
        policy.grant_stakeholder("bob")  # view only
        manager = LifecycleManager(env, clock=clock, access_policy=policy)
        model = self._flaky_model()
        register_flaky_action(env, failures=0)
        manager.publish_model(model, actor="alice")
        instance = start_instance(env, manager, model)
        call_id = model.phase("work").actions[0].call_id
        with pytest.raises(PermissionDeniedError):
            manager.invoke_action(instance.instance_id, "bob", call_id)
        manager.invoke_action(instance.instance_id, "alice", call_id)


# ================================================================= maintenance
class TestMaintenanceJobs:
    def test_recurring_job_runs_on_schedule(self):
        clock, env, bus, manager, scheduler = build_runtime()
        runs = []
        scheduler.register_job("heartbeat", lambda: runs.append(clock.now()) or
                               {"beat": len(runs)}, interval_seconds=300)
        for _ in range(3):
            clock.advance(seconds=300)
            scheduler.tick()
        assert len(runs) == 3
        status = scheduler.status()["maintenance"]["heartbeat"]
        assert status["runs"] == 3
        assert status["last_result"] == {"beat": 3}

    def test_job_registration_validates_interval(self):
        clock, env, bus, manager, scheduler = build_runtime()
        with pytest.raises(SchedulerError):
            scheduler.register_job("bad", lambda: None, interval_seconds=0)

    def test_periodic_checkpoints_run_unattended(self, tmp_path):
        """The ROADMAP's 'periodic/automatic checkpoint scheduling' item."""
        clock = SimulatedClock()
        service = GeleeService(
            clock=clock, shard_count=2,
            persistence=PersistenceConfig(str(tmp_path), backend="sqlite"),
            scheduler=SchedulerConfig(checkpoint_interval_seconds=3600,
                                      journal_rotate_interval_seconds=3600))
        model = deadline_model()
        service.manager.publish_model(model, actor="x")
        instance = start_instance(service.environment, service.manager, model)
        clock.advance(hours=1)
        service.scheduler_tick()
        status = service.scheduler_status()
        assert status["maintenance"]["checkpoint"]["runs"] == 1
        report = status["maintenance"]["checkpoint"]["last_result"]
        assert report["instances_flushed"] >= 1
        assert service.persistence.status()["snapshots"] == 1
        # The journal-rotate job sealed the open segment too.
        assert status["maintenance"]["journal-rotate"]["runs"] == 1
        service.close()
        # The checkpointed instance survives a restart.
        revived = GeleeService(
            clock=SimulatedClock(clock.now()), shard_count=2,
            persistence=PersistenceConfig(str(tmp_path), backend="sqlite"))
        assert revived.instance_detail(instance.instance_id)[
            "current_phase_id"] == "work"
        revived.close()

    def test_log_compaction_job(self):
        clock, env, bus, manager, scheduler = build_runtime()
        service_log = ExecutionLog(bus=bus)
        scheduler.register_job(
            "log-compact", lambda: {"dropped": service_log.compact(10)},
            interval_seconds=60)
        model = deadline_model()
        manager.publish_model(model, actor="x")
        for index in range(8):
            start_instance(env, manager, model, name="doc {}".format(index))
        assert len(service_log) > 10
        clock.advance(seconds=60)
        scheduler.tick()
        assert len(service_log) <= 10
        assert scheduler.status()["maintenance"]["log-compact"][
            "last_result"]["dropped"] > 0


# ================================================================= API surface
class TestSchedulerApi:
    @pytest.fixture
    def client(self):
        clock = SimulatedClock()
        service = GeleeService(clock=clock, shard_count=2)
        router = RestRouter(service)
        client = GeleeClient.in_process(router=router, actor="alice")
        client._clock = clock
        client._service = service
        return client

    def test_timer_crud_over_the_api(self, client):
        created = client.schedule_timer("reminder:1", delay_seconds=3600,
                                        subject_id="inst-1",
                                        payload={"note": "ping alice"})
        assert created["timer_id"] == "reminder:1"
        assert created["kind"] == "user"
        page = client.list_timers()
        assert [t["timer_id"] for t in page] == ["reminder:1"]
        assert client.cancel_timer("reminder:1")["cancelled"] is True
        with pytest.raises(GeleeApiError) as excinfo:
            client.cancel_timer("reminder:1")
        assert excinfo.value.code == "TIMER_NOT_FOUND"
        assert excinfo.value.status == 404

    def test_schedule_timer_validates_input(self, client):
        with pytest.raises(GeleeApiError) as excinfo:
            client.schedule_timer("t", fire_at="not-a-date")
        assert excinfo.value.code == "SCHEDULER_REQUEST_INVALID"
        with pytest.raises(GeleeApiError):
            client.schedule_timer("t")  # neither fire_at nor delay

    def test_timers_are_paginated(self, client):
        for index in range(25):
            client.schedule_timer("t:{:02d}".format(index),
                                  delay_seconds=60 + index)
        page = client.list_timers(page_size=10)
        assert len(page.items) == 10
        assert page.next_page_token is not None
        collected = list(client.iter_timers(page_size=10))
        assert len(collected) == 25
        # Soonest first by default.
        assert collected[0]["timer_id"] == "t:00"

    def test_reserved_timer_namespaces_are_rejected(self, client):
        """Clients must not replace internal deadline/retry/maintenance
        timers — the id is the idempotency key."""
        for timer_id in ("deadline:inst-1", "retry:inst-1:c1",
                         "maintenance:checkpoint"):
            with pytest.raises(GeleeApiError) as excinfo:
                client.schedule_timer(timer_id, delay_seconds=60)
            assert excinfo.value.code == "SCHEDULER_REQUEST_INVALID"

    def test_non_dict_payload_is_a_400(self, client):
        with pytest.raises(GeleeApiError) as excinfo:
            client.schedule_timer("t", delay_seconds=60, payload="oops")
        assert excinfo.value.code == "SCHEDULER_REQUEST_INVALID"
        assert excinfo.value.status == 400

    def test_reserved_timer_kinds_are_rejected(self, client):
        """The deadline/retry/maintenance handlers run privileged
        operations; clients must not route timers into them."""
        for kind in ("deadline", "retry", "maintenance"):
            with pytest.raises(GeleeApiError) as excinfo:
                client.schedule_timer("mine", delay_seconds=60, kind=kind)
            assert excinfo.value.code == "SCHEDULER_REQUEST_INVALID"

    def test_internal_timers_cannot_be_cancelled_over_the_api(self, client):
        model = deadline_model(days=2.0)
        client._service.manager.publish_model(model, actor="alice")
        instance = start_instance(client._service.environment,
                                  client._service.manager, model)
        timer_id = deadline_timer_id(instance.instance_id)
        with pytest.raises(GeleeApiError) as excinfo:
            client.cancel_timer(timer_id)
        assert excinfo.value.code == "SCHEDULER_REQUEST_INVALID"
        assert client._service.scheduler.timers.get(timer_id) is not None

    def test_system_actor_cannot_be_impersonated_over_the_transport(self):
        """Where the scheduler actor holds an elevated grant (policy-enabled
        deployment), the wire must refuse requests declaring it; without a
        policy the name is not special and stays usable."""
        from repro.accesscontrol import AccessPolicy, UserDirectory

        directory = UserDirectory()
        directory.register_many("alice")
        policy = AccessPolicy(directory)
        policy.grant_manager("alice")
        service = GeleeService(clock=SimulatedClock(), policy=policy)
        client = GeleeClient.in_process(router=RestRouter(service), actor="alice")
        with pytest.raises(GeleeApiError) as excinfo:
            client.call("GET", "/v2/instances", actor="scheduler")
        assert excinfo.value.code == "PERMISSION_DENIED"
        assert excinfo.value.status == 403
        # No policy => no grant => the actor name is an ordinary one.
        plain = GeleeClient.in_process(
            router=RestRouter(GeleeService(clock=SimulatedClock())),
            actor="scheduler")
        assert plain.list_instances().items == []

    def test_scheduler_status_and_tick_over_the_api(self, client):
        client.schedule_timer("due", delay_seconds=0)
        status = client.scheduler_status()
        assert status["enabled"] is True
        assert status["timers"]["pending"] == 1
        result = client.scheduler_tick()
        assert result["fired"] == 1
        assert result["firings"][0]["timer"]["timer_id"] == "due"
        assert client.scheduler_status()["timers"]["pending"] == 0

    def test_overdue_instances_escalate_via_the_api_without_polling(self, client):
        model = deadline_model(days=1.0, escalation="advance")
        client._service.manager.publish_model(model, actor="alice")
        adapter = client._service.environment.adapter("Google Doc")
        ids = []
        for index in range(6):
            resource = adapter.create_resource("doc {}".format(index), owner="alice")
            created = client.create_instance(model.uri, resource.to_dict(),
                                             owner="alice")
            client.start(created["instance_id"])
            ids.append(created["instance_id"])
        rollup = client.monitoring_deadlines()
        assert rollup["with_deadline"] == 6
        assert rollup["overdue"] == 0
        assert rollup["pending_deadline_timers"] == 6
        client._clock.advance(days=2)
        assert client.monitoring_deadlines()["overdue"] == 6
        result = client.scheduler_tick()
        assert result["fired"] == 6
        for instance_id in ids:
            assert client.instance(instance_id)["current_phase_id"] == "review"
        rollup = client.monitoring_deadlines()
        assert rollup["overdue"] == 0
        assert rollup["escalated"] == 6
        assert rollup["escalations_fired"] == 6
        summary = client.monitoring_summary()
        assert summary["escalated"] == 6
        stats = client.runtime_stats()
        assert stats["scheduler_enabled"] is True

    def test_scheduler_escalates_under_a_closed_world_policy(self):
        """The scheduler actor is a system principal: a closed-world
        AccessPolicy must not turn every escalation into a retry loop."""
        from repro.accesscontrol import AccessPolicy, UserDirectory

        clock = SimulatedClock()
        directory = UserDirectory()
        directory.register_many("alice")
        policy = AccessPolicy(directory)  # closed world
        policy.grant_manager("alice")
        service = GeleeService(clock=clock, policy=policy)
        model = deadline_model(days=1.0, escalation="advance")
        service.manager.publish_model(model, actor="alice")
        instance = start_instance(service.environment, service.manager, model)
        clock.advance(days=1)
        result = service.scheduler_tick()
        assert result["fired"] == 1 and result["firings"][0]["handled"] is True
        status = service.scheduler_status()
        assert status["escalations"] == 1
        assert status["escalation_failures"] == 0
        assert service.manager.instance(
            instance.instance_id).current_phase_id == "review"

    def test_disabled_scheduler(self):
        service = GeleeService(clock=SimulatedClock(),
                               scheduler=SchedulerConfig(enabled=False))
        model = deadline_model()
        service.manager.publish_model(model, actor="x")
        start_instance(service.environment, service.manager, model)
        assert service.scheduler.timers.pending_count == 0  # nothing armed
        assert service.scheduler_tick()["fired"] == 0
        assert service.scheduler_status()["enabled"] is False


# ================================================================== durability
class TestTimerDurability:
    def _populate(self, service, clock, instance_count=12):
        model = deadline_model(days=2.0, escalation="advance")
        service.manager.publish_model(model, actor="coordinator")
        adapter = service.environment.adapter("Google Doc")
        ids = []
        for index in range(instance_count):
            resource = adapter.create_resource("doc {}".format(index), owner="alice")
            created = service.create_instance(model.uri, resource.to_dict(),
                                              owner="alice", actor="alice")
            service.start_instance(created["instance_id"], actor="alice")
            ids.append(created["instance_id"])
        return model, ids

    @pytest.mark.parametrize("backend", ["file", "sqlite"])
    def test_pending_timers_survive_kill_and_restart(self, tmp_path, backend):
        config = PersistenceConfig(str(tmp_path), backend=backend)
        clock = SimulatedClock()
        service = GeleeService(clock=clock, shard_count=4, persistence=config)
        model, ids = self._populate(service, clock)
        # A checkpoint covers half the story; later instances live only in
        # the journal tail, so recovery must merge manifest + replay.
        service.persistence_checkpoint()
        adapter = service.environment.adapter("Google Doc")
        late = service.create_instance(
            model.uri, adapter.create_resource("late doc", owner="alice").to_dict(),
            owner="alice", actor="alice")
        service.start_instance(late["instance_id"], actor="alice")
        ids.append(late["instance_id"])
        pre_crash = {t.timer_id: t.fire_at
                     for t in service.scheduler.timers.pending(kind="deadline")}
        assert len(pre_crash) == len(ids)
        service.close()
        del service  # the crash

        revived = GeleeService(clock=SimulatedClock(clock.now()), shard_count=4,
                               persistence=config)
        assert revived.recovery_report.timers_restored + \
            revived.recovery_report.timer_records_replayed > 0
        restored = {t.timer_id: t.fire_at
                    for t in revived.scheduler.timers.pending(kind="deadline")}
        assert restored == pre_crash
        # ...and the restored timers actually drive escalation.
        revived.scheduler.clock.advance(days=3)
        result = revived.scheduler_tick()
        assert result["fired"] == len(ids)
        for instance_id in ids:
            assert revived.instance_detail(instance_id)["current_phase_id"] == "review"
        revived.close()

    def test_retry_state_survives_restart(self, tmp_path):
        config = PersistenceConfig(str(tmp_path), backend="sqlite")
        clock = SimulatedClock()
        scheduler_config = SchedulerConfig(retry_initial_delay_seconds=60,
                                           retry_backoff_factor=2.0,
                                           retry_max_attempts=5)
        service = GeleeService(clock=clock, persistence=config,
                               scheduler=scheduler_config)
        state = register_flaky_action(service.environment, failures=2)
        builder = LifecycleBuilder("Flaky durable lifecycle")
        builder.phase("Work")
        builder.terminal("End")
        builder.flow("Work", "End")
        builder.action("Work", FLAKY_URI, "Flaky call")
        model = builder.build()
        service.manager.publish_model(model, actor="x")
        instance = start_instance(service.environment, service.manager, model)
        call_id = model.phase("work").actions[0].call_id
        # First retry fails too: attempt counter now 2, next delay 120s.
        clock.advance(seconds=60)
        service.scheduler_tick()
        pre = service.scheduler.timers.get(
            retry_timer_id(instance.instance_id, call_id))
        assert pre.payload["attempt"] == 2
        service.close()

        revived = GeleeService(clock=SimulatedClock(clock.now()),
                               persistence=config, scheduler=scheduler_config)
        # The flaky implementation is part of the *environment*, not durable
        # state — re-register it as a deployment would on boot.
        revived_state = register_flaky_action(revived.environment, failures=0)
        timer = revived.scheduler.timers.get(
            retry_timer_id(instance.instance_id, call_id))
        assert timer is not None
        assert timer.fire_at == pre.fire_at
        assert timer.payload["attempt"] == 2
        assert revived.scheduler_status()["retry_states"] == 1
        revived.scheduler.clock.advance(seconds=120)
        revived.scheduler_tick()
        assert revived_state["calls"] == 1  # the restored timer re-invoked
        assert revived.scheduler_status()["retry_states"] == 0
        invocations = revived.instance_detail(instance.instance_id)["visits"][-1][
            "invocations"]
        assert invocations[-1]["status"] == "completed"
        revived.close()

    def test_cancelled_timers_stay_cancelled_after_restart(self, tmp_path):
        config = PersistenceConfig(str(tmp_path), backend="file")
        clock = SimulatedClock()
        service = GeleeService(clock=clock, persistence=config)
        service.schedule_timer("keep", delay_seconds=3600)
        service.schedule_timer("drop", delay_seconds=3600)
        service.cancel_timer("drop")
        service.close()
        revived = GeleeService(clock=SimulatedClock(clock.now()),
                               persistence=config)
        pending = {t.timer_id for t in revived.scheduler.timers.pending()}
        assert pending == {"keep"}
        revived.close()

    def test_orphaned_maintenance_timers_are_pruned_on_restart(self, tmp_path):
        """Restarting without a job's config must not leave its recovered
        timer firing into the void forever."""
        config = PersistenceConfig(str(tmp_path), backend="file")
        clock = SimulatedClock()
        service = GeleeService(clock=clock, persistence=config,
                               scheduler=SchedulerConfig(
                                   checkpoint_interval_seconds=3600))
        assert service.scheduler.timers.get("maintenance:checkpoint") is not None
        service.close()
        revived = GeleeService(clock=SimulatedClock(clock.now()),
                               persistence=config)  # checkpoint job NOT configured
        assert revived.scheduler.timers.get("maintenance:checkpoint") is None
        revived.scheduler.clock.advance(hours=2)
        assert revived.scheduler_tick()["fired"] == 0
        revived.close()

    def test_changed_maintenance_interval_wins_over_restored_timer(self, tmp_path):
        config = PersistenceConfig(str(tmp_path), backend="file")
        clock = SimulatedClock()
        service = GeleeService(clock=clock, persistence=config,
                               scheduler=SchedulerConfig(
                                   checkpoint_interval_seconds=3600))
        service.close()
        revived = GeleeService(clock=SimulatedClock(clock.now()),
                               persistence=config,
                               scheduler=SchedulerConfig(
                                   checkpoint_interval_seconds=60))
        timer = revived.scheduler.timers.get("maintenance:checkpoint")
        assert timer.interval_seconds == 60  # config is the source of truth
        revived.close()

    def test_maintenance_schedule_survives_restart_without_reset(self, tmp_path):
        config = PersistenceConfig(str(tmp_path), backend="file")
        clock = SimulatedClock()
        scheduler_config = SchedulerConfig(checkpoint_interval_seconds=3600)
        service = GeleeService(clock=clock, persistence=config,
                               scheduler=scheduler_config)
        pre = service.scheduler.timers.get("maintenance:checkpoint")
        clock.advance(minutes=45)  # partway through the period
        service.close()
        revived = GeleeService(clock=SimulatedClock(clock.now()),
                               persistence=config, scheduler=scheduler_config)
        timer = revived.scheduler.timers.get("maintenance:checkpoint")
        # register_job kept the recovered schedule: still due 15 minutes
        # from "now", not a full hour.
        assert timer.fire_at == pre.fire_at
        revived.scheduler.clock.advance(minutes=15)
        revived.scheduler_tick()
        assert revived.scheduler_status()["maintenance"]["checkpoint"]["runs"] == 1
        revived.close()
