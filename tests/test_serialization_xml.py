"""Tests for the Table I (lifecycle) and Table II (action type) XML codecs."""

import pytest

from repro.actions.definitions import ActionType
from repro.errors import SerializationError
from repro.model import LifecycleBuilder
from repro.model.parameters import BindingTime, ParameterDefinition
from repro.serialization import (
    action_type_from_xml,
    action_type_to_xml,
    lifecycle_from_xml,
    lifecycle_to_xml,
)
from repro.templates import eu_deliverable_lifecycle

#: A document following the paper's Table I example structure.
PAPER_TABLE_I = """
<process uri="http://www.liquidpub.org/lifecycles/deliverable">
  <name>EU Project deliverable lifecycle</name>
  <version_info>
    <version_number>1.0</version_number>
    <created_by>lpAdmin</created_by>
    <creation_date>08/07/2008</creation_date>
  </version_info>
  <resource>
    <resource_type>MediaWiki page</resource_type>
  </resource>
  <phases_list>
    <phase id="elaboration">
      <name>Elaboration</name>
    </phase>
    <phase id="internalreview">
      <name>Internal review</name>
      <action_call>
        <action>
          <name>Change access rights</name>
          <uri>http://www.liquidpub.org/a/chr</uri>
          <parameters>
            <param id="visibility">team</param>
          </parameters>
        </action>
      </action_call>
    </phase>
    <phase id="finalassembly">
      <name>Final assembly</name>
    </phase>
  </phases_list>
  <transition_list>
    <transition><from>BEGIN</from><to>elaboration</to></transition>
    <transition><from>elaboration</from><to>internalreview</to></transition>
    <transition><from>internalreview</from><to>finalassembly</to></transition>
  </transition_list>
</process>
"""

#: A document following the paper's Table II example structure.
PAPER_TABLE_II = """
<action_type uri="http://www.liquidpub.org/a/chr">
  <name>Change Access Rights</name>
  <version_info>
    <version_number>1.0</version_number>
    <created_by>lpAdmin</created_by>
    <creation_date>08/07/2008</creation_date>
  </version_info>
  <parameters>
    <param bindingTime="inst" required="yes">
      <name>visibility</name>
      <value></value>
    </param>
    <param bindingTime="any" required="no">
      <name>editors</name>
      <value></value>
    </param>
  </parameters>
</action_type>
"""


class TestLifecycleXmlParsing:
    def test_parses_paper_example(self):
        model = lifecycle_from_xml(PAPER_TABLE_I)
        assert model.name == "EU Project deliverable lifecycle"
        assert model.uri == "http://www.liquidpub.org/lifecycles/deliverable"
        assert model.version.created_by == "lpAdmin"
        assert model.version.creation_date.isoformat() == "2008-07-08"
        assert model.suggested_resource_types == ["MediaWiki page"]
        assert model.phase_ids == ["elaboration", "internalreview", "finalassembly"]
        call = model.phase("internalreview").actions[0]
        assert call.action_uri == "http://www.liquidpub.org/a/chr"
        assert call.parameters == {"visibility": "team"}
        assert model.is_modeled_move(None, "elaboration")

    def test_rejects_malformed_xml(self):
        with pytest.raises(SerializationError):
            lifecycle_from_xml("<process><name>X</name>")

    def test_rejects_wrong_root(self):
        with pytest.raises(SerializationError):
            lifecycle_from_xml("<workflow/>")

    def test_rejects_missing_name(self):
        with pytest.raises(SerializationError):
            lifecycle_from_xml("<process uri='u'><phases_list/></process>")

    def test_rejects_phase_without_id(self):
        document = "<process><name>X</name><phases_list><phase><name>A</name></phase></phases_list></process>"
        with pytest.raises(SerializationError):
            lifecycle_from_xml(document)

    def test_rejects_action_without_uri(self):
        document = (
            "<process><name>X</name><phases_list><phase id='a'>"
            "<action_call><action><name>N</name></action></action_call>"
            "</phase></phases_list></process>"
        )
        with pytest.raises(SerializationError):
            lifecycle_from_xml(document)

    def test_rejects_transition_without_endpoints(self):
        document = (
            "<process><name>X</name><phases_list><phase id='a'/></phases_list>"
            "<transition_list><transition><from>a</from></transition></transition_list>"
            "</process>"
        )
        with pytest.raises(SerializationError):
            lifecycle_from_xml(document)


class TestLifecycleXmlRoundTrip:
    def test_fig1_round_trip_preserves_structure(self):
        model = eu_deliverable_lifecycle()
        restored = lifecycle_from_xml(lifecycle_to_xml(model))
        assert restored.name == model.name
        assert restored.phase_ids == model.phase_ids
        assert len(restored.transitions) == len(model.transitions)
        assert restored.version.version_number == model.version.version_number
        assert restored.suggested_resource_types == model.suggested_resource_types
        for phase in model.phases:
            restored_phase = restored.phase(phase.phase_id)
            assert [c.action_uri for c in restored_phase.actions] == \
                [c.action_uri for c in phase.actions]
            assert restored_phase.terminal == phase.terminal

    def test_round_trip_is_stable(self):
        model = eu_deliverable_lifecycle()
        first = lifecycle_to_xml(lifecycle_from_xml(lifecycle_to_xml(model)))
        second = lifecycle_to_xml(lifecycle_from_xml(first))
        assert first == second

    def test_deadline_round_trip(self):
        model = (
            LifecycleBuilder("X").phase("A", deadline_days=5).terminal("B")
            .flow("A", "B").build()
        )
        restored = lifecycle_from_xml(lifecycle_to_xml(model))
        assert restored.phase("a").deadline.days == 5

    def test_terminal_flag_round_trip(self):
        model = LifecycleBuilder("X").phase("A").terminal("B").flow("A", "B").build()
        restored = lifecycle_from_xml(lifecycle_to_xml(model))
        assert restored.phase("b").terminal


class TestActionTypeXml:
    def test_parses_paper_example(self):
        action_type = action_type_from_xml(PAPER_TABLE_II)
        assert action_type.uri == "http://www.liquidpub.org/a/chr"
        assert action_type.name == "Change Access Rights"
        visibility = action_type.parameter("visibility")
        assert visibility.required
        assert visibility.binding_time is BindingTime.INSTANTIATION
        editors = action_type.parameter("editors")
        assert not editors.required
        assert editors.binding_time is BindingTime.ANY

    def test_template_placeholder_binding_treated_as_any(self):
        document = PAPER_TABLE_II.replace('bindingTime="inst"', 'bindingTime="[def|inst|call|any]"')
        action_type = action_type_from_xml(document)
        assert action_type.parameter("visibility").binding_time is BindingTime.ANY

    def test_round_trip(self):
        action_type = ActionType(
            uri="urn:gelee:test",
            name="Test Action",
            category="testing",
            description="does things",
            parameters=[
                ParameterDefinition("who", BindingTime.INSTANTIATION, required=True),
                ParameterDefinition("note", BindingTime.ANY, default="hello"),
            ],
        )
        restored = action_type_from_xml(action_type_to_xml(action_type))
        assert restored.uri == action_type.uri
        assert restored.category == "testing"
        assert restored.parameter("who").required
        assert restored.parameter("note").default == "hello"

    def test_rejects_wrong_root(self):
        with pytest.raises(SerializationError):
            action_type_from_xml("<action/>")

    def test_rejects_missing_uri(self):
        with pytest.raises(SerializationError):
            action_type_from_xml("<action_type><name>X</name></action_type>")

    def test_rejects_param_without_name(self):
        document = (
            "<action_type uri='u'><name>X</name><parameters>"
            "<param bindingTime='any' required='no'><value/></param>"
            "</parameters></action_type>"
        )
        with pytest.raises(SerializationError):
            action_type_from_xml(document)
