"""Tests for the SOAP facade and the localhost HTTP transport."""

import pytest

from repro.serialization import lifecycle_to_xml
from repro.service import (
    GeleeHttpClient,
    GeleeHttpServer,
    GeleeService,
    RestRouter,
    SoapEndpoint,
    soap_envelope,
    parse_soap_envelope,
)
from repro.service.soap import extract_fault
from repro.templates import eu_deliverable_lifecycle


@pytest.fixture
def service(clock):
    from repro.plugins import build_standard_environment

    return GeleeService(environment=build_standard_environment(clock=clock), clock=clock)


@pytest.fixture
def soap(service):
    return SoapEndpoint(service)


class TestEnvelopes:
    def test_round_trip(self):
        envelope = soap_envelope("StartInstance", {"instance_id": "i1", "actor": "alice"})
        operation, parameters = parse_soap_envelope(envelope)
        assert operation == "StartInstance"
        assert parameters == {"instance_id": "i1", "actor": "alice"}

    def test_malformed_envelope_rejected(self):
        from repro.errors import SerializationError

        with pytest.raises(SerializationError):
            parse_soap_envelope("<Envelope><Body>")
        with pytest.raises(SerializationError):
            parse_soap_envelope("<NotEnvelope/>")
        with pytest.raises(SerializationError):
            parse_soap_envelope("<Envelope><Body/></Envelope>")


class TestSoapOperations:
    def test_full_flow_over_soap(self, service, soap):
        # publish a model
        model = eu_deliverable_lifecycle()
        response = soap.handle(soap_envelope("PublishModel", {
            "xml": lifecycle_to_xml(model), "actor": "coordinator"}))
        assert extract_fault(response) is None

        # create + start + advance an instance
        descriptor = service.environment.adapter("Google Doc").create_resource(
            "D1.1", owner="alice")
        created = soap.handle(soap_envelope("CreateInstance", {
            "model_uri": model.uri,
            "resource_uri": descriptor.uri,
            "resource_type": "Google Doc",
            "owner": "alice",
        }))
        assert extract_fault(created) is None
        instance_id = service.manager.instances()[0].instance_id
        assert extract_fault(soap.handle(soap_envelope("StartInstance", {
            "instance_id": instance_id, "actor": "alice"}))) is None
        assert extract_fault(soap.handle(soap_envelope("AdvanceInstance", {
            "instance_id": instance_id, "actor": "alice",
            "to_phase_id": "internalreview"}))) is None
        summary = soap.handle(soap_envelope("MonitoringSummary", {}))
        assert extract_fault(summary) is None
        assert "<total>1</total>" in summary

    def test_unknown_operation_faults(self, soap):
        response = soap.handle(soap_envelope("Nonexistent", {}))
        assert extract_fault(response) is not None

    def test_missing_parameter_faults(self, soap):
        response = soap.handle(soap_envelope("StartInstance", {"actor": "alice"}))
        assert "missing parameter" in extract_fault(response)

    def test_kernel_error_faults(self, soap):
        response = soap.handle(soap_envelope("InstanceDetail", {"instance_id": "inst-x"}))
        assert extract_fault(response) is not None

    def test_operations_listing(self, soap):
        assert "PublishModel" in soap.operations()
        assert "MonitoringSummary" in soap.operations()


class TestHttpTransport:
    def test_end_to_end_over_http(self, service):
        router = RestRouter(service)
        with GeleeHttpServer(router) as server:
            coordinator = GeleeHttpClient(server.host, server.port, actor="coordinator")
            owner = GeleeHttpClient(server.host, server.port, actor="alice")

            published = coordinator.post("/templates/eu-deliverable/publish")
            assert published.ok
            model_uri = published.body["uri"]

            descriptor = service.environment.adapter("Google Doc").create_resource(
                "D1.1", owner="alice")
            created = owner.post("/instances", body={
                "model_uri": model_uri,
                "resource": descriptor.to_dict(),
                "owner": "alice",
            })
            assert created.ok
            instance_id = created.body["instance_id"]

            assert owner.post("/instances/{}/start".format(instance_id)).ok
            advanced = owner.post("/instances/{}/advance".format(instance_id),
                                  body={"to_phase_id": "internalreview"})
            assert advanced.ok

            widget = coordinator.get("/instances/{}/widget".format(instance_id),
                                     viewer="coordinator")
            assert widget.ok
            assert widget.body["current_phase"] == "internalreview"

            table = coordinator.get("/monitoring/table")
            assert len(table.body) == 1

    def test_http_error_codes_propagate(self, service):
        router = RestRouter(service)
        with GeleeHttpServer(router) as server:
            client = GeleeHttpClient(server.host, server.port, actor="alice")
            assert client.get("/instances/inst-missing").status == 404
            assert client.get("/nope").status == 404
            assert client.post("/instances", body={}).status == 400

    def test_actor_header_and_query_agree(self, service):
        router = RestRouter(service)
        with GeleeHttpServer(router) as server:
            anonymous = GeleeHttpClient(server.host, server.port)
            published = anonymous.post("/templates/eu-deliverable/publish", actor="pm")
            assert published.ok
