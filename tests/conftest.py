"""Shared fixtures for the test suite."""

import random

import pytest

from repro.accesscontrol import AccessPolicy, Role, UserDirectory
from repro.clock import SimulatedClock
from repro.plugins import build_standard_environment
from repro.runtime import LifecycleManager
from repro.templates import eu_deliverable_lifecycle


@pytest.fixture
def clock():
    """A simulated clock starting at a fixed date."""
    return SimulatedClock()


@pytest.fixture
def environment(clock):
    """The fully wired standard environment on a simulated clock."""
    return build_standard_environment(clock=clock)


@pytest.fixture
def manager(environment, clock):
    """A lifecycle manager without access control (single-user mode)."""
    return LifecycleManager(environment, clock=clock, rng=random.Random(42))


@pytest.fixture
def eu_model(manager):
    """The Fig. 1 lifecycle, published on the manager."""
    model = eu_deliverable_lifecycle()
    manager.publish_model(model, actor="coordinator")
    return model


@pytest.fixture
def google_doc(environment):
    """A deliverable drafted as a simulated Google Doc."""
    adapter = environment.adapter("Google Doc")
    return adapter.create_resource("D1.1 State of the Art", owner="alice",
                                   content="Initial outline.")


@pytest.fixture
def wiki_page(environment):
    """A deliverable drafted as a simulated MediaWiki page."""
    adapter = environment.adapter("MediaWiki page")
    return adapter.create_resource("D2.3 Architecture", owner="bob",
                                   content="== Architecture ==")


@pytest.fixture
def eu_instance(manager, eu_model, google_doc):
    """An EU-deliverable instance on a Google Doc, with reviewers configured."""
    reviewers = {"reviewers": ["bob", "carol"]}
    parameters = {
        call.call_id: dict(reviewers)
        for phase_id, call in eu_model.action_calls()
        if "notify" in call.action_uri and phase_id == "internalreview"
    }
    return manager.instantiate(eu_model.uri, google_doc, owner="alice",
                               instantiation_parameters=parameters)


@pytest.fixture
def directory():
    """A user directory with a coordinator, an owner and a stakeholder."""
    directory = UserDirectory()
    directory.register_many("coordinator", "alice", "bob", "eve")
    directory.assign("coordinator", Role.LIFECYCLE_MANAGER)
    directory.assign("eve", Role.STAKEHOLDER)
    return directory


@pytest.fixture
def policy(directory):
    return AccessPolicy(directory)


@pytest.fixture
def secured_manager(environment, clock, policy):
    """A manager that enforces the access policy."""
    return LifecycleManager(environment, clock=clock, access_policy=policy,
                            rng=random.Random(42))


@pytest.fixture(autouse=True)
def fresh_loggers():
    """Drop the process-wide logger cache around every test.

    ``get_logger`` memoises emitters by component, so a test that
    configures a sink or level would otherwise leak it into every later
    test that asks for the same component.
    """
    from repro.telemetry import reset_loggers

    reset_loggers()
    yield
    reset_loggers()
