"""Tests for :mod:`repro.persistence`: journal, snapshots, stores, recovery.

The centrepiece is the kill-and-restart round trip required by the durable
runtime: create >= 1k instances across >= 4 shards with persistence enabled,
drop every in-memory structure, recover from snapshot + journal (file and
SQLite backends) and verify that phases, statuses, secondary-index query
results and the execution-log contents are identical to the pre-crash state.
"""

import json
import os

import pytest

from repro.actions import library
from repro.clock import SimulatedClock
from repro.errors import ConcurrencyError, ServiceError, StorageError
from repro.events import BatchingEventBus, Event
from repro.model import LifecycleBuilder
from repro.persistence import (
    FileStore,
    Journal,
    MemoryStore,
    PersistenceConfig,
    PersistenceCoordinator,
    SQLiteStore,
    SnapshotManifest,
    SnapshotStore,
    document_for,
    recover_into,
)
from repro.plugins import build_standard_environment
from repro.runtime import LifecycleManager, ShardedLifecycleManager
from repro.service.api import GeleeService
from repro.service.rest import RestRouter
from repro.storage import ExecutionLog


def bench_model(name="Persistence lifecycle"):
    builder = LifecycleBuilder(name)
    builder.phase("Work")
    builder.phase("Review")
    builder.terminal("End")
    builder.flow("Work", "Review", "End")
    builder.action("Work", library.CHANGE_ACCESS_RIGHTS, "Change access rights",
                   visibility="team")
    return builder.build()


def build_runtime(shard_count=4):
    clock = SimulatedClock()
    environment = build_standard_environment(clock=clock)
    bus = BatchingEventBus(max_batch=64)
    log = ExecutionLog(bus=bus)
    manager = ShardedLifecycleManager(environment, shard_count=shard_count,
                                      clock=clock, bus=bus, rng_seed=0)
    return environment, bus, log, manager


# ================================================================== journal
class TestJournal:
    def _ts(self):
        return SimulatedClock().now()

    def test_append_read_round_trip(self, tmp_path):
        journal = Journal(str(tmp_path), fsync="never")
        ts = self._ts()
        journal.append("a.one", ts, "s1", actor="alice", payload={"n": 1})
        journal.append("a.two", ts, "s2", state={"model": {"uri": "m"}})
        records = list(journal.read())
        assert [r.seq for r in records] == [1, 2]
        assert records[0].kind == "a.one"
        assert records[0].actor == "alice"
        assert records[0].payload == {"n": 1}
        assert records[0].state is None
        assert records[1].state == {"model": {"uri": "m"}}
        assert journal.last_seq == 2

    def test_read_after_seq(self, tmp_path):
        journal = Journal(str(tmp_path), fsync="never")
        ts = self._ts()
        for index in range(10):
            journal.append("k", ts, "s")
        assert [r.seq for r in journal.read(after_seq=7)] == [8, 9, 10]
        assert list(journal.read(after_seq=10)) == []

    def test_segment_rotation_and_truncation(self, tmp_path):
        journal = Journal(str(tmp_path), fsync="never", segment_max_records=5)
        ts = self._ts()
        for index in range(17):
            journal.append("k", ts, "s")
        assert len(journal.segment_files()) == 4
        # Everything is still readable across segments.
        assert [r.seq for r in journal.read()] == list(range(1, 18))
        # Truncating through seq 10 removes the two fully-covered segments.
        removed = journal.truncate_through(10)
        assert len(removed) == 2
        assert [r.seq for r in journal.read()] == list(range(11, 18))
        # Replay from a snapshot position still works after truncation.
        assert [r.seq for r in journal.read(after_seq=12)] == list(range(13, 18))

    def test_reopen_continues_sequence(self, tmp_path):
        journal = Journal(str(tmp_path), fsync="never")
        ts = self._ts()
        for index in range(3):
            journal.append("k", ts, "s")
        journal.close()
        reopened = Journal(str(tmp_path), fsync="never")
        assert reopened.last_seq == 3
        record = reopened.append("k", ts, "s")
        assert record.seq == 4
        assert [r.seq for r in reopened.read()] == [1, 2, 3, 4]

    def test_torn_tail_is_repaired_on_open(self, tmp_path):
        journal = Journal(str(tmp_path), fsync="never")
        ts = self._ts()
        for index in range(3):
            journal.append("k", ts, "s")
        journal.close()
        # Simulate a crash mid-append: a half-written final line.
        segment = os.path.join(str(tmp_path), journal.segment_files()[-1])
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 4, "kind": "k", "times')
        reopened = Journal(str(tmp_path), fsync="never")
        # The fragment never committed: seq 4 is reused and readable.
        assert reopened.last_seq == 3
        record = reopened.append("k2", ts, "s")
        assert record.seq == 4
        records = list(reopened.read())
        assert [r.seq for r in records] == [1, 2, 3, 4]
        assert records[-1].kind == "k2"

    def test_fsync_policies(self, tmp_path):
        for policy in ("always", "interval", "never"):
            journal = Journal(str(tmp_path / policy), fsync=policy, fsync_interval=2)
            journal.append("k", self._ts(), "s")
            journal.sync()
            journal.close()
        with pytest.raises(StorageError):
            Journal(str(tmp_path / "bad"), fsync="sometimes")

    def test_corrupt_record_before_valid_data_refuses_repair(self, tmp_path):
        """A torn tail is repairable; an undecodable record *followed by
        valid records* is corruption — truncating would destroy committed
        data, so reopening must raise instead."""
        journal = Journal(str(tmp_path), fsync="never")
        ts = self._ts()
        for index in range(3):
            journal.append("k", ts, "s")
        journal.close()
        segment = os.path.join(str(tmp_path), journal.segment_files()[-1])
        with open(segment, encoding="utf-8") as handle:
            lines = handle.readlines()
        lines[1] = "#corrupt#" + lines[1]
        with open(segment, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.raises(StorageError):
            Journal(str(tmp_path), fsync="never")

    def test_explicit_sync_overrides_never_policy(self, tmp_path, monkeypatch):
        synced = []
        monkeypatch.setattr("repro.persistence.journal.os.fsync",
                            lambda fd: synced.append(fd))
        journal = Journal(str(tmp_path), fsync="never")
        journal.append("k", self._ts(), "s")
        assert synced == []  # the policy suppresses per-append fsyncs...
        journal.sync()
        # ...but never an explicit request: the segment file is fsynced and,
        # first time for this segment, so is its directory entry.
        assert len(synced) == 2

    def test_append_event(self, tmp_path):
        journal = Journal(str(tmp_path), fsync="never")
        event = Event(kind="instance.created", timestamp=self._ts(),
                      subject_id="inst-1", actor="alice", payload={"a": 1})
        journal.append_event(event)
        record = next(journal.read())
        assert record.kind == "instance.created"
        assert record.subject_id == "inst-1"
        assert record.event_timestamp == event.timestamp


# ========================================================== long-poll waits
class TestJournalWaitForSeq:
    """Edge cases of the long-poll primitive replication streams park on."""

    def _ts(self):
        return SimulatedClock().now()

    def test_timeout_expires_cleanly_and_journal_stays_usable(self, tmp_path):
        journal = Journal(str(tmp_path), fsync="never")
        journal.append("k", self._ts(), "s1")
        import time
        started = time.monotonic()
        head = journal.wait_for_seq(10, timeout=0.05)
        elapsed = time.monotonic() - started
        # Returns the *current* head (caller distinguishes timeout from
        # data by comparing), promptly, and without poisoning the journal.
        assert head == 1
        assert 0.04 <= elapsed < 2.0
        journal.append("k", self._ts(), "s2")
        assert journal.wait_for_seq(2, timeout=0.05) == 2
        # An already-satisfied wait returns immediately, even with no
        # timeout at all.
        assert journal.wait_for_seq(1) == 2

    def test_zero_timeout_is_a_nonblocking_head_read(self, tmp_path):
        journal = Journal(str(tmp_path), fsync="never")
        journal.append("k", self._ts(), "s1")
        assert journal.wait_for_seq(99, timeout=0) == 1

    def test_wakeup_across_segment_rotation(self, tmp_path):
        """The append that satisfies the wait lands in a *new* segment; the
        waiter must still wake, and the stream must read densely across the
        boundary from its old cursor."""
        import threading

        journal = Journal(str(tmp_path), fsync="never", segment_max_records=3)
        for index in range(3):  # fills the first segment exactly
            journal.append("k", self._ts(), "s{}".format(index))
        results = {}

        def wait():
            results["head"] = journal.wait_for_seq(5, timeout=5.0)

        waiter = threading.Thread(target=wait)
        waiter.start()
        # These appends open segment two while the waiter is parked.
        journal.append("k", self._ts(), "s3")
        journal.append("k", self._ts(), "s4")
        waiter.join(timeout=5.0)
        assert not waiter.is_alive()
        assert results["head"] == 5
        assert len(journal.segment_files()) == 2
        assert [r.seq for r in journal.read(after_seq=2, strict=True)] == \
            [3, 4, 5]

    def test_explicit_rotate_does_not_wake_a_parked_waiter(self, tmp_path):
        import threading

        journal = Journal(str(tmp_path), fsync="never")
        journal.append("k", self._ts(), "s0")
        woke = threading.Event()
        results = {}

        def wait():
            results["head"] = journal.wait_for_seq(2, timeout=5.0)
            woke.set()

        waiter = threading.Thread(target=wait)
        waiter.start()
        # Rotation changes files, not the head: the waiter stays parked
        # (a spurious wake would hand the follower an empty batch).
        assert journal.rotate() is True
        assert not woke.wait(timeout=0.2)
        journal.append("k", self._ts(), "s1")
        assert woke.wait(timeout=5.0)
        assert results["head"] == 2

    def test_truncation_mid_wait_neither_wakes_nor_corrupts(self, tmp_path):
        """A checkpoint truncating old segments while a follower is parked
        must not wake it (the head did not move) — and afterwards the
        follower's *stale* cursor gets the typed staleness error while its
        live cursor keeps streaming."""
        import threading

        from repro.errors import JournalTruncatedError

        journal = Journal(str(tmp_path), fsync="never", segment_max_records=3)
        for index in range(7):  # segments [1..3], [4..6], [7..]
            journal.append("k", self._ts(), "s{}".format(index))
        woke = threading.Event()
        results = {}

        def wait():
            results["head"] = journal.wait_for_seq(8, timeout=5.0)
            woke.set()

        waiter = threading.Thread(target=wait)
        waiter.start()
        removed = journal.truncate_through(6)
        assert len(removed) == 2
        assert not woke.wait(timeout=0.2), \
            "truncation must not wake a waiter — the head did not advance"
        journal.append("k", self._ts(), "s7")
        assert woke.wait(timeout=5.0)
        assert results["head"] == 8
        # The live cursor resumes exactly; the truncated-away one is typed.
        assert [r.seq for r in journal.read(after_seq=6, strict=True)] == \
            [7, 8]
        with pytest.raises(JournalTruncatedError) as excinfo:
            list(journal.read(after_seq=2, strict=True))
        assert excinfo.value.oldest_available == 7


# ================================================================= snapshots
class TestSnapshotStore:
    def test_publish_latest_and_retention(self, tmp_path):
        store = SnapshotStore(str(tmp_path), retain=2)
        for seq in (10, 20, 30):
            store.publish(SnapshotManifest(journal_seq=seq, taken_at="t"))
        assert store.snapshot_seqs() == [20, 30]
        assert store.latest().journal_seq == 30

    def test_empty_store(self, tmp_path):
        assert SnapshotStore(str(tmp_path)).latest() is None

    def test_corrupt_latest_falls_back(self, tmp_path):
        store = SnapshotStore(str(tmp_path), retain=5)
        store.publish(SnapshotManifest(journal_seq=1, taken_at="t"))
        store.publish(SnapshotManifest(journal_seq=2, taken_at="t"))
        # Corrupt the newest manifest in place.
        newest = sorted(p for p in os.listdir(str(tmp_path)))[-1]
        with open(os.path.join(str(tmp_path), newest), "w") as handle:
            handle.write("{not json")
        assert store.latest().journal_seq == 1


# ==================================================================== stores
@pytest.fixture(params=["memory", "file", "sqlite"])
def instance_store(request, tmp_path):
    if request.param == "memory":
        yield MemoryStore()
    elif request.param == "file":
        yield FileStore(str(tmp_path / "instances"))
    else:
        store = SQLiteStore(str(tmp_path / "instances.sqlite3"))
        yield store
        store.close()


class TestInstanceStores:
    def _document(self, instance_id, owner="alice", phase="work", status="active"):
        return {
            "instance_id": instance_id, "model_uri": "urn:m", "owner": owner,
            "resource_uri": "urn:r:" + instance_id, "phase_id": phase,
            "status": status, "journal_seq": 7, "state": {"instance_id": instance_id},
        }

    def test_upsert_get_all(self, instance_store):
        instance_store.upsert(self._document("i1"))
        instance_store.upsert(self._document("i2", owner="bob"))
        assert instance_store.count() == 2
        assert instance_store.ids() == ["i1", "i2"]
        assert instance_store.get("i1")["owner"] == "alice"
        assert instance_store.get("missing") is None
        assert [d["instance_id"] for d in instance_store.all()] == ["i1", "i2"]

    def test_upsert_replaces_and_reindexes(self, instance_store):
        instance_store.upsert(self._document("i1", phase="work"))
        instance_store.upsert(self._document("i1", phase="review", status="active"))
        assert instance_store.count() == 1
        assert instance_store.get("i1")["phase_id"] == "review"
        assert instance_store.query(phase_id="work") == []
        assert [d["instance_id"] for d in instance_store.query(phase_id="review")] == ["i1"]

    def test_indexed_queries(self, instance_store):
        for index in range(10):
            instance_store.upsert(self._document(
                "i{}".format(index),
                owner="alice" if index % 2 == 0 else "bob",
                phase="work" if index < 7 else "review",
                status="active" if index < 9 else "completed"))
        assert len(instance_store.query(owner="alice")) == 5
        assert len(instance_store.query(phase_id="review")) == 3
        assert len(instance_store.query(owner="bob", phase_id="work")) == 3
        assert len(instance_store.query(status="completed")) == 1
        with pytest.raises(StorageError):
            instance_store.query(color="red")

    def test_clear(self, instance_store):
        instance_store.upsert(self._document("i1"))
        instance_store.clear()
        assert instance_store.count() == 0
        assert instance_store.query(owner="alice") == []

    def test_document_for_shape(self):
        environment, bus, log, manager = build_runtime(shard_count=2)
        model = bench_model()
        manager.publish_model(model, actor="coordinator")
        descriptor = environment.adapter("Google Doc").create_resource(
            "doc", owner="alice")
        instance = manager.instantiate(model.uri, descriptor, owner="alice")
        manager.start(instance.instance_id, actor="alice")
        document = document_for(manager.instance(instance.instance_id), 42)
        assert document["instance_id"] == instance.instance_id
        assert document["model_uri"] == model.uri
        assert document["phase_id"] == "work"
        assert document["status"] == "active"
        assert document["journal_seq"] == 42
        # The embedded state is JSON-serializable and complete.
        json.dumps(document["state"])
        assert document["state"]["model"]["uri"] == model.uri


# =============================================================== coordinator
class TestCoordinator:
    def test_events_are_journaled_with_enrichment(self, tmp_path):
        environment, bus, log, manager = build_runtime()
        config = PersistenceConfig(str(tmp_path), backend="memory", fsync="never")
        coordinator = PersistenceCoordinator(
            manager, log, config.open_journal(), config.open_snapshots(),
            config.open_store(), bus=bus)
        model = bench_model()
        manager.publish_model(model, actor="coordinator")
        descriptor = environment.adapter("Google Doc").create_resource(
            "doc", owner="alice")
        instance = manager.instantiate(
            model.uri, descriptor, owner="alice",
            metadata={"project": "p1"}, token_owners=["bob"])
        bus.flush()
        records = {r.kind: r for r in coordinator.journal.read()}
        assert records["model.published"].state["model"]["uri"] == model.uri
        creation = records["instance.created"].state["instance"]
        assert creation["owner"] == "alice"
        assert creation["metadata"] == {"project": "p1"}
        assert "bob" in creation["token_owners"]
        assert creation["resource"]["uri"] == descriptor.uri
        assert coordinator.dirty_count >= 1
        assert instance.instance_id in {r.subject_id for r in coordinator.journal.read()}
        coordinator.close()

    def test_checkpoint_flushes_and_truncates(self, tmp_path):
        environment, bus, log, manager = build_runtime()
        config = PersistenceConfig(str(tmp_path), backend="file", fsync="never",
                                   segment_max_records=10)
        coordinator = PersistenceCoordinator(
            manager, log, config.open_journal(), config.open_snapshots(),
            config.open_store(), bus=bus)
        model = bench_model()
        manager.publish_model(model, actor="coordinator")
        adapter = environment.adapter("Google Doc")
        for index in range(8):
            descriptor = adapter.create_resource("doc {}".format(index), owner="alice")
            instance = manager.instantiate(model.uri, descriptor, owner="alice")
            manager.start(instance.instance_id, actor="alice")
        report = coordinator.checkpoint()
        assert report["instances_flushed"] == 8
        assert report["durable"] is True
        assert coordinator.store.count() == 8
        assert coordinator.dirty_count == 0
        assert coordinator.snapshots.latest().journal_seq == report["journal_seq"]
        # All fully-covered segments are gone; replay starts at the snapshot.
        assert list(coordinator.journal.read(after_seq=report["journal_seq"])) == []
        status = coordinator.status()
        assert status["enabled"] is True
        assert status["checkpoints"] == 1
        assert status["journal_records_since_snapshot"] == 0
        coordinator.close()

    def test_memory_backend_never_truncates_the_journal(self, tmp_path):
        """A RAM store cannot back a manifest's durability promise: the full
        journal must survive checkpoints, or a restart loses every
        checkpointed instance."""
        environment, bus, log, manager = build_runtime()
        config = PersistenceConfig(str(tmp_path), backend="memory", fsync="never",
                                   segment_max_records=5)
        coordinator = PersistenceCoordinator(
            manager, log, config.open_journal(), config.open_snapshots(),
            config.open_store(), bus=bus)
        model = bench_model()
        manager.publish_model(model, actor="coordinator")
        adapter = environment.adapter("Google Doc")
        for index in range(6):
            descriptor = adapter.create_resource("doc {}".format(index), owner="alice")
            manager.start(manager.instantiate(model.uri, descriptor,
                                              owner="alice").instance_id,
                          actor="alice")
        report = coordinator.checkpoint()
        assert report["durable"] is False
        assert report["snapshot_id"] is None
        assert report["segments_truncated"] == 0
        assert coordinator.snapshots.latest() is None
        expected = state_fingerprint(manager, log, model.uri)
        coordinator.close()

        # A different process (empty memory store): the journal alone
        # rebuilds everything, because nothing was ever truncated.
        environment2, bus2, log2, manager2 = build_runtime()
        recovery = recover_into(manager2, log2, config.open_journal(),
                                config.open_snapshots(), MemoryStore())
        assert recovery.instances_created_from_journal == 6
        assert state_fingerprint(manager2, log2, model.uri) == expected

    def test_journal_failures_are_counted_and_repaired_by_checkpoint(self, tmp_path):
        """A failing disk must not fail kernel operations silently: the
        coordinator counts the lost appends, surfaces them in status(), and
        a checkpoint — which flushes the (still dirty-marked) instances and
        the in-memory log — repairs the durability gap."""
        environment, bus, log, manager = build_runtime()
        config = PersistenceConfig(str(tmp_path), backend="file", fsync="never")
        coordinator = PersistenceCoordinator(
            manager, log, config.open_journal(), config.open_snapshots(),
            config.open_store(), bus=bus)
        model = bench_model()
        manager.publish_model(model, actor="coordinator")
        adapter = environment.adapter("Google Doc")

        broken = {"on": False}
        original = coordinator.journal.append_event

        def flaky_append(event, state=None):
            if broken["on"]:
                raise StorageError("disk full")
            return original(event, state=state)

        coordinator.journal.append_event = flaky_append
        broken["on"] = True
        descriptor = adapter.create_resource("doc", owner="alice")
        instance = manager.instantiate(model.uri, descriptor, owner="alice")
        manager.start(instance.instance_id, actor="alice")
        bus.flush()
        status = coordinator.status()
        assert status["journal_failures"] > 0
        assert "disk full" in status["last_journal_error"]
        # The instance is still dirty despite the failed appends...
        assert instance.instance_id in {iid for iid in coordinator._dirty}
        broken["on"] = False
        report = coordinator.checkpoint()
        assert report["journal_failures_repaired"] > 0
        assert coordinator.status()["journal_failures"] == 0
        coordinator.close()

        # ...so a restart still recovers it, from the store + manifest log.
        environment2, bus2, log2, manager2 = build_runtime()
        recover_into(manager2, log2, config.open_journal(),
                     config.open_snapshots(), config.open_store())
        recovered = manager2.instance(instance.instance_id)
        assert recovered.current_phase_id == "work"
        assert log2.count(subject_id=instance.instance_id) == \
            log.count(subject_id=instance.instance_id)

    def test_failed_flush_keeps_instances_dirty(self, tmp_path):
        """If the store flush fails, the captured dirty set must be
        re-merged: otherwise a later successful checkpoint would truncate
        the journal past mutations whose documents were never persisted."""
        environment, bus, log, manager = build_runtime()
        config = PersistenceConfig(str(tmp_path), backend="file", fsync="never")
        coordinator = PersistenceCoordinator(
            manager, log, config.open_journal(), config.open_snapshots(),
            config.open_store(), bus=bus)
        model = bench_model()
        manager.publish_model(model, actor="coordinator")
        descriptor = environment.adapter("Google Doc").create_resource(
            "doc", owner="alice")
        instance = manager.instantiate(model.uri, descriptor, owner="alice")
        bus.flush()
        assert coordinator.dirty_count == 1

        def broken_upsert(documents):
            raise StorageError("disk full")

        original = coordinator.store.upsert_many
        coordinator.store.upsert_many = broken_upsert
        with pytest.raises(StorageError):
            coordinator.checkpoint()
        assert instance.instance_id in coordinator._dirty
        assert coordinator.snapshots.latest() is None  # no manifest either
        coordinator.store.upsert_many = original
        report = coordinator.checkpoint()
        assert report["instances_flushed"] == 1
        coordinator.close()

    def test_closed_coordinator_refuses_checkpoints(self, tmp_path):
        environment, bus, log, manager = build_runtime()
        config = PersistenceConfig(str(tmp_path), backend="memory", fsync="never")
        coordinator = PersistenceCoordinator(
            manager, log, config.open_journal(), config.open_snapshots(),
            config.open_store(), bus=bus)
        coordinator.close()
        with pytest.raises(ServiceError):
            coordinator.checkpoint()

    def test_config_rejects_unknown_backend(self, tmp_path):
        with pytest.raises(StorageError):
            PersistenceConfig(str(tmp_path), backend="cassandra")


# ================================================================== recovery
def drive_workload(environment, manager, model, count=60):
    """Create ``count`` instances, progress a mix, annotate a few."""
    adapter = environment.adapter("Google Doc")
    requests = []
    for index in range(count):
        descriptor = adapter.create_resource("doc {}".format(index),
                                             owner="alice" if index % 3 else "bob")
        requests.append({"model_uri": model.uri, "resource": descriptor,
                         "owner": "alice" if index % 3 else "bob"})
    instances = manager.batch_instantiate(requests)
    ids = [instance.instance_id for instance in instances]
    manager.map_instances(ids, lambda shard, iid: shard.start(iid, actor="alice"))
    manager.map_instances(ids[: count // 2],
                          lambda shard, iid: shard.advance(iid, actor="alice",
                                                           to_phase_id="review"))
    manager.map_instances(ids[: count // 4],
                          lambda shard, iid: shard.advance(iid, actor="alice",
                                                           to_phase_id="end"))
    for iid in ids[:5]:
        manager.annotate(iid, actor="alice", text="note for {}".format(iid))
    return ids


def state_fingerprint(manager, log, model_uri):
    """Everything the acceptance criteria compare, in one comparable dict."""
    instances = manager.instances()
    return {
        "phases": {i.instance_id: i.current_phase_id for i in instances},
        "statuses": {i.instance_id: i.status.value for i in instances},
        "visits": {i.instance_id: i.visited_phase_ids() for i in instances},
        "by_phase_review": sorted(i.instance_id
                                  for i in manager.instances(phase_id="review")),
        "by_owner_bob": sorted(i.instance_id for i in manager.instances(owner="bob")),
        "by_model": len(manager.instances(model_uri=model_uri)),
        "phase_distribution": manager.phase_distribution(),
        "status_distribution": {s.value: c for s, c
                                in manager.status_distribution().items()},
        "shard_sizes": manager.shard_sizes(),
        "log": [(e.sequence, e.kind, e.subject_id, e.actor,
                 json.dumps(e.payload, sort_keys=True, default=str))
                for e in log.entries()],
    }


@pytest.mark.parametrize("backend", ["file", "sqlite"])
class TestKillAndRestart:
    def test_recovery_rebuilds_identical_state(self, tmp_path, backend):
        environment, bus, log, manager = build_runtime(shard_count=4)
        config = PersistenceConfig(str(tmp_path), backend=backend, fsync="never")
        coordinator = PersistenceCoordinator(
            manager, log, config.open_journal(), config.open_snapshots(),
            config.open_store(), bus=bus)
        model = bench_model()
        manager.publish_model(model, actor="coordinator")
        ids = drive_workload(environment, manager, model, count=60)

        # Checkpoint mid-workload, then keep going: recovery must combine
        # the snapshot with a non-empty journal tail.
        coordinator.checkpoint()
        manager.map_instances(
            ids[30:45], lambda shard, iid: shard.advance(iid, actor="alice",
                                                         to_phase_id="review"))
        manager.annotate(ids[40], actor="bob", text="post-checkpoint note")
        bus.flush()
        expected = state_fingerprint(manager, log, model.uri)
        coordinator.close()
        del manager, log, bus  # the crash: every in-memory structure is gone

        environment2, bus2, log2, manager2 = build_runtime(shard_count=4)
        report = recover_into(manager2, log2, config.open_journal(),
                              config.open_snapshots(), config.open_store())
        assert report.records_replayed > 0
        assert report.warnings == []
        assert state_fingerprint(manager2, log2, model.uri) == expected

    def test_recovery_without_snapshot_replays_everything(self, tmp_path, backend):
        environment, bus, log, manager = build_runtime(shard_count=4)
        config = PersistenceConfig(str(tmp_path), backend=backend, fsync="never")
        coordinator = PersistenceCoordinator(
            manager, log, config.open_journal(), config.open_snapshots(),
            config.open_store(), bus=bus)
        model = bench_model()
        manager.publish_model(model, actor="coordinator")
        drive_workload(environment, manager, model, count=20)
        bus.flush()
        expected = state_fingerprint(manager, log, model.uri)
        coordinator.close()

        environment2, bus2, log2, manager2 = build_runtime(shard_count=4)
        report = recover_into(manager2, log2, config.open_journal(),
                              config.open_snapshots(), config.open_store())
        assert report.snapshot_seq == 0
        assert report.instances_created_from_journal == 20
        assert state_fingerprint(manager2, log2, model.uri) == expected

    def test_recover_then_continue_then_recover_again(self, tmp_path, backend):
        """The full restart loop: recovered deployments keep journaling."""
        config = PersistenceConfig(str(tmp_path), backend=backend, fsync="never")
        environment, bus, log, manager = build_runtime(shard_count=4)
        coordinator = PersistenceCoordinator(
            manager, log, config.open_journal(), config.open_snapshots(),
            config.open_store(), bus=bus)
        model = bench_model()
        manager.publish_model(model, actor="coordinator")
        ids = drive_workload(environment, manager, model, count=24)
        coordinator.checkpoint()
        # Post-checkpoint tail that only the journal knows about.
        manager.advance(ids[20], actor="alice", to_phase_id="review")
        bus.flush()
        coordinator.close()

        # Restart 1: recover, attach a new coordinator (marking replayed
        # instances dirty), checkpoint — which truncates the tail — and work.
        environment2, bus2, log2, manager2 = build_runtime(shard_count=4)
        journal2, snapshots2, store2 = (config.open_journal(),
                                        config.open_snapshots(),
                                        config.open_store())
        report = recover_into(manager2, log2, journal2, snapshots2, store2)
        coordinator2 = PersistenceCoordinator(manager2, log2, journal2,
                                              snapshots2, store2, bus=bus2)
        for instance_id in report.touched_instance_ids:
            coordinator2.mark_dirty(instance_id)
        coordinator2.checkpoint()
        manager2.advance(ids[21], actor="alice", to_phase_id="review")
        bus2.flush()
        expected = state_fingerprint(manager2, log2, model.uri)
        coordinator2.close()

        # Restart 2: the instance advanced before restart 1's checkpoint must
        # still be on review — its state survived the journal truncation.
        environment3, bus3, log3, manager3 = build_runtime(shard_count=4)
        recover_into(manager3, log3, config.open_journal(),
                     config.open_snapshots(), config.open_store())
        assert manager3.instance(ids[20]).current_phase_id == "review"
        assert manager3.instance(ids[21]).current_phase_id == "review"
        assert state_fingerprint(manager3, log3, model.uri) == expected


class TestKillAndRestartAtScale:
    """The acceptance-criteria round trip: >= 1k instances on >= 4 shards."""

    @pytest.mark.parametrize("backend", ["file", "sqlite"])
    def test_thousand_instances_round_trip(self, tmp_path, backend):
        environment, bus, log, manager = build_runtime(shard_count=4)
        config = PersistenceConfig(str(tmp_path), backend=backend, fsync="never")
        coordinator = PersistenceCoordinator(
            manager, log, config.open_journal(), config.open_snapshots(),
            config.open_store(), bus=bus)
        model = bench_model()
        manager.publish_model(model, actor="coordinator")
        adapter = environment.adapter("Google Doc")
        requests = [{"model_uri": model.uri,
                     "resource": adapter.create_resource("doc {}".format(i),
                                                         owner="alice"),
                     "owner": "alice" if i % 4 else "bob"}
                    for i in range(1000)]
        ids = [i.instance_id for i in manager.batch_instantiate(requests)]
        manager.map_instances(ids, lambda shard, iid: shard.start(iid, actor="alice"))
        coordinator.checkpoint()
        # A journal tail on top of the snapshot: 400 advance past it.
        manager.map_instances(ids[:400],
                              lambda shard, iid: shard.advance(
                                  iid, actor="alice", to_phase_id="review"))
        bus.flush()
        assert all(size > 0 for size in manager.shard_sizes())
        expected = state_fingerprint(manager, log, model.uri)
        coordinator.close()
        del manager, log, bus

        environment2, bus2, log2, manager2 = build_runtime(shard_count=4)
        report = recover_into(manager2, log2, config.open_journal(),
                              config.open_snapshots(), config.open_store())
        assert report.instances_restored == 1000
        assert report.warnings == []
        assert manager2.instance_count() == 1000
        assert state_fingerprint(manager2, log2, model.uri) == expected


# ============================================================== service tier
class TestServicePersistence:
    def test_service_round_trip_and_endpoints(self, tmp_path):
        config = PersistenceConfig(str(tmp_path), backend="sqlite", fsync="never")
        router = RestRouter(shard_count=4, persistence=config)
        service = router.service
        model = service.publish_template("eu-deliverable", actor="alice")
        descriptor = service.environment.adapter("Google Doc").create_resource(
            "D1.1", owner="alice")
        created = router.post("/v2/instances", body={
            "model_uri": model["uri"], "resource": descriptor.to_dict(),
            "owner": "alice"}, actor="alice")
        assert created.status == 201
        instance_id = created.body["data"]["instance_id"]
        router.post("/v2/instances/{}:start".format(instance_id), actor="alice")

        status = router.get("/v2/runtime/persistence")
        assert status.status == 200
        assert status.body["data"]["enabled"] is True
        assert status.body["data"]["backend"] == "sqlite"
        assert status.body["data"]["dirty_instances"] >= 1

        checkpoint = router.post("/v2/runtime/persistence:checkpoint")
        assert checkpoint.status == 201
        assert checkpoint.body["data"]["instances_flushed"] == 1
        stats = router.get("/v2/runtime/stats")
        assert stats.body["data"]["persistence_enabled"] is True
        service.close()

        # Restart: same config, state comes back before the first request.
        router2 = RestRouter(shard_count=4, persistence=config)
        detail = router2.get("/v2/instances/{}".format(instance_id))
        assert detail.status == 200
        assert detail.body["data"]["status"] == "active"
        status2 = router2.get("/v2/runtime/persistence")
        assert status2.body["data"]["recovery"]["instances_restored"] == 1
        router2.service.close()

    def test_disabled_persistence_surface(self):
        router = RestRouter(shard_count=2)
        status = router.get("/v2/runtime/persistence")
        assert status.body["data"] == {"enabled": False}
        checkpoint = router.post("/v2/runtime/persistence:checkpoint")
        assert checkpoint.status == 400
        assert checkpoint.body["error"]["code"] == "BAD_REQUEST"
        stats = router.get("/v2/runtime/stats")
        assert stats.body["data"]["persistence_enabled"] is False
        with pytest.raises(ServiceError):
            GeleeService().persistence_checkpoint()

    def test_router_rejects_service_plus_persistence(self, tmp_path):
        service = GeleeService()
        with pytest.raises(ServiceError):
            RestRouter(service=service,
                       persistence=PersistenceConfig(str(tmp_path)))

    def test_log_retention_knob_bounds_snapshot_manifests(self, tmp_path):
        config = PersistenceConfig(str(tmp_path), backend="file", fsync="never",
                                   log_max_entries=10)
        service = GeleeService(shard_count=2, persistence=config)
        assert service.execution_log.max_entries == 10
        model = service.publish_template("eu-deliverable", actor="alice")
        adapter = service.environment.adapter("Google Doc")
        for index in range(8):
            descriptor = adapter.create_resource("D{}".format(index), owner="alice")
            instance = service.create_instance(model["uri"], descriptor.to_dict(),
                                               owner="alice", actor="alice")
            service.start_instance(instance["instance_id"], actor="alice")
        service.persistence_checkpoint()
        manifest = service.persistence.snapshots.latest()
        assert len(manifest.log["entries"]) <= 10
        service.close()

    def test_single_manager_service_is_also_durable(self, tmp_path):
        """The persistence knob works on the classic unsharded kernel too."""
        config = PersistenceConfig(str(tmp_path), backend="file", fsync="never")
        service = GeleeService(persistence=config)
        assert isinstance(service.manager, LifecycleManager)
        assert not isinstance(service.manager, ShardedLifecycleManager)
        model = service.publish_template("eu-deliverable", actor="alice")
        descriptor = service.environment.adapter("Google Doc").create_resource(
            "D9", owner="alice")
        instance = service.create_instance(model["uri"], descriptor.to_dict(),
                                           owner="alice", actor="alice")
        service.persistence_checkpoint()
        service.close()

        service2 = GeleeService(persistence=config)
        detail = service2.instance_detail(instance["instance_id"])
        assert detail["status"] == "created"
        service2.close()


# ===================================== crash interactions (rotation, torn
# tails, mid-checkpoint kills): the failure modes that cross layer borders.
class TestCrashInteractions:
    def _ts(self):
        return SimulatedClock().now()

    def test_torn_tail_after_rotation_repairs_only_final_segment(self, tmp_path):
        """A crash mid-append after several rotations: only the *final*
        segment can be torn; repair must fix it without touching the sealed
        segments, and the sequence must continue correctly."""
        journal = Journal(str(tmp_path), fsync="never", segment_max_records=4)
        ts = self._ts()
        for index in range(10):
            journal.append("k", ts, "s{}".format(index))
        journal.close()
        segments = journal.segment_files()
        assert len(segments) >= 3
        sealed = os.path.join(str(tmp_path), segments[0])
        sealed_bytes = open(sealed, "rb").read()
        torn = os.path.join(str(tmp_path), segments[-1])
        with open(torn, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 11, "kind": "k", "timest')

        reopened = Journal(str(tmp_path), fsync="never", segment_max_records=4)
        assert reopened.last_seq == 10
        assert open(sealed, "rb").read() == sealed_bytes
        record = reopened.append("k2", ts, "s")
        assert record.seq == 11
        assert [r.seq for r in reopened.read()] == list(range(1, 12))

    def test_torn_line_in_sealed_segment_is_corruption(self, tmp_path):
        """Only the final segment may legitimately carry a torn tail —
        sealed segments were fsynced at rotation, so damage there is real
        corruption and reading must raise, not skip."""
        journal = Journal(str(tmp_path), fsync="never", segment_max_records=3)
        ts = self._ts()
        for index in range(7):
            journal.append("k", ts, "s")
        journal.close()
        sealed = os.path.join(str(tmp_path), journal.segment_files()[0])
        with open(sealed, encoding="utf-8") as handle:
            lines = handle.readlines()
        lines[-1] = lines[-1][:20] + "\n"  # tear a line in a sealed segment
        with open(sealed, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.raises(StorageError):
            list(Journal(str(tmp_path), fsync="never").read())

    def test_crash_between_store_flush_and_manifest_publish(self, tmp_path):
        """Kill the process inside checkpoint, after the instance documents
        reached the store but before the manifest landed: recovery must
        combine the (manifest-less) documents with full journal replay and
        lose nothing."""
        environment, bus, log, manager = build_runtime(shard_count=4)
        config = PersistenceConfig(str(tmp_path), backend="file", fsync="never")
        coordinator = PersistenceCoordinator(
            manager, log, config.open_journal(), config.open_snapshots(),
            config.open_store(), bus=bus)
        model = bench_model()
        manager.publish_model(model, actor="coordinator")
        ids = drive_workload(environment, manager, model, count=24)
        bus.flush()
        expected = state_fingerprint(manager, log, model.uri)

        publish_attempted = {"count": 0}

        def crash_publish(manifest):
            publish_attempted["count"] += 1
            raise StorageError("killed during manifest publish")

        coordinator.snapshots.publish = crash_publish
        with pytest.raises(StorageError):
            coordinator.checkpoint()
        assert publish_attempted["count"] == 1
        store = config.open_store()
        assert store.count() > 0, "documents were flushed before the kill"
        store.close()
        del coordinator, manager, log, bus  # the kill

        environment2, bus2, log2, manager2 = build_runtime(shard_count=4)
        report = recover_into(manager2, log2, config.open_journal(),
                              config.open_snapshots(), config.open_store())
        assert report.snapshot_seq == 0  # no manifest ever landed
        assert report.instances_restored == 24  # ...but the documents did
        assert report.warnings == []
        assert state_fingerprint(manager2, log2, model.uri) == expected

    def test_kill_and_restart_during_partial_store_flush(self, tmp_path):
        """Kill the process after only *some* documents of a checkpoint were
        flushed (mid ``upsert_many``): per-document journal_seq coverage
        must keep replay idempotent over the half-flushed store."""
        environment, bus, log, manager = build_runtime(shard_count=4)
        config = PersistenceConfig(str(tmp_path), backend="file", fsync="never")
        store = config.open_store()
        coordinator = PersistenceCoordinator(
            manager, log, config.open_journal(), config.open_snapshots(),
            store, bus=bus)
        model = bench_model()
        manager.publish_model(model, actor="coordinator")
        ids = drive_workload(environment, manager, model, count=24)
        bus.flush()
        expected = state_fingerprint(manager, log, model.uri)

        original_upsert_many = store.upsert_many

        def partial_flush(documents):
            documents = list(documents)
            original_upsert_many(documents[: len(documents) // 2])
            raise StorageError("killed mid-flush")

        store.upsert_many = partial_flush
        with pytest.raises(StorageError):
            coordinator.checkpoint()
        flushed = config.open_store()
        assert 0 < flushed.count() < 24
        flushed.close()
        del coordinator, store, manager, log, bus  # the kill

        environment2, bus2, log2, manager2 = build_runtime(shard_count=4)
        report = recover_into(manager2, log2, config.open_journal(),
                              config.open_snapshots(), config.open_store())
        assert report.warnings == []
        assert state_fingerprint(manager2, log2, model.uri) == expected

    def test_checkpoint_rotation_torn_tail_combined(self, tmp_path):
        """The full gauntlet in one run: checkpoint (journal truncation),
        segment rotation, then a crash that tears the live tail — recovery
        must still produce the exact pre-crash state."""
        environment, bus, log, manager = build_runtime(shard_count=4)
        config = PersistenceConfig(str(tmp_path), backend="sqlite",
                                   fsync="never", segment_max_records=32)
        coordinator = PersistenceCoordinator(
            manager, log, config.open_journal(), config.open_snapshots(),
            config.open_store(), bus=bus)
        model = bench_model()
        manager.publish_model(model, actor="coordinator")
        ids = drive_workload(environment, manager, model, count=20)
        bus.flush()
        checkpoint = coordinator.checkpoint()
        assert checkpoint["segments_truncated"] >= 1
        manager.map_instances(
            ids[10:16], lambda shard, iid: shard.advance(iid, actor="alice",
                                                         to_phase_id="review"))
        bus.flush()
        expected = state_fingerprint(manager, log, model.uri)
        coordinator.journal.rotate()
        manager.annotate(ids[0], actor="alice", text="doomed note")
        bus.flush()
        # The crash tears the very last journal line (the annotation): that
        # record never committed, so the recovered state must equal the
        # pre-annotation fingerprint... minus nothing else.
        expected_log_tail = [e for e in log.entries()
                             if not (e.kind == "instance.annotated"
                                     and e.subject_id == ids[0]
                                     and e.payload.get("text") == "doomed note")]
        del coordinator, manager, log, bus
        journal_dir = config.journal_directory
        segments = sorted(os.listdir(journal_dir))
        tail_path = os.path.join(journal_dir, segments[-1])
        data = open(tail_path, "rb").read()
        with open(tail_path, "wb") as handle:
            handle.write(data[:-10])  # tear the final line mid-record

        environment2, bus2, log2, manager2 = build_runtime(shard_count=4)
        report = recover_into(manager2, log2, config.open_journal(),
                              config.open_snapshots(), config.open_store())
        assert report.warnings == []
        fingerprint = state_fingerprint(manager2, log2, model.uri)
        assert fingerprint["phases"] == expected["phases"]
        assert fingerprint["shard_sizes"] == expected["shard_sizes"]
        assert [e.kind for e in log2.entries()] == \
            [e.kind for e in expected_log_tail]
