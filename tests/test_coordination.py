"""Tests for :mod:`repro.coordination`: leases, fencing tokens, leader
election, health-checked automatic failover, and the election-aware
scheduler daemon.

The centrepiece mirrors the replication acceptance scenario — but with
nobody at the keyboard: the primary is killed mid-traffic, the
:class:`FailoverSupervisor` detects it, wins the lease, promotes the
standby on its own, and the deposed primary's late write bounces off the
stale fencing token.
"""

import os
import shutil
import tempfile
import threading

import pytest

from repro.clock import SimulatedClock
from repro.client import GeleeApiError, GeleeClient
from repro.coordination import (
    CoordinationConfig,
    Coordinator,
    FailoverSupervisor,
    FencingGuard,
    HealthMonitor,
    LeaderElector,
    MemoryLeaseStore,
    SQLiteLeaseStore,
)
from repro.errors import (
    CoordinationError,
    NotLeaderError,
    StaleFencingTokenError,
    StorageError,
)
from repro.errors import JournalTruncatedError
from repro.model import LifecycleBuilder
from repro.persistence import PersistenceConfig
from repro.replication import (
    HttpReplicationSource,
    JournalShippingSource,
    ReadReplica,
    ReplicationPrimary,
)
from repro.scheduler import SchedulerDaemon
from repro.service import GeleeHttpServer, GeleeService, RestRouter


@pytest.fixture
def root():
    directory = tempfile.mkdtemp(prefix="gelee-coordination-")
    yield directory
    shutil.rmtree(directory, ignore_errors=True)


@pytest.fixture
def clock():
    return SimulatedClock()


def lease_model(name="Coordinated lifecycle"):
    builder = LifecycleBuilder(name)
    builder.phase("Draft", deadline_days=2.0)
    builder.phase("Review")
    builder.terminal("Done")
    builder.flow("Draft", "Review", "Done")
    return builder.build()


def seed_instances(service, model, count, prefix="doc"):
    adapter = service.environment.adapter("Google Doc")
    ids = []
    for index in range(count):
        resource = adapter.create_resource("{} {}".format(prefix, index),
                                           owner="alice")
        instance = service.manager.instantiate(model.uri, resource,
                                               owner="alice")
        service.manager.start(instance.instance_id, actor="alice")
        ids.append(instance.instance_id)
    return ids


def make_store(kind, clock, root):
    if kind == "memory":
        return MemoryLeaseStore(clock=clock)
    return SQLiteLeaseStore(os.path.join(root, "leases.sqlite3"), clock=clock)


# ============================================================== lease stores
@pytest.mark.parametrize("kind", ["memory", "sqlite"])
class TestLeaseStores:
    def test_fresh_acquire_starts_epoch_one(self, kind, clock, root):
        store = make_store(kind, clock, root)
        lease = store.acquire("primary", "node-a", ttl_seconds=10.0)
        assert lease is not None
        assert lease.token == 1
        assert lease.holder_id == "node-a"
        assert not lease.is_expired(clock.now())
        assert store.latest_token("primary") == 1
        assert store.leader("primary").holder_id == "node-a"

    def test_contender_refused_while_lease_valid(self, kind, clock, root):
        store = make_store(kind, clock, root)
        store.acquire("primary", "node-a", ttl_seconds=10.0)
        assert store.acquire("primary", "node-b", ttl_seconds=10.0) is None
        # The refusal did not burn an epoch.
        assert store.latest_token("primary") == 1

    def test_self_reacquire_extends_without_bumping_epoch(self, kind, clock,
                                                          root):
        store = make_store(kind, clock, root)
        first = store.acquire("primary", "node-a", ttl_seconds=10.0)
        clock.advance(seconds=6)
        again = store.acquire("primary", "node-a", ttl_seconds=10.0)
        assert again.token == first.token == 1
        assert again.expires_at > first.expires_at

    def test_expired_lease_transfers_with_next_token(self, kind, clock, root):
        store = make_store(kind, clock, root)
        store.acquire("primary", "node-a", ttl_seconds=10.0)
        clock.advance(seconds=11)
        taken = store.acquire("primary", "node-b", ttl_seconds=10.0)
        assert taken is not None
        assert taken.token == 2
        assert store.leader("primary").holder_id == "node-b"

    def test_renew_extends_and_fails_after_transfer(self, kind, clock, root):
        store = make_store(kind, clock, root)
        lease = store.acquire("primary", "node-a", ttl_seconds=10.0)
        clock.advance(seconds=5)
        renewed = store.renew("primary", "node-a", lease.token,
                              ttl_seconds=10.0)
        assert renewed is not None and renewed.token == 1
        # Transfer to b after expiry; a's renew must now fail.
        clock.advance(seconds=11)
        store.acquire("primary", "node-b", ttl_seconds=10.0)
        assert store.renew("primary", "node-a", lease.token,
                           ttl_seconds=10.0) is None

    def test_expired_but_untransferred_lease_still_renews(self, kind, clock,
                                                          root):
        # The store is the arbiter: if nobody claimed the name, ownership
        # was never lost and the epoch must not advance.
        store = make_store(kind, clock, root)
        lease = store.acquire("primary", "node-a", ttl_seconds=10.0)
        clock.advance(seconds=60)
        renewed = store.renew("primary", "node-a", lease.token,
                              ttl_seconds=10.0)
        assert renewed is not None and renewed.token == 1

    def test_token_monotonic_across_voluntary_release(self, kind, clock, root):
        store = make_store(kind, clock, root)
        lease = store.acquire("primary", "node-a", ttl_seconds=10.0)
        assert store.release("primary", "node-a", lease.token) is True
        assert store.leader("primary") is None
        # The row survives release so the counter does too.
        assert store.latest_token("primary") == 1
        taken = store.acquire("primary", "node-b", ttl_seconds=10.0)
        assert taken.token == 2
        # Double release and stale-token release are refused.
        assert store.release("primary", "node-a", lease.token) is False

    def test_validate_is_newest_epoch_check(self, kind, clock, root):
        store = make_store(kind, clock, root)
        store.acquire("primary", "node-a", ttl_seconds=10.0)
        assert store.validate("primary", 1) is True
        clock.advance(seconds=11)
        store.acquire("primary", "node-b", ttl_seconds=10.0)
        assert store.validate("primary", 1) is False
        assert store.validate("primary", 2) is True

    def test_argument_validation(self, kind, clock, root):
        store = make_store(kind, clock, root)
        with pytest.raises(CoordinationError):
            store.acquire("", "node-a", 10.0)
        with pytest.raises(CoordinationError):
            store.acquire("primary", "", 10.0)
        with pytest.raises(CoordinationError):
            store.acquire("primary", "node-a", 0)


class TestSQLiteLeaseStore:
    def test_state_survives_reopen(self, clock, root):
        path = os.path.join(root, "leases.sqlite3")
        store = SQLiteLeaseStore(path, clock=clock)
        store.acquire("primary", "node-a", ttl_seconds=10.0)
        store.close()
        reopened = SQLiteLeaseStore(path, clock=clock)
        assert reopened.latest_token("primary") == 1
        assert reopened.leader("primary").holder_id == "node-a"
        reopened.close()

    def test_two_process_views_share_one_truth(self, clock, root):
        # Two store handles on the same file = two processes of the
        # deployment; CAS through either sees the other's writes.
        path = os.path.join(root, "leases.sqlite3")
        a, b = SQLiteLeaseStore(path, clock=clock), SQLiteLeaseStore(path,
                                                                     clock=clock)
        assert a.acquire("primary", "node-a", ttl_seconds=10.0) is not None
        assert b.acquire("primary", "node-b", ttl_seconds=10.0) is None
        clock.advance(seconds=11)
        taken = b.acquire("primary", "node-b", ttl_seconds=10.0)
        assert taken.token == 2
        assert a.latest_token("primary") == 2
        a.close(), b.close()

    def test_concurrent_acquirers_exactly_one_winner(self, root):
        path = os.path.join(root, "leases.sqlite3")
        stores = [SQLiteLeaseStore(path) for _ in range(8)]
        wins, barrier = [], threading.Barrier(8)

        def campaign(index):
            barrier.wait()
            lease = stores[index].acquire("primary",
                                          "node-{}".format(index), 30.0)
            if lease is not None:
                wins.append(lease)

        threads = [threading.Thread(target=campaign, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(wins) == 1
        assert wins[0].token == 1
        for store in stores:
            store.close()


# ============================================================ fencing guard
class TestFencingGuard:
    def test_current_epoch_passes(self, clock):
        store = MemoryLeaseStore(clock=clock)
        store.acquire("primary", "node-a", ttl_seconds=10.0)
        guard = FencingGuard(store, "primary", 1, revalidate_seconds=0)
        guard.check()  # does not raise
        assert guard.valid

    def test_newer_epoch_rejects_and_latches(self, clock):
        store = MemoryLeaseStore(clock=clock)
        store.acquire("primary", "node-a", ttl_seconds=10.0)
        guard = FencingGuard(store, "primary", 1, revalidate_seconds=0)
        clock.advance(seconds=11)
        store.acquire("primary", "node-b", ttl_seconds=10.0)
        with pytest.raises(StaleFencingTokenError) as excinfo:
            guard.check()
        assert excinfo.value.token == 1
        assert excinfo.value.latest == 2
        assert not guard.valid
        # Latched: even if the store were rolled back, the epoch is over.
        with pytest.raises(StaleFencingTokenError):
            guard.check()
        status = guard.status()
        assert status["rejections"] == 2
        assert status["valid"] is False

    def test_local_invalidate_needs_no_store_read(self, clock):
        store = MemoryLeaseStore(clock=clock)
        store.acquire("primary", "node-a", ttl_seconds=10.0)
        guard = FencingGuard(store, "primary", 1, revalidate_seconds=0)
        guard.invalidate("deposed in test")
        with pytest.raises(StaleFencingTokenError) as excinfo:
            guard.check()
        assert "deposed in test" in str(excinfo.value)

    def test_revalidate_window_caches_the_verdict(self, clock):
        store = MemoryLeaseStore(clock=clock)
        store.acquire("primary", "node-a", ttl_seconds=10.0)
        guard = FencingGuard(store, "primary", 1, revalidate_seconds=60.0)
        for _ in range(5):
            guard.check()
        assert guard.status()["checks"] == 5
        assert guard.status()["store_reads"] == 1


# =========================================================== leader elector
class TestLeaderElector:
    def test_heartbeat_elects_then_renews(self, clock):
        store = MemoryLeaseStore(clock=clock)
        elected, deposed = [], []
        elector = LeaderElector(store, node_id="node-a", ttl_seconds=10.0,
                                clock=clock, on_elected=elected.append,
                                on_deposed=deposed.append)
        assert elector.heartbeat() is True
        assert elector.is_leader and elector.token == 1
        assert len(elected) == 1
        # Subsequent heartbeats renew; the election edge fires only once.
        clock.advance(seconds=5)
        assert elector.heartbeat() is True
        assert len(elected) == 1 and not deposed
        assert elector.status()["renewals"] == 1

    def test_deposed_when_challenger_wins_expired_lease(self, clock):
        store = MemoryLeaseStore(clock=clock)
        deposed = []
        a = LeaderElector(store, node_id="node-a", ttl_seconds=10.0,
                          clock=clock, on_deposed=deposed.append)
        b = LeaderElector(store, node_id="node-b", ttl_seconds=10.0,
                          clock=clock)
        a.heartbeat()
        assert b.heartbeat() is False  # kept out while a's lease is valid
        clock.advance(seconds=11)
        assert a.is_leader is False  # local judgement, before any store call
        assert b.heartbeat() is True
        assert b.token == 2
        # a notices on its next round; the deposition edge fires once.
        assert a.heartbeat() is False
        assert len(deposed) == 1
        assert a.token == 0
        assert a.status()["leader_id"] == "node-b"

    def test_resign_transfers_immediately(self, clock):
        store = MemoryLeaseStore(clock=clock)
        a = LeaderElector(store, node_id="node-a", ttl_seconds=10.0,
                          clock=clock)
        b = LeaderElector(store, node_id="node-b", ttl_seconds=10.0,
                          clock=clock)
        a.heartbeat()
        given_up = a.resign()
        assert given_up.token == 1
        assert not a.is_leader
        # No TTL wait: the next campaigner takes over now, at a new epoch.
        assert b.heartbeat() is True
        assert b.token == 2

    def test_resign_without_leadership_raises(self, clock):
        elector = LeaderElector(MemoryLeaseStore(clock=clock),
                                node_id="node-a", clock=clock)
        with pytest.raises(NotLeaderError):
            elector.resign()


# =========================================================== health monitor
class TestHealthMonitor:
    def test_threshold_of_consecutive_failures(self, clock):
        verdicts = [True, False, False, True, False, False, False]
        probe = lambda: verdicts.pop(0)  # noqa: E731
        monitor = HealthMonitor(probe, failure_threshold=3,
                                probe_interval_seconds=1.0, clock=clock)
        for _ in range(4):
            monitor.check()
        # Two failures then a success: the streak resets, never unhealthy.
        assert not monitor.is_unhealthy
        assert monitor.unhealthy_since is None
        for _ in range(3):
            monitor.check()
        assert monitor.is_unhealthy
        assert monitor.unhealthy_since is not None

    def test_poll_respects_interval_and_backoff(self, clock):
        calls = []
        monitor = HealthMonitor(lambda: calls.append(1) and False,
                                failure_threshold=2,
                                probe_interval_seconds=2.0,
                                backoff_factor=2.0, clock=clock)
        assert monitor.poll() is not None  # first poll probes
        assert monitor.poll() is None      # interval not elapsed
        clock.advance(seconds=2)
        assert monitor.poll() is None      # backed off to 4s after a failure
        clock.advance(seconds=2)
        assert monitor.poll() is not None
        assert len(calls) == 2

    def test_probe_exception_counts_as_failure(self, clock):
        def bad_probe():
            raise OSError("connection refused")

        monitor = HealthMonitor(bad_probe, failure_threshold=1, clock=clock)
        assert monitor.check() is False
        assert monitor.is_unhealthy
        assert "OSError" in monitor.status()["last_error"]
        monitor.reset()
        assert not monitor.is_unhealthy


# ===================================================== coordinated service
class TestCoordinatedService:
    def build(self, clock, store, **overrides):
        options = dict(store=store, ttl_seconds=10.0,
                       fence_revalidate_seconds=0)
        options.update(overrides)
        return GeleeService(shard_count=4, clock=clock,
                            coordination=CoordinationConfig(**options))

    def test_single_node_is_leader_on_start(self, clock):
        store = MemoryLeaseStore(clock=clock)
        service = self.build(clock, store)
        status = service.coordination_status()
        assert status["enabled"] is True
        assert status["role"] == "leader"
        assert status["token"] == 1
        stats = service.runtime_stats()
        assert stats["coordination_enabled"] is True
        assert stats["coordination_role"] == "leader"
        assert service.monitoring_summary()["coordination"]["is_leader"] is True
        service.close()

    def test_uncoordinated_service_reports_disabled(self):
        service = GeleeService(shard_count=2)
        assert service.coordination_status() == {"enabled": False,
                                                 "role": "primary"}
        with pytest.raises(CoordinationError):
            service.coordination_resign()
        assert "coordination" not in service.monitoring_summary()
        service.close()

    def test_read_only_cannot_campaign(self, clock):
        store = MemoryLeaseStore(clock=clock)
        with pytest.raises(Exception):
            GeleeService(shard_count=2, clock=clock, read_only=True,
                         coordination=CoordinationConfig(store=store))

    def test_config_requires_shared_store(self):
        with pytest.raises(CoordinationError):
            CoordinationConfig()

    def test_directory_config_builds_sqlite_store(self, clock, root):
        service = GeleeService(
            shard_count=2, clock=clock,
            coordination=CoordinationConfig(directory=root, ttl_seconds=10.0))
        assert os.path.exists(os.path.join(root, "leases.sqlite3"))
        assert service.coordination_status()["store"]["type"] == "sqlite"
        service.close()

    def test_resign_over_the_api_and_reelection(self, clock):
        store = MemoryLeaseStore(clock=clock)
        service = self.build(clock, store)
        client = GeleeClient.in_process(router=RestRouter(service=service))
        status = client.coordination_status()
        assert status["role"] == "leader"
        report = client.coordination_resign()
        assert report["resigned"] is True
        # Resigned → demoted: reads fine, writes 409, scheduler dormant.
        assert service.read_only is True
        assert service.scheduler.dormant is True
        with pytest.raises(GeleeApiError) as excinfo:
            client.coordination_resign()
        assert excinfo.value.code == "NOT_LEADER"
        # Nobody else campaigns, so the next heartbeat re-elects this node
        # at a fresh epoch and flips it writable again.
        assert service.coordination.heartbeat() is True
        assert service.coordination.token == 2
        assert service.read_only is False
        assert service.scheduler.dormant is False
        service.close()

    def test_split_brain_write_rejected_by_fencing_token(self, clock, root):
        """The acceptance criterion: a paused primary that lost its lease
        gets a typed stale-token rejection on its very next write."""
        store = MemoryLeaseStore(clock=clock)
        config = PersistenceConfig(os.path.join(root, "a"), fsync="never")
        a = GeleeService(shard_count=4, clock=clock, persistence=config,
                         coordination=CoordinationConfig(
                             store=store, ttl_seconds=10.0,
                             fence_revalidate_seconds=0))
        model = lease_model()
        a.manager.publish_model(model, actor="alice")
        ids = seed_instances(a, model, 4)
        journal_head_before = a.persistence.journal.last_seq

        # a stalls (GC pause, partition): no heartbeats while its TTL runs
        # out, and node b wins the next epoch.
        clock.advance(seconds=11)
        b = GeleeService(shard_count=4, clock=clock,
                         coordination=CoordinationConfig(
                             store=store, node_id="node-b",
                             ttl_seconds=10.0, fence_revalidate_seconds=0))
        assert b.coordination.is_leader and b.coordination.token == 2

        # a wakes up and writes, still believing it leads.
        with pytest.raises(StaleFencingTokenError) as excinfo:
            a.manager.advance(ids[0], actor="alice", to_phase_id="review")
        assert excinfo.value.token == 1
        # Nothing stale reached the journal.
        assert a.persistence.journal.last_seq == journal_head_before
        # The journal's own fence holds even if the runtime guard were
        # bypassed.
        with pytest.raises(StaleFencingTokenError):
            a.persistence.journal.append("test.event", clock.now(), "s1")

        # Before a even notices its deposition, the wire surface already
        # maps the rejection to a machine-readable 409.
        client = GeleeClient.in_process(router=RestRouter(service=a),
                                        actor="alice")
        with pytest.raises(GeleeApiError) as excinfo:
            client.advance(ids[1], to_phase_id="review")
        assert excinfo.value.code == "STALE_FENCING_TOKEN"
        assert excinfo.value.status == 409
        assert excinfo.value.details["token"] == 1
        assert excinfo.value.details["latest_token"] == 2

        # a's next heartbeat records the deposition and demotes it.
        assert a.coordination.heartbeat() is False
        assert a.read_only is True
        assert a.scheduler.dormant is True
        assert a.primary_hint == "node-b"
        status = a.coordination_status()
        assert status["role"] == "standby"
        assert status["demoted"] is True
        assert status["depositions"] == 1
        b.close()
        a.close()

    def test_journal_fence_trip_demotes_on_next_heartbeat(self, clock, root):
        """A fence rejection surfacing inside the persistence layer only
        flags; the (lock-heavy) demotion happens on the heartbeat."""
        store = MemoryLeaseStore(clock=clock)
        config = PersistenceConfig(os.path.join(root, "a"), fsync="never")
        a = GeleeService(shard_count=2, clock=clock, persistence=config,
                         coordination=CoordinationConfig(
                             store=store, ttl_seconds=10.0,
                             fence_revalidate_seconds=0))
        clock.advance(seconds=11)
        store.acquire("gelee-primary", "node-b", ttl_seconds=10.0)
        # The bus-side journaling path swallows the fence rejection (the
        # publisher may hold shard locks) but reports it.
        from repro.events import Event
        a.bus.publish(Event(kind="test.event", timestamp=clock.now(),
                            subject_id="s1"))
        assert a.persistence.fenced_appends == 1
        assert a.read_only is False  # not yet: demotion is deferred
        a.coordination.heartbeat()
        assert a.read_only is True
        assert a.coordination_status()["fenced_appends"] == 1
        a.close()


# ======================================================== automatic failover
class TestAutomaticFailover:
    def test_kill_primary_auto_promotes_without_manual_call(self, clock, root):
        """The tentpole scenario: primary dies mid-traffic, the supervisor
        detects it, wins the lease, and promotes — zero journaled-record
        loss, and the deposed primary's late write is fenced."""
        store = MemoryLeaseStore(clock=clock)
        config = PersistenceConfig(os.path.join(root, "primary"),
                                   fsync="never")
        primary = GeleeService(shard_count=4, clock=clock, persistence=config,
                               coordination=CoordinationConfig(
                                   store=store, node_id="primary-node",
                                   ttl_seconds=10.0,
                                   fence_revalidate_seconds=0))
        model = lease_model()
        primary.manager.publish_model(model, actor="alice")
        ids = seed_instances(primary, model, 20)
        primary.persistence.checkpoint()

        replica = ReadReplica(JournalShippingSource(config), shard_count=4,
                              clock=clock, replica_id="standby-node")
        replica.sync()

        alive = {"up": True}
        monitor = HealthMonitor(lambda: alive["up"], failure_threshold=2,
                                probe_interval_seconds=1.0, clock=clock)
        supervisor = FailoverSupervisor(replica, monitor, store=store,
                                        ttl_seconds=10.0, clock=clock,
                                        fence_revalidate_seconds=0)
        assert supervisor.poll()["state"] == "watching"

        # Traffic after the standby's last sync: journaled, never streamed.
        for instance_id in ids[:8]:
            primary.manager.advance(instance_id, actor="alice",
                                    to_phase_id="review")
        journal_head = primary.persistence.journal.last_seq
        expected_phases = {
            instance_id: primary.manager.instance(instance_id).current_phase_id
            for instance_id in ids
        }

        # Kill: the primary stops heartbeating and probing fails.  (Not a
        # clean close — close() would resign and skip the TTL wait.)
        alive["up"] = False

        # The supervisor crosses its failure threshold...
        reports = []
        for _ in range(3):
            clock.advance(seconds=1)
            reports.append(supervisor.poll())
        assert monitor.is_unhealthy
        # ...but the dead primary's lease has not expired yet: the store
        # arbitrates, nobody usurps a lease that might still renew.
        assert reports[-1]["state"] == "waiting_for_lease"
        assert not replica.is_promoted

        clock.advance(seconds=11)  # the primary's TTL runs out
        report = supervisor.poll()
        assert report["state"] == "failover"
        assert report["token"] == 2
        assert report["detection_to_promotion_seconds"] is not None
        assert report["detection_to_promotion_seconds"] >= 0.0

        # Zero journaled-record loss, automatically.
        assert report["promotion"]["promoted"] is True
        assert report["promotion"]["journal_seq"] == journal_head
        promoted = replica.service
        assert promoted.manager.instance_count() == 20
        for instance_id, phase_id in expected_phases.items():
            assert promoted.manager.instance(instance_id).current_phase_id \
                == phase_id

        # The promoted node serves writes and coordination status.
        promoted.manager.advance(ids[10], actor="alice", to_phase_id="review")
        status = promoted.coordination_status()
        assert status["role"] == "leader"
        assert status["supervisor"] is True
        assert status["failovers"] == 1

        # One post-fencing write from the deposed primary: rejected.
        with pytest.raises(StaleFencingTokenError):
            primary.manager.advance(ids[15], actor="alice",
                                    to_phase_id="review")
        assert primary.persistence.journal.last_seq == journal_head

        # Steady state: further polls just keep the lease warm.
        clock.advance(seconds=1)
        assert supervisor.poll()["state"] == "promoted"
        promoted.close()

    def test_supervisor_resign_flips_promoted_node_read_only(self, clock,
                                                             root):
        store = MemoryLeaseStore(clock=clock)
        config = PersistenceConfig(os.path.join(root, "primary"),
                                   fsync="never")
        primary = GeleeService(shard_count=2, clock=clock, persistence=config)
        model = lease_model()
        primary.manager.publish_model(model, actor="alice")
        seed_instances(primary, model, 2)

        replica = ReadReplica(JournalShippingSource(config), shard_count=2,
                              clock=clock)
        monitor = HealthMonitor(lambda: False, failure_threshold=1,
                                probe_interval_seconds=1.0, clock=clock)
        supervisor = FailoverSupervisor(replica, monitor, store=store,
                                        ttl_seconds=10.0, clock=clock)
        with pytest.raises(NotLeaderError):
            supervisor.resign()
        report = supervisor.poll()
        assert report["state"] == "failover"
        promoted = replica.service
        assert promoted.read_only is False
        supervisor.resign()
        assert promoted.read_only is True
        assert promoted.scheduler.dormant is True
        assert supervisor.poll()["state"] == "resigned"

    def test_supervisor_daemon_start_stop_idempotent(self, clock, root):
        store = MemoryLeaseStore(clock=clock)
        config = PersistenceConfig(os.path.join(root, "primary"),
                                   fsync="never")
        GeleeService(shard_count=2, clock=clock, persistence=config).close()
        replica = ReadReplica(JournalShippingSource(config), shard_count=2,
                              clock=clock)
        monitor = HealthMonitor(lambda: True, failure_threshold=2,
                                probe_interval_seconds=1.0, clock=clock)
        supervisor = FailoverSupervisor(replica, monitor, store=store,
                                        clock=clock)
        supervisor.start(poll_seconds=0.05)
        assert supervisor.start(poll_seconds=0.05) is supervisor  # no-op
        assert supervisor.is_running
        supervisor.stop()
        supervisor.stop()  # idempotent
        assert not supervisor.is_running


# =============================================== election-aware scheduler
class TestSchedulerDaemonElection:
    def test_single_ticker_cluster_wide(self, clock):
        """Two nodes run the same daemon; only the lease holder ticks."""
        store = MemoryLeaseStore(clock=clock)
        a = GeleeService(shard_count=2, clock=clock,
                         coordination=CoordinationConfig(
                             store=store, node_id="node-a", ttl_seconds=10.0))
        b = GeleeService(shard_count=2, clock=clock,
                         coordination=CoordinationConfig(
                             store=store, node_id="node-b", ttl_seconds=10.0))
        daemon_a = SchedulerDaemon(a.scheduler, poll_seconds=1.0,
                                   elector=a.coordination)
        daemon_b = SchedulerDaemon(b.scheduler, poll_seconds=1.0,
                                   elector=b.coordination)
        assert daemon_a.run_once() is True
        assert daemon_b.run_once() is False
        assert daemon_a.stats()["ticks"] == 1
        assert daemon_b.stats()["ticks"] == 0
        assert daemon_b.stats()["skipped_not_leader"] == 1

        # Leadership moves → so does the ticker, on the next round.
        clock.advance(seconds=11)
        assert daemon_b.run_once() is True
        assert daemon_a.run_once() is False
        assert daemon_b.stats()["ticks"] == 1
        assert daemon_a.stats()["skipped_not_leader"] == 1
        b.close()
        a.close()

    def test_daemon_without_elector_always_ticks(self, clock):
        service = GeleeService(shard_count=2, clock=clock)
        daemon = SchedulerDaemon(service.scheduler, poll_seconds=1.0)
        assert daemon.run_once() is True
        assert daemon.stats()["election_aware"] is False
        service.close()

    def test_stop_is_idempotent_and_prompt(self, clock):
        import time as time_module

        service = GeleeService(shard_count=2, clock=clock)
        # A long poll period: a prompt stop must interrupt the sleep, not
        # wait it out.
        daemon = SchedulerDaemon(service.scheduler, poll_seconds=30.0)
        daemon.start()
        assert daemon.is_running
        started = time_module.monotonic()
        daemon.stop()
        assert time_module.monotonic() - started < 5.0
        assert not daemon.is_running
        daemon.stop()  # second stop: no error, no hang
        service.close()

    def test_stop_from_the_daemon_thread_does_not_self_join(self, clock):
        service = GeleeService(shard_count=2, clock=clock)
        daemon = SchedulerDaemon(service.scheduler, poll_seconds=0.01)
        stopped_from_inside = threading.Event()
        original_tick = service.scheduler.tick

        def tick_then_stop(*args, **kwargs):
            result = original_tick(*args, **kwargs)
            daemon.stop()  # must not deadlock on joining itself
            stopped_from_inside.set()
            return result

        service.scheduler.tick = tick_then_stop
        daemon.start()
        assert stopped_from_inside.wait(timeout=5.0)
        # The loop exits because the stop event is set.
        deadline = 50
        while daemon.is_running and deadline:
            time_sleep(0.01)
            deadline -= 1
        assert not daemon.is_running
        service.close()

    def test_tick_errors_are_counted_not_fatal(self, clock):
        service = GeleeService(shard_count=2, clock=clock)
        service.scheduler.tick = lambda *a, **k: (_ for _ in ()).throw(
            RuntimeError("boom"))
        daemon = SchedulerDaemon(service.scheduler, poll_seconds=1.0)
        assert daemon.run_once() is False
        assert daemon.stats()["tick_errors"] == 1
        service.close()


def time_sleep(seconds):
    import time as time_module

    time_module.sleep(seconds)


# ======================================================= HTTP replication
class TestHttpReplicationSource:
    def build_primary(self, root, clock):
        config = PersistenceConfig(os.path.join(root, "primary"),
                                   fsync="never")
        service = GeleeService(shard_count=4, clock=clock,
                               persistence=config)
        ReplicationPrimary(service)
        return service

    def test_replica_streams_over_http(self, root, clock):
        primary = self.build_primary(root, clock)
        model = lease_model()
        primary.manager.publish_model(model, actor="alice")
        ids = seed_instances(primary, model, 6)
        primary.persistence.checkpoint()
        with GeleeHttpServer(RestRouter(service=primary)) as server:
            source = HttpReplicationSource(server.host, server.port,
                                           follower_id="remote-replica")
            replica = ReadReplica(source, shard_count=4, clock=clock)
            report = replica.sync()
            assert report["applied_seq"] == primary.persistence.journal.last_seq
            assert replica.service.manager.instance_count() == 6
            # The primary's follower table attributes the remote cursor.
            followers = primary.replication.status()["followers"]
            assert "remote-replica" in followers

            # Incremental: new primary traffic reaches the replica on the
            # next sync, through the same wire.
            primary.manager.advance(ids[0], actor="alice",
                                    to_phase_id="review")
            replica.sync()
            assert replica.service.manager.instance(
                ids[0]).current_phase_id == "review"
            assert source.describe()["type"] == "http"
        primary.close()

    def test_long_poll_wait_caches_the_batch(self, root, clock):
        primary = self.build_primary(root, clock)
        model = lease_model()
        primary.manager.publish_model(model, actor="alice")
        client = GeleeClient.in_process(router=RestRouter(service=primary))
        source = HttpReplicationSource(client=client)
        head = source.head_seq()
        seed_instances(primary, model, 1)
        new_head = source.wait_for(head + 1, timeout=1.0)
        assert new_head > head
        requests_after_wait = source.describe()["requests"]
        batch = source.read_batch(head)
        assert batch.count > 0
        # Served from the long-poll's cache: no extra round trip.
        assert source.describe()["requests"] == requests_after_wait
        assert source.describe()["cache_hits"] == 1
        primary.close()

    def test_truncated_cursor_maps_to_typed_error(self, root, clock):
        config = PersistenceConfig(os.path.join(root, "primary"),
                                   fsync="never", segment_max_records=4)
        primary = GeleeService(shard_count=4, clock=clock,
                               persistence=config)
        ReplicationPrimary(primary)
        model = lease_model()
        primary.manager.publish_model(model, actor="alice")
        seed_instances(primary, model, 8)
        # The checkpoint truncates the sealed, snapshot-covered segments, so
        # a cursor parked near the beginning is now provably stale.
        report = primary.persistence.checkpoint()
        assert report["segments_truncated"] > 0
        client = GeleeClient.in_process(router=RestRouter(service=primary))
        source = HttpReplicationSource(client=client)
        with pytest.raises(JournalTruncatedError) as excinfo:
            source.read_batch(1)
        assert excinfo.value.oldest_available > 1
        primary.close()

    def test_unreachable_primary_is_storage_error(self):
        source = HttpReplicationSource("127.0.0.1", 9, timeout=0.5)
        with pytest.raises(StorageError):
            source.head_seq()
        with pytest.raises(StorageError):
            source.bootstrap()

    def test_bootstrap_route_requires_a_primary(self, clock):
        service = GeleeService(shard_count=2, clock=clock)
        client = GeleeClient.in_process(router=RestRouter(service=service))
        with pytest.raises(GeleeApiError) as excinfo:
            client.replication_bootstrap()
        assert excinfo.value.code == "REPLICATION_INVALID"
        service.close()
