"""Legacy setup shim.

Kept so that ``pip install -e .`` works in fully offline environments where
PEP 517 editable builds are unavailable (no ``wheel`` package); all project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
