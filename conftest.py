"""Pytest bootstrap.

Makes the ``src`` layout importable even when the package has not been
installed (e.g. a fresh checkout in an offline environment), so
``pytest tests/`` works out of the box.

Also registers the ``bench`` marker and gates it: everything under
``benchmarks/`` is a benchmark, collected always (so an import error can
never hide there again) but skipped unless ``--run-bench`` is given — the
tier-1 run stays fast while ``python -m repro.benchrunner`` (or
``pytest --run-bench benchmarks/``) runs the full harness.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest  # noqa: E402 - sys.path must be patched first


def pytest_addoption(parser):
    parser.addoption(
        "--run-bench", action="store_true", default=False,
        help="run tests marked 'bench' (the benchmark suite) instead of skipping them",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "bench: benchmark/experiment regeneration; skipped unless --run-bench is given",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-bench"):
        return
    skip_bench = pytest.mark.skip(
        reason="benchmark: run with --run-bench or `python -m repro.benchrunner`"
    )
    for item in items:
        if "bench" in item.keywords:
            item.add_marker(skip_bench)
