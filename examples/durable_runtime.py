"""A durable Gelee deployment that survives being killed and restarted —
driven entirely through the v2 client SDK.

Lifecycles outlive processes: an EU deliverable takes months, a hosted
server restarts weekly.  This example runs the same deployment *twice* over
one persistence directory, every call going through
:class:`repro.client.GeleeClient` against the versioned v2 gateway (the
legacy v1 routes are deprecated and no example uses them any more):

1. **First life** — a sharded, durable router
   (``RestRouter(shard_count=4, persistence=...)``) serves a client that
   publishes a model, creates deliverables, progresses some of them, takes
   a checkpoint over the wire (``client.persistence_checkpoint()``), then
   keeps working so the write-ahead journal has a tail beyond the snapshot.
2. **The crash** — every in-memory structure is dropped.
3. **Second life** — a fresh router on the *same* persistence config; before
   serving its first request it loads the latest snapshot and replays the
   journal tail, and the owners find their deliverables exactly where they
   left them — phases, statuses, history, even pending timers.

Run with::

    python examples/durable_runtime.py
"""

import shutil
import tempfile

from repro.client import GeleeClient
from repro.persistence import PersistenceConfig
from repro.service import RestRouter


def first_life(config: PersistenceConfig) -> list:
    router = RestRouter(shard_count=4, persistence=config)
    client = GeleeClient.in_process(router=router, actor="alice")
    model = client.publish_template("eu-deliverable")
    adapter = router.service.environment.adapter("Google Doc")

    instance_ids = []
    for index in range(8):
        descriptor = adapter.create_resource(
            "D1.{} State of the art".format(index + 1), owner="alice")
        instance = client.create_instance(
            model["uri"], descriptor.to_dict(), owner="alice")
        instance_ids.append(instance["instance_id"])
    for instance_id in instance_ids:
        client.start(instance_id)

    checkpoint = client.persistence_checkpoint()
    print("Checkpoint: {} instances flushed to the {} store at journal seq {}".format(
        checkpoint["instances_flushed"],
        router.service.persistence.store.backend_name,
        checkpoint["journal_seq"]))

    # Work that only the journal tail knows about.
    for instance_id in instance_ids[:3]:
        client.advance(instance_id, to_phase_id="internalreview")
    client.annotate(instance_ids[0], "sent to reviewers before the crash")

    status = client.persistence_status()
    print("Journal: {} records, {} since the snapshot".format(
        status["journal"]["last_seq"], status["journal_records_since_snapshot"]))
    router.service.close()  # final fsync; then the process "dies"
    return instance_ids


def second_life(config: PersistenceConfig, instance_ids: list) -> None:
    router = RestRouter(shard_count=4, persistence=config)
    client = GeleeClient.in_process(router=router, actor="alice")
    recovery = client.persistence_status()["recovery"]
    print("Recovered: {} instances from the snapshot, {} journal records replayed".format(
        recovery["instances_restored"], recovery["records_replayed"]))

    for instance_id in instance_ids[:4]:
        detail = client.instance(instance_id)
        print("  {} -> phase {!r}, status {}".format(
            instance_id, detail["current_phase_id"], detail["status"]))
    history = client.history(instance_ids[0], page_size=100)
    print("History of the first deliverable survived: {} events, last: {}".format(
        len(history), history.items[-1]["kind"]))

    # The recovered deployment is fully operational — and still durable.
    client.advance(instance_ids[3], to_phase_id="internalreview")
    print("Advanced another deliverable after recovery: phase {!r}".format(
        client.instance(instance_ids[3])["current_phase_id"]))
    router.service.close()


def main() -> None:
    directory = tempfile.mkdtemp(prefix="gelee-durable-")
    try:
        config = PersistenceConfig(directory, backend="sqlite", fsync="interval")
        print("Persistence directory:", directory)
        instance_ids = first_life(config)
        print("-- process killed; every in-memory structure is gone --")
        second_life(config, instance_ids)
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
