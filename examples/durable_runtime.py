"""A durable Gelee deployment that survives being killed and restarted.

Lifecycles outlive processes: an EU deliverable takes months, a hosted
server restarts weekly.  This example runs the same deployment *twice* over
one persistence directory:

1. **First life** — a sharded service with ``persistence=`` enabled
   publishes a model, creates deliverables, progresses some of them, takes
   an explicit checkpoint (``POST /v2/runtime/persistence:checkpoint``
   does the same over the wire), then keeps working so the write-ahead
   journal has a tail beyond the snapshot.
2. **The crash** — every in-memory structure is dropped.
3. **Second life** — a fresh service is built on the *same* persistence
   config; before serving its first request it loads the latest snapshot
   and replays the journal tail, and the owners find their deliverables
   exactly where they left them — phases, statuses, history and all.

Run with::

    python examples/durable_runtime.py
"""

import shutil
import tempfile

from repro.persistence import PersistenceConfig
from repro.service import GeleeService


def first_life(config: PersistenceConfig) -> list:
    service = GeleeService(shard_count=4, persistence=config)
    model = service.publish_template("eu-deliverable", actor="coordinator")
    adapter = service.environment.adapter("Google Doc")

    instance_ids = []
    for index in range(8):
        descriptor = adapter.create_resource(
            "D1.{} State of the art".format(index + 1), owner="alice")
        instance = service.create_instance(
            model["uri"], descriptor.to_dict(), owner="alice", actor="alice")
        instance_ids.append(instance["instance_id"])
    for instance_id in instance_ids:
        service.start_instance(instance_id, actor="alice")

    checkpoint = service.persistence_checkpoint()
    print("Checkpoint: {} instances flushed to the {} store at journal seq {}".format(
        checkpoint["instances_flushed"], service.persistence.store.backend_name,
        checkpoint["journal_seq"]))

    # Work that only the journal tail knows about.
    for instance_id in instance_ids[:3]:
        service.advance_instance(instance_id, actor="alice",
                                 to_phase_id="internalreview")
    service.annotate_instance(instance_ids[0], actor="alice",
                              text="sent to reviewers before the crash")

    status = service.persistence_status()
    print("Journal: {} records, {} since the snapshot".format(
        status["journal"]["last_seq"], status["journal_records_since_snapshot"]))
    service.close()  # final fsync; then the process "dies"
    return instance_ids


def second_life(config: PersistenceConfig, instance_ids: list) -> None:
    service = GeleeService(shard_count=4, persistence=config)
    report = service.recovery_report
    print("Recovered: {} instances from the snapshot, {} journal records replayed".format(
        report.instances_restored, report.records_replayed))

    for instance_id in instance_ids[:4]:
        detail = service.instance_detail(instance_id)
        print("  {} -> phase {!r}, status {}".format(
            instance_id, detail["current_phase_id"], detail["status"]))
    history = service.instance_history(instance_ids[0])
    print("History of the first deliverable survived: {} events, last: {}".format(
        len(history), history[-1]["kind"]))

    # The recovered deployment is fully operational — and still durable.
    service.advance_instance(instance_ids[3], actor="alice",
                             to_phase_id="internalreview")
    print("Advanced another deliverable after recovery: phase {!r}".format(
        service.instance_detail(instance_ids[3])["current_phase_id"]))
    service.close()


def main() -> None:
    directory = tempfile.mkdtemp(prefix="gelee-durable-")
    try:
        config = PersistenceConfig(directory, backend="sqlite", fsync="interval")
        print("Persistence directory:", directory)
        instance_ids = first_life(config)
        print("-- process killed; every in-memory structure is gone --")
        second_life(config, instance_ids)
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
