"""Quickstart: define, execute and monitor a lifecycle in a few lines.

Mirrors the paper's elevator pitch: a non-programmer composes a small state
machine, attaches library actions to phases, binds it to a Web resource (here
a simulated Google Doc) and then *drives* it by hand — there is no workflow
engine deciding anything.

Run with::

    python examples/quickstart.py
"""

from repro import LifecycleBuilder, LifecycleManager, build_standard_environment
from repro.actions import library
from repro.monitoring import MonitoringCockpit
from repro.widgets import LifecycleWidget
from repro.widgets.renderer import render_widget_text


def main() -> None:
    # 1. Wire the standard environment: simulated Google Docs / MediaWiki / Zoho /
    #    SVN / photo-album applications, their adapters, and the action library.
    environment = build_standard_environment()
    manager = LifecycleManager(environment)

    # 2. Compose a lifecycle.  Three phases and a terminal node; the review
    #    phase shares the document and notifies reviewers when entered.
    model = (
        LifecycleBuilder("Tech report lifecycle", created_by="alice")
        .describe("Draft, review, publish a technical report.")
        .phase("Draft")
        .phase("Review")
        .phase("Published")
        .terminal("Done")
        .flow("Draft", "Review", "Published", "Done")
        .loop("Review", "Draft")
        .action("Review", library.SEND_FOR_REVIEW, "Send for review",
                reviewers=["bob", "carol"])
        .action("Published", library.POST_ON_WEBSITE, "Post on web site")
        .build()
    )
    manager.publish_model(model, actor="alice")

    # 3. Create the managed resource and attach a lifecycle instance to it.
    google_docs = environment.adapter("Google Doc")
    report = google_docs.create_resource("Quarterly tech report", owner="alice",
                                         content="First draft of the report.")
    instance = manager.instantiate(model.uri, report, owner="alice")

    # 4. The human drives the lifecycle.
    manager.start(instance.instance_id, actor="alice")
    manager.advance(instance.instance_id, actor="alice", to_phase_id="review")
    manager.advance(instance.instance_id, actor="alice", to_phase_id="published")
    manager.advance(instance.instance_id, actor="alice", to_phase_id="done")

    # 5. Inspect the outcome: widget view, monitoring, and side effects on the
    #    managed applications.
    widget = LifecycleWidget(manager, instance.instance_id, viewer="alice")
    print(render_widget_text(widget.view_model()))
    print()
    print(MonitoringCockpit(manager).render_text())
    print()
    print("Published on the project site:",
          environment.website.is_published(report.uri))
    notifications = google_docs.application.notifications(report.uri)
    print("Notifications sent by Google Docs:", len(notifications))
    for notification in notifications:
        print("  -", notification.subject, "→", ", ".join(notification.recipients))


if __name__ == "__main__":
    main()
