"""Universality: one lifecycle, many resource types.

The paper's central claim is that the same lifecycle model can manage *any*
URI-identifiable resource, because action types are resolved to
resource-type-specific implementations only when the lifecycle is
instantiated.  This example applies a single "Document review" lifecycle to
four genuinely different artifacts — a Google Doc, a MediaWiki page, a Zoho
document and an SVN file — and also shows a photo-album lifecycle, plus the
pipes-style dashboard built from a resource feed.

Run with::

    python examples/universal_resources.py
"""

from repro import LifecycleManager, build_standard_environment
from repro.templates import document_review_lifecycle, photo_story_lifecycle
from repro.widgets import LifecycleWidget
from repro.widgets.pipes import ResourceFeed, widgets_from_feed
from repro.widgets.renderer import render_widget_text


def main() -> None:
    environment = build_standard_environment()
    manager = LifecycleManager(environment)

    review = document_review_lifecycle()
    manager.publish_model(review, actor="maria")
    print("Lifecycle {!r} is applicable to: {}".format(
        review.name, ", ".join(manager.applicable_resource_types(review.uri))))

    # One instance per resource type, all following the same model.
    artifacts = [
        ("Google Doc", "State of the art survey"),
        ("MediaWiki page", "Architecture notes"),
        ("Zoho document", "Evaluation plan"),
        ("SVN file", "prototype/main.py"),
    ]
    instances = []
    for resource_type, title in artifacts:
        adapter = environment.adapter(resource_type)
        descriptor = adapter.create_resource(title, owner="maria",
                                             content="Initial content of {}".format(title))
        instance = manager.instantiate(
            review.uri, descriptor, owner="maria",
            instantiation_parameters={
                call.call_id: {"reviewers": ["reviewer-1", "reviewer-2"]}
                for phase_id, call in review.action_calls()
                if "sfr" in call.action_uri
            },
        )
        manager.start(instance.instance_id, actor="maria")
        manager.advance(instance.instance_id, actor="maria", to_phase_id="under-review")
        instances.append(instance)

    for instance in instances:
        widget = LifecycleWidget(manager, instance.instance_id, viewer="maria")
        print()
        print(render_widget_text(widget.view_model()))

    # A different artifact kind entirely: a photo album of the project meeting.
    album_model = photo_story_lifecycle()
    manager.publish_model(album_model, actor="maria")
    albums = environment.adapter("Photo album")
    album = albums.create_resource("Kick-off meeting photos", owner="maria")
    albums.application.add_photo(album.uri, "Group photo", user="maria", tags=["meeting"])
    albums.application.add_photo(album.uri, "Whiteboard", user="maria")
    album_instance = manager.instantiate(album_model.uri, album, owner="maria")
    manager.start(album_instance.instance_id, actor="maria")
    manager.move_to(album_instance.instance_id, actor="maria", phase_id="published",
                    annotation="Curation skipped — only two photos")
    print()
    print("Album published on the site:", environment.website.is_published(album.uri))

    # Pipes: feed the Google Docs listing into lifecycle widgets (a dashboard).
    feed = ResourceFeed(environment.adapter("Google Doc").application, "Google Doc")
    dashboard = widgets_from_feed(feed, manager, viewer="maria")
    print()
    print("Dashboard built from the Google Docs feed ({} documents under lifecycle):".format(
        len(dashboard)))
    for item in dashboard:
        entry = item["entry"]
        for widget in item["widgets"]:
            view = widget.view_model()
            print("  {:<30s} -> {} ({})".format(entry.title[:30], view.current_phase_name,
                                                view.status))


if __name__ == "__main__":
    main()
