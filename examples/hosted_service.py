"""The hosted service driven through the v2 client SDK: REST over HTTP,
typed envelopes, bulk/async operations, pagination, change propagation, SOAP.

Reproduces the Fig. 2 message flow end to end — now through
:class:`repro.client.GeleeClient`, the typed SDK over the versioned v2 API:

1. start the hosted Gelee service on localhost,
2. a composer designs a lifecycle through the designer session and publishes
   it via the client SDK,
3. a deliverable owner bulk-creates instances on simulated MediaWiki pages
   (``POST /v2/instances:batchCreate``) and drives one through its phases,
4. a whole cohort is progressed with one async bulk call (``202 Accepted`` +
   operation polling),
5. an action implementation reports progress through the callback endpoint,
6. the designer publishes a new model version and the owner accepts the
   propagated change (state migration),
7. the project manager pages through the monitoring cockpit,
8. the same kernel is also driven through the SOAP facade.

Run with::

    python examples/hosted_service.py
"""

from repro.actions import library
from repro.client import GeleeClient
from repro.serialization import lifecycle_to_xml
from repro.service import (
    GeleeHttpServer,
    GeleeService,
    RestRouter,
    SoapEndpoint,
    soap_envelope,
)
from repro.widgets import DesignerSession


def main() -> None:
    service = GeleeService(shard_count=4)
    router = RestRouter(service)

    with GeleeHttpServer(router) as server:
        print("Gelee hosted at", server.base_url)
        coordinator = GeleeClient.connect(server.host, server.port, actor="coordinator")
        owner = GeleeClient.connect(server.host, server.port, actor="wiki-owner")

        # --- design time -----------------------------------------------------
        designer = DesignerSession("Wiki deliverable lifecycle",
                                   service.environment.registry, composer="coordinator")
        designer.add_phase("Drafting")
        designer.add_phase("Consortium Review")
        designer.add_phase("Published")
        designer.add_phase("Closed", terminal=True)
        designer.flow("Drafting", "Consortium Review", "Published", "Closed")
        designer.add_action("Consortium Review", library.NOTIFY_REVIEWERS,
                            reviewers=["partner-a", "partner-b"])
        designer.add_action("Published", library.POST_ON_WEBSITE)
        model = designer.build()
        published = coordinator.publish_model(model=model.to_dict())
        print("published model:", published["uri"])
        model_uri = published["uri"]

        # --- runtime: one bulk call creates the whole cohort -------------------
        wiki = service.environment.adapter("MediaWiki page")
        pages = [wiki.create_resource("D3.{} wiki page".format(index),
                                      owner="wiki-owner", content="== Draft ==")
                 for index in range(1, 6)]
        batch = owner.batch_create([
            {"model_uri": model_uri, "resource": page.to_dict(), "owner": "wiki-owner"}
            for page in pages])
        print("batch created: {} ok, {} failed".format(batch.succeeded, batch.failed))
        instance_ids = [item.instance_id for item in batch.results]
        instance_id = instance_ids[0]

        owner.start(instance_id)
        owner.advance(instance_id, to_phase_id="consortium-review")

        # the rest of the cohort progresses with one async bulk call
        handle = owner.batch_advance(instance_ids[1:], wait=False)
        operation = owner.wait_operation(handle.operation_id)
        print("async batchAdvance:", operation.status,
              "-", operation.result["succeeded"], "instances moved")

        # an action reporting progress through its callback URI
        detail = owner.instance(instance_id)
        call_id = detail["visits"][-1]["invocations"][0]["call_id"]
        phase_id = detail["visits"][-1]["phase_id"]
        callback = owner.action_callback(instance_id, phase_id, call_id,
                                         status="in progress",
                                         detail="2 of 3 reviews received")
        print("callback accepted:", callback["status"])

        # --- model evolution & propagation -------------------------------------
        revised = model.new_version(created_by="coordinator")
        revised.phase("published").description = "Published after quality check"
        proposals = coordinator.propose_change(lifecycle_to_xml(revised),
                                               instance_ids=[instance_id])
        decision = owner.decide_change(proposals[0]["proposal_id"], accept=True)
        print("owner accepted change -> version", decision["to_version"])

        owner.advance(instance_id, to_phase_id="published")

        # --- monitoring: paginated cockpit -------------------------------------
        rows = 0
        for row in coordinator.iter_pages(coordinator.monitoring_table, page_size=2):
            rows += 1
            print("  {} — {} (owner {})".format(row["resource_name"],
                                                row["phase_name"], row["owner"]))
        print("monitoring rows:", rows)

        widget = coordinator.widget(instance_id, viewer="coordinator")
        print("widget for coordinator — phases:", len(widget["phases"]))

        stats = coordinator.runtime_stats()
        print("runtime: {} instances across {} shards; {} API requests".format(
            stats["instances"], stats["shard_count"], stats["api"]["requests"]))

    # --- the same kernel through SOAP --------------------------------------------
    soap = SoapEndpoint(service)
    envelope = soap_envelope("MonitoringSummary", {})
    print("SOAP summary response:")
    print(" ", soap.handle(envelope)[:120], "...")


if __name__ == "__main__":
    main()
