"""The hosted service: REST over HTTP, SOAP, designer, change propagation.

Reproduces the Fig. 2 message flow end to end:

1. start the hosted Gelee service on localhost,
2. a composer designs a lifecycle through the designer session and publishes
   it via the REST API,
3. a deliverable owner instantiates it on a simulated MediaWiki page and
   drives it through the REST API (exactly what the execution widgets do),
4. an action implementation reports progress through the callback endpoint,
5. the designer publishes a new model version and the owner accepts the
   propagated change (state migration),
6. the project manager reads the monitoring cockpit over HTTP,
7. the same kernel is also driven through the SOAP facade.

Run with::

    python examples/hosted_service.py
"""

from repro.actions import library
from repro.service import (
    GeleeHttpClient,
    GeleeHttpServer,
    GeleeService,
    RestRouter,
    SoapEndpoint,
    soap_envelope,
)
from repro.serialization import lifecycle_to_xml
from repro.widgets import DesignerSession


def main() -> None:
    service = GeleeService()
    router = RestRouter(service)

    with GeleeHttpServer(router) as server:
        print("Gelee hosted at", server.base_url)
        coordinator = GeleeHttpClient(server.host, server.port, actor="coordinator")
        owner = GeleeHttpClient(server.host, server.port, actor="wiki-owner")

        # --- design time -----------------------------------------------------
        designer = DesignerSession("Wiki deliverable lifecycle",
                                   service.environment.registry, composer="coordinator")
        designer.add_phase("Drafting")
        designer.add_phase("Consortium Review")
        designer.add_phase("Published")
        designer.add_phase("Closed", terminal=True)
        designer.flow("Drafting", "Consortium Review", "Published", "Closed")
        designer.add_action("Consortium Review", library.NOTIFY_REVIEWERS,
                            reviewers=["partner-a", "partner-b"])
        designer.add_action("Published", library.POST_ON_WEBSITE)
        model = designer.build()
        response = coordinator.post("/models", body={"model": model.to_dict()})
        print("published model:", response.status, response.body)
        model_uri = response.body["uri"]

        # --- runtime ----------------------------------------------------------
        wiki = service.environment.adapter("MediaWiki page")
        page = wiki.create_resource("D3.1 Architecture wiki page", owner="wiki-owner",
                                    content="== Architecture ==")
        created = owner.post("/instances", body={
            "model_uri": model_uri,
            "resource": page.to_dict(),
            "owner": "wiki-owner",
        })
        instance_id = created.body["instance_id"]
        print("instance:", instance_id)

        owner.post("/instances/{}/start".format(instance_id))
        owner.post("/instances/{}/advance".format(instance_id),
                   body={"to_phase_id": "consortium-review"})

        # an action reporting progress through its callback URI
        detail = service.manager.instance(instance_id).to_dict()
        call_id = detail["visits"][-1]["invocations"][0]["call_id"]
        phase_id = detail["visits"][-1]["phase_id"]
        callback = owner.post("/callbacks/{}/{}/{}".format(instance_id, phase_id, call_id),
                              body={"status": "in progress",
                                    "detail": "2 of 3 reviews received"})
        print("callback accepted:", callback.status, callback.body)

        # --- model evolution & propagation -------------------------------------
        revised = model.new_version(created_by="coordinator")
        revised.phase("published").description = "Published after quality check"
        proposals = coordinator.post("/propagations",
                                     body={"xml": lifecycle_to_xml(revised)})
        proposal_id = proposals.body[0]["proposal_id"]
        decision = owner.post("/propagations/{}/decision".format(proposal_id),
                              body={"accept": True})
        print("owner accepted change:", decision.status, decision.body)

        owner.post("/instances/{}/advance".format(instance_id),
                   body={"to_phase_id": "published"})

        # --- monitoring ---------------------------------------------------------
        table = coordinator.get("/monitoring/table")
        print("monitoring rows:", len(table.body))
        for row in table.body:
            print("  {} — {} (owner {})".format(row["resource_name"],
                                                row["phase_name"], row["owner"]))

        widget = coordinator.get("/instances/{}/widget".format(instance_id),
                                 viewer="coordinator")
        print("widget for coordinator — phases:", len(widget.body["phases"]))

    # --- the same kernel through SOAP --------------------------------------------
    soap = SoapEndpoint(service)
    envelope = soap_envelope("MonitoringSummary", {})
    print("SOAP summary response:")
    print(" ", soap.handle(envelope)[:120], "...")


if __name__ == "__main__":
    main()
