"""Clock-driven operations: deadline escalation, retries and maintenance.

The monitoring cockpit *reports* delays; the scheduler *acts* on them.
This example builds a small deliverable portfolio whose review phase must
finish within a week, simulates three weeks of project time on a
:class:`~repro.clock.SimulatedClock`, and lets the temporal automation
subsystem do everything the project coordinator used to do by polling:

* overdue reviews are escalated automatically — half the models escalate by
  *notification* (event + durable annotation), the other half *auto-advance*
  along a modelled timeout transition;
* a flaky notification action is retried with exponential backoff until it
  succeeds, without any human re-triggering it;
* a recurring maintenance job compacts the execution log on a schedule.

Everything is driven through ``service.scheduler_tick()`` — the same entry
point ``POST /v2/runtime/scheduler:tick`` exposes over the wire, and what a
:class:`~repro.scheduler.SchedulerDaemon` calls in a wall-clock deployment.

Run with::

    python examples/scheduled_operations.py
"""

from repro.actions import ActionImplementation, ActionType
from repro.clock import SimulatedClock
from repro.errors import ActionInvocationError
from repro.model import LifecycleBuilder
from repro.scheduler import SchedulerConfig
from repro.service import GeleeService

FLAKY_NOTIFY = "urn:example:flaky-notify"


def build_models():
    """Two lifecycles: one notifies on timeout, one auto-advances."""
    notify = LifecycleBuilder("Reviewed deliverable (notify on delay)")
    notify.phase("Draft")
    notify.phase("Review")
    notify.terminal("Done")
    notify.flow("Draft", "Review", "Done")
    notify.deadline("Review", days=7, escalation="notify",
                    description="review within a week")
    notify.action("Review", FLAKY_NOTIFY, "Notify the consortium")

    auto = LifecycleBuilder("Reviewed deliverable (auto-timeout)")
    auto.phase("Draft")
    auto.phase("Review")
    auto.phase("Escalated review")
    auto.terminal("Done")
    auto.flow("Draft", "Review", "Done")
    auto.transition("Escalated review", "Done")
    auto.timeout_flow("Review", "Escalated review", days=7,
                      description="stalled reviews go to the board")
    return notify.build(), auto.build()


def register_flaky_notify(service, fail_times=2):
    state = {"calls": 0}

    def flaky(context):
        state["calls"] += 1
        if state["calls"] <= fail_times:
            raise ActionInvocationError("notification gateway timeout")
        return {"notified": True, "attempt": state["calls"]}

    service.environment.registry.register_type(
        ActionType(uri=FLAKY_NOTIFY, name="Flaky notify"))
    service.environment.registry.register_implementation(
        ActionImplementation(FLAKY_NOTIFY, "Google Doc", flaky))
    return state


def main() -> None:
    clock = SimulatedClock()
    service = GeleeService(
        clock=clock, shard_count=4,
        scheduler=SchedulerConfig(
            retry_initial_delay_seconds=3600,      # first retry after an hour
            retry_backoff_factor=2.0,
            retry_max_attempts=5,
            log_compact_interval_seconds=7 * 86400,
            log_compact_max_entries=500,
        ))
    flaky_state = register_flaky_notify(service)

    notify_model, auto_model = build_models()
    service.manager.publish_model(notify_model, actor="coordinator")
    service.manager.publish_model(auto_model, actor="coordinator")

    adapter = service.environment.adapter("Google Doc")
    instance_ids = []
    for index in range(10):
        model = notify_model if index % 2 == 0 else auto_model
        doc = adapter.create_resource("D2.{} design note".format(index + 1),
                                      owner="alice")
        created = service.create_instance(model.uri, doc.to_dict(), owner="alice")
        service.start_instance(created["instance_id"], actor="alice")
        service.advance_instance(created["instance_id"], actor="alice",
                                 to_phase_id="review")
        instance_ids.append(created["instance_id"])

    print("Portfolio: {} deliverables in review, {} deadline timers armed".format(
        len(instance_ids),
        len(service.scheduler.timers.pending(kind="deadline"))))
    retry_timers = len(service.scheduler.timers.pending(kind="retry"))
    print("Flaky notification: {} invocation(s), {} failed; "
          "retry timers armed: {}".format(flaky_state["calls"], retry_timers,
                                          retry_timers))

    # --- three simulated weeks, ticked daily -------------------------------
    for day in range(1, 22):
        clock.advance(days=1)
        fired = service.scheduler_tick()
        if fired["fired"]:
            print("day {:>2}: {} timer(s) fired".format(day, fired["fired"]))

    status = service.scheduler_status()
    rollup = service.monitoring_deadlines()
    print()
    print("Escalations fired: {} ({} instances annotated)".format(
        status["escalations"], rollup["escalated"]))
    auto_escalated = service.manager.instances(model_uri=auto_model.uri,
                                               phase_id="escalated-review")
    print("Auto-advanced along the timeout transition: {}".format(
        len(auto_escalated)))
    print("Flaky notification: {} total attempts, retries dispatched: {}, "
          "pending retries: {}".format(
              flaky_state["calls"], status["retries_dispatched"],
              status["retry_states"]))
    print("Maintenance: log compaction ran {} time(s), log size now {}".format(
        status["maintenance"]["log-compact"]["runs"],
        len(service.execution_log)))
    print()
    print("The coordinator polled nothing; the clock did the chasing.")


if __name__ == "__main__":
    main()
