"""EU project portfolio (the paper's motivating scenario, §II).

Generates a synthetic LiquidPub-like project — 35 deliverables across a
consortium, all following the Fig. 1 quality plan on heterogeneous resources
(Google Docs, MediaWiki pages, Zoho documents, SVN files) — plays it with
realistic deviations, and prints the project-coordinator views: the status
table, delays, alerts and deviation report.

Run with::

    python examples/eu_project_portfolio.py
"""

from repro.monitoring import MonitoringCockpit, collect_alerts
from repro.monitoring.timeline import instance_timeline
from repro.scenarios import run_portfolio


def main() -> None:
    run = run_portfolio(deliverable_count=35, seed=7, deviation_rate=0.3,
                        completion_rate=0.6)
    manager = run.manager
    cockpit = MonitoringCockpit(manager)

    print("=" * 78)
    print("Project {} — {} deliverables, coordinator: {}".format(
        run.project.name, len(run.project.deliverables), run.project.coordinator))
    print("=" * 78)
    print(cockpit.render_text())

    print()
    print("Per-phase distribution:")
    for phase, count in sorted(cockpit.portfolio_summary().by_phase.items()):
        print("  {:<20s} {}".format(phase, count))

    print()
    print("Late deliverables (attention needed):")
    for row in cockpit.late_instances():
        print("  {:<40s} {:>6.1f} days over the {} deadline".format(
            row.resource_name[:40], row.overdue_days, row.phase_name))

    print()
    print("Alerts:")
    for alert in collect_alerts(manager)[:10]:
        print("  [{:<8s}] {:<40s} {}".format(alert.severity.value,
                                             alert.resource_name[:40], alert.message))

    deviating = cockpit.deviating_instances()
    print()
    print("Deliverables that deviated from the quality plan:", len(deviating))
    if deviating:
        sample = deviating[0]
        print("Timeline of {}:".format(sample.resource.display_name))
        for entry in instance_timeline(sample):
            print("  {}  {:<16s} {}".format(entry.timestamp.date(), entry.kind, entry.title))

    print()
    print("Phase duration statistics (days):")
    for phase, stats in sorted(cockpit.phase_duration_statistics().items()):
        print("  {:<20s} visits={:<4.0f} mean={:<6.1f} max={:.1f}".format(
            phase, stats["count"], stats["mean_days"], stats["max_days"]))


if __name__ == "__main__":
    main()
