"""A replicated Gelee deployment: primary, warm standby, failover.

One process is a durable primary serving writes; a second runtime is a
**read replica** streaming the primary's write-ahead journal
(:mod:`repro.replication`).  The replica serves every v2 read — listings,
monitoring, history — and rejects writes with a typed 409 pointing at the
primary.  When the primary dies, one ``promote()`` turns the standby into
the new primary: the remaining journal tail is drained, deadline timers
re-arm, and writes flow again.

The client demonstrates the read/write split: one
:class:`repro.client.GeleeClient` with a write endpoint (primary) and a
read endpoint (replica) routes each call to the right node automatically.

Run with::

    python examples/replicated_service.py
"""

import shutil
import tempfile

from repro.client import GeleeClient
from repro.persistence import PersistenceConfig
from repro.replication import JournalShippingSource, ReadReplica, ReplicationPrimary
from repro.service import RestRouter


def main() -> None:
    directory = tempfile.mkdtemp(prefix="gelee-replicated-")
    try:
        # -- the primary: durable, sharded, streaming its journal -----------
        config = PersistenceConfig(directory, backend="sqlite", fsync="interval")
        primary_router = RestRouter(shard_count=4, persistence=config)
        primary = primary_router.service
        ReplicationPrimary(primary)
        print("Primary persistence directory:", directory)

        seed = GeleeClient.in_process(router=primary_router, actor="alice")
        model = seed.publish_template("eu-deliverable")
        adapter = primary.environment.adapter("Google Doc")
        instance_ids = []
        for index in range(8):
            descriptor = adapter.create_resource(
                "D2.{} Architecture".format(index + 1), owner="alice")
            instance = seed.create_instance(model["uri"], descriptor.to_dict(),
                                            owner="alice")
            instance_ids.append(instance["instance_id"])
        for instance_id in instance_ids:
            seed.start(instance_id)

        # -- the warm standby: bootstrap + stream ---------------------------
        replica = ReadReplica(JournalShippingSource(config), shard_count=4,
                              clock=primary.manager.clock,
                              primary_hint="gelee-primary:8080")
        sync = replica.sync()
        print("Replica streamed {} journal records (lag {} records)".format(
            sync["applied"], sync["lag_records"]))

        # -- one client, split endpoints: GETs -> replica, writes -> primary
        client = GeleeClient.in_process(router=primary_router,
                                        read_router=replica.router(),
                                        actor="alice")
        page = client.list_instances(page_size=100)
        print("Read endpoint (replica) lists {} deliverables".format(len(page)))
        client.advance(instance_ids[0], to_phase_id="internalreview")
        replica.sync()
        detail = client.instance(instance_ids[0])
        print("Write went to the primary; replica already serves phase {!r}".format(
            detail["current_phase_id"]))
        try:
            client.call("POST", "/v2/instances/{}:advance".format(instance_ids[1]),
                        body={"to_phase_id": "internalreview"}, endpoint="read")
        except Exception as exc:
            print("Replica rejects writes: {}".format(exc))
        lag = client.replication_status()
        print("Replication status: role={role} applied_seq={applied_seq} "
              "lag={lag_records}".format(**lag))

        # -- the failover ---------------------------------------------------
        # A last write lands on the primary that the standby never polled:
        # it is durable in the journal, so the promotion drain picks it up.
        client.advance(instance_ids[3], to_phase_id="internalreview")
        print("-- primary killed; only its journal files survive --")
        del seed, primary, primary_router

        report = client.promote_replica()
        print("Promoted the standby: {} records drained, {} timers re-armed, "
              "{:.1f} ms".format(report["records_drained"],
                                 report["pending_timers"],
                                 report["duration_ms"]))
        promoted = GeleeClient.in_process(router=replica.router(), actor="alice")
        print("Nothing journaled was lost: un-streamed deliverable is in "
              "phase {!r}".format(
                  promoted.instance(instance_ids[3])["current_phase_id"]))
        promoted.advance(instance_ids[2], to_phase_id="internalreview")
        print("Writes accepted after promotion: phase {!r}".format(
            promoted.instance(instance_ids[2])["current_phase_id"]))
        print("New primary role:", promoted.replication_status()["role"])
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
