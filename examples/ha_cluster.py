"""A self-healing Gelee cluster: leases, fencing, automatic failover.

``examples/replicated_service.py`` showed manual failover — somebody runs
``promote()``.  This example takes the human out of the loop with the
coordination subsystem (:mod:`repro.coordination`):

* the **primary** enrols in leader election (a shared lease store with a
  short TTL) and serves writes fenced by its epoch's token;
* a **standby** streams the primary's journal and runs a
  :class:`~repro.coordination.FailoverSupervisor`: a health monitor probes
  the primary, and once the failure threshold is crossed *and* the
  primary's lease has expired, the supervisor wins the next epoch and
  promotes the replica on its own;
* the deposed primary's late write bounces off the **stale fencing
  token** — split-brain is fenced from both sides, automatically;
* one **span tree** follows the last pre-kill request from the gateway
  through dispatch and the journal onto the promoted node, and the
  **SLO engine** turns the killed primary's stalled election heartbeats
  into an ``alert.fired`` / ``alert.resolved`` pair.

Run with::

    python examples/ha_cluster.py
"""

import shutil
import tempfile
import time

from repro.client import GeleeClient
from repro.coordination import (
    CoordinationConfig,
    FailoverSupervisor,
    HealthMonitor,
    MemoryLeaseStore,
)
from repro.errors import StaleFencingTokenError
from repro.persistence import PersistenceConfig
from repro.persistence.journal import scan_records
from repro.replication import JournalShippingSource, ReadReplica, ReplicationPrimary
from repro.service import GeleeService, RestRouter

#: Deliberately tiny so the demo's failover window is sub-second;
#: production deployments use 10-30s.
LEASE_TTL = 0.5


def _assert_exposition(text, required):
    """Validate Prometheus text format 0.0.4 and require some series."""
    assert text.endswith("\n"), "exposition must end with a newline"
    types = {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            types[name] = kind
        elif line.startswith("#") or not line:
            continue
        else:
            _, _, value = line.rpartition(" ")
            float(value)  # every sample line ends in a parseable number
    for name in required:
        assert name in types, "missing metric family {}".format(name)
    return types


def main() -> None:
    directory = tempfile.mkdtemp(prefix="gelee-ha-")
    try:
        # -- the primary: durable, replicating, and *enrolled* --------------
        lease_store = MemoryLeaseStore()
        config = PersistenceConfig(directory, backend="sqlite",
                                   fsync="interval")
        # Pooled completions (completion_workers) put the dispatcher's
        # work through the shared worker pool, so the scrape below also
        # carries the pool's queue-depth distribution.
        primary = GeleeService(
            shard_count=4, persistence=config, completion_workers=2,
            coordination=CoordinationConfig(store=lease_store,
                                            node_id="primary-node",
                                            ttl_seconds=LEASE_TTL,
                                            fence_revalidate_seconds=0))
        primary_router = RestRouter(service=primary)
        ReplicationPrimary(primary)
        election = primary.coordination_status()
        print("Primary elected itself: role={role} epoch={token}".format(
            **election))

        seed = GeleeClient.in_process(router=primary_router, actor="alice")
        model = seed.publish_template("eu-deliverable")
        adapter = primary.environment.adapter("Google Doc")
        instance_ids = []
        for index in range(8):
            descriptor = adapter.create_resource(
                "D2.{} Architecture".format(index + 1), owner="alice")
            instance = seed.create_instance(model["uri"], descriptor.to_dict(),
                                            owner="alice")
            instance_ids.append(instance["instance_id"])
        for instance_id in instance_ids:
            seed.start(instance_id)

        # -- the standby: stream + supervise --------------------------------
        replica = ReadReplica(JournalShippingSource(config), shard_count=4,
                              clock=primary.manager.clock,
                              replica_id="standby-node")
        sync = replica.sync()
        print("Standby streamed {} journal records (lag {})".format(
            sync["applied"], sync["lag_records"]))

        alive = {"up": True}
        monitor = HealthMonitor(lambda: alive["up"], failure_threshold=2,
                                probe_interval_seconds=0.05)
        supervisor = FailoverSupervisor(replica, monitor, store=lease_store,
                                        ttl_seconds=LEASE_TTL,
                                        fence_revalidate_seconds=0)
        print("Supervisor watching: {}".format(supervisor.poll()["state"]))

        # -- kill the primary mid-traffic -----------------------------------
        # A last write the standby never streamed: durable in the journal
        # only.  Then the primary stops heartbeating and stops answering
        # probes — no clean shutdown, no resign.  Capture this request's
        # id: its span tree is fetched from the promoted node later.
        advance_response = primary_router.post(
            "/v2/instances/{}:advance".format(instance_ids[3]),
            body={"to_phase_id": "internalreview"}, actor="alice")
        assert advance_response.status == 200
        traced_request_id = advance_response.headers["X-Request-Id"]

        # While the cluster is healthy each node learns about the other,
        # and each rolls a first point into its history rings; the
        # federated view and the rings must both survive what follows.
        primary.cluster_register("standby-node", router=replica.router())
        replica.service.cluster_register("primary-node",
                                         router=primary_router)
        assert primary_router.post(
            "/v2/runtime/telemetry/history:capture").status == 200
        pre_kill_captures = replica.router().post(
            "/v2/runtime/telemetry/history:capture"
        ).body["data"]["stats"]["captures"]
        healthy_view = primary_router.get("/v2/runtime/cluster").body["data"]
        assert healthy_view["node_count"] == 2
        assert not healthy_view["partial"]
        print("Cluster view from the primary: {} nodes, all reachable".format(
            healthy_view["node_count"]))

        journal_head = primary.persistence.journal.last_seq
        alive["up"] = False
        print("-- primary killed (journal head seq {}) --".format(journal_head))

        # The supervisor does the rest on its own: detect, wait out the
        # dead primary's lease, win the next epoch, promote.
        killed_at = time.perf_counter()
        report = None
        while time.perf_counter() - killed_at < 30.0:
            poll = supervisor.poll()
            if poll["state"] == "failover":
                report = poll
                break
            time.sleep(0.02)
        assert report is not None, "automatic failover did not happen"
        print("Automatic failover in {:.0f} ms wall: epoch={} "
              "detect→promote={:.0f} ms".format(
                  (time.perf_counter() - killed_at) * 1000, report["token"],
                  report["detection_to_promotion_seconds"] * 1000))

        # -- zero journaled-record loss, no human involved ------------------
        promotion = report["promotion"]
        assert promotion["journal_seq"] == journal_head, \
            "journal records were lost in failover"
        promoted = GeleeClient.in_process(router=replica.router(),
                                          actor="alice")
        detail = promoted.instance(instance_ids[3])
        assert detail["current_phase_id"] == "internalreview"
        print("Zero loss: un-streamed write survived "
              "(phase {!r})".format(detail["current_phase_id"]))
        promoted.advance(instance_ids[2], to_phase_id="internalreview")
        print("New primary serves writes; coordination: role={role} "
              "epoch={token}".format(**promoted.coordination_status()))

        # -- the deposed primary's late write is fenced ---------------------
        try:
            primary.manager.advance(instance_ids[4], actor="alice",
                                    to_phase_id="internalreview")
            raise AssertionError("stale write was not fenced!")
        except StaleFencingTokenError as exc:
            print("Deposed primary fenced: {}".format(exc))
        assert primary.persistence.journal.last_seq == journal_head, \
            "a stale write reached the journal"
        print("Cluster healed itself; split-brain impossible.")

        # -- observability: both nodes scrape, one id is followable ---------
        # /v2/metrics must be valid Prometheus text on the old primary and
        # on the promoted node, with the core series of every subsystem.
        primary_scrape = primary_router.get("/v2/metrics")
        assert primary_scrape.headers["Content-Type"].startswith("text/plain")
        _assert_exposition(primary_scrape.body, (
            "gelee_api_requests_total",
            "gelee_dispatch_wait_seconds",
            "gelee_journal_append_seconds",
            "gelee_election_transitions_total",
            "gelee_lock_wait_seconds",
            "gelee_queue_depth",
        ))
        _assert_exposition(promoted.metrics(), (
            "gelee_dispatch_wait_seconds",
            "gelee_replication_lag_records",
            "gelee_replication_records_applied_total",
            "gelee_election_transitions_total",
        ))
        rollup = promoted.monitoring_summary()["telemetry"]
        print("Metrics scrape OK on both nodes; rollup: "
              "{} api requests, {} election transitions".format(
                  int(rollup["api_requests"]),
                  int(rollup["election_transitions"])))

        # One request id, followable across the cluster: ids the gateway
        # stamped on the dead primary's writes are in its journal *and* in
        # the promoted node's applied copies of the same records.
        journal_ids = {record.payload["origin_request_id"]
                       for record in scan_records(config.journal_directory)
                       if "origin_request_id" in record.payload}
        applied_ids = {entry.payload["origin_request_id"]
                       for entry in replica.service.execution_log.entries()
                       if "origin_request_id" in entry.payload}
        followable = journal_ids & applied_ids
        assert followable, "no request id survived journal -> replica"
        print("{} request ids followable from gateway through journal to "
              "the promoted node (e.g. {})".format(
                  len(followable), sorted(followable)[0]))

        # -- one request id, one span *tree*, across the failover -----------
        # The pre-kill advance was spanned from the gateway down to its
        # journal fsync; the promotion's final sync then extended the same
        # trace with the replica's apply spans.  The whole timeline is
        # retrievable from the *promoted* node under the original id.
        trace_response = replica.router().get(
            "/v2/runtime/traces/{}".format(traced_request_id))
        assert trace_response.status == 200, "span tree lost in failover"
        trace_doc = trace_response.body["data"]
        span_names = {span["name"] for span in trace_doc["spans"]}
        required_spans = {"gateway.request", "shard.apply", "action.dispatch",
                          "dispatch.wait", "dispatch.execute",
                          "journal.append", "replication.apply"}
        missing = required_spans - span_names
        assert not missing, "span tree incomplete: missing {}".format(missing)
        assert trace_doc["tree"][0]["name"] == "gateway.request"
        print("Span tree for {}: {} spans ({}) retrievable on the "
              "promoted node".format(traced_request_id,
                                     trace_doc["span_count"],
                                     ", ".join(sorted(span_names))))

        # -- the SLO engine notices what the kill broke ----------------------
        # The killed primary's election heartbeats stopped; the stock
        # ``election-heartbeat`` rule turns that stall into an
        # ``alert.fired`` bus event, and the new leader's next renewal
        # resolves it.  Alerts are ordinary kernel events, so they flow
        # through the promoted node's bus like everything else.
        alert_events = []
        replica.service.bus.subscribe("alert.", alert_events.append)
        baseline = promoted.evaluate_alerts()
        assert baseline["transitions"] == [], "healthy cluster must be quiet"
        stalled = promoted.evaluate_alerts()  # no renewals since baseline
        fired = [t for t in stalled["transitions"]
                 if t["kind"] == "alert.fired"]
        assert [t["rule"] for t in fired] == ["election-heartbeat"], \
            "the heartbeat stall should fire exactly one alert"
        print("SLO breach detected: {} ({})".format(
            fired[0]["rule"], fired[0]["payload"]["description"].strip()))
        supervisor.heartbeat()  # the new leader renews its lease
        recovered = promoted.evaluate_alerts()
        resolved = [t for t in recovered["transitions"]
                    if t["kind"] == "alert.resolved"]
        assert [t["rule"] for t in resolved] == ["election-heartbeat"]
        assert [event.kind for event in alert_events] == \
            ["alert.fired", "alert.resolved"], "alerts must ride the bus"
        alert_status = promoted.alerts()
        assert alert_status["firing"] == 0
        rollup = promoted.monitoring_summary()["alerts"]
        assert rollup["firing"] == 0 and rollup["rules"] == 5
        print("Alert resolved after the new leader's renewal; cockpit "
              "rollup clean ({} rules, {} firing)".format(
                  rollup["rules"], rollup["firing"]))

        # -- the flight recorder: logs, history, cluster view ----------------
        # The gateway logged every request into the process log ring; the
        # pre-kill advance's line is retrievable *by its request id* from
        # the promoted node, next to the span tree fetched above.
        log_doc = replica.router().get("/v2/runtime/logs",
                                       trace_id=traced_request_id).body["data"]
        records = log_doc["records"]
        assert records, "traced request left no log line"
        assert all(r["trace_id"] == traced_request_id for r in records)
        assert any(r["event"] == "request.handled" for r in records)
        print("Log ring: {} record(s) for {} ({})".format(
            len(records), traced_request_id,
            ", ".join(sorted({r["event"] for r in records}))))

        # The history rings captured before the kill are the same rings
        # the promoted node serves now — promotion does not rebuild the
        # service, so the pre-failover points are still there and new
        # captures keep extending them.
        capture = replica.router().post(
            "/v2/runtime/telemetry/history:capture").body["data"]
        assert capture["stats"]["captures"] > pre_kill_captures, \
            "history rings were reset by the promotion"
        history = replica.router().get(
            "/v2/runtime/telemetry/history",
            series="gelee_api_requests_total").body["data"]
        assert history["series"], "history rings empty after failover"
        print("History rings survived promotion: {} captures, {} series "
              "for gelee_api_requests_total".format(
                  capture["stats"]["captures"], history["series_matched"]))

        # The merged cluster view survives promotion too.  The deposed
        # primary still answers in-process, so the first look shows both
        # rows — with the coordination columns agreeing that the standby
        # now leads.
        view = replica.router().get("/v2/runtime/cluster").body["data"]
        rows = {row["node_id"]: row for row in view["nodes"]}
        assert view["reported_by"] == "standby-node"
        assert rows["standby-node"]["role"] == "primary"
        assert rows["standby-node"]["coordination"]["is_leader"]
        assert not rows["primary-node"]["coordination"]["is_leader"]
        print("Cluster view from the promoted node: {} nodes, leader={}".format(
            view["node_count"],
            rows["standby-node"]["coordination"]["leader_id"]))

        # In a real deployment the standby knows the old primary by its
        # network address — and that address died with the process.
        # Re-point the registration at the dead endpoint: the merged view
        # stays HTTP 200 but marks the row NODE_UNREACHABLE and the
        # envelope partial, which is exactly what a dashboard should show
        # while the dead node is the thing being debugged.
        replica.service.cluster_register("primary-node", host="127.0.0.1",
                                         port=9)
        view = replica.router().get("/v2/runtime/cluster").body["data"]
        assert view["partial"] and view["unreachable"] == 1
        dead = {row["node_id"]: row for row in view["nodes"]}["primary-node"]
        assert not dead["reachable"]
        assert dead["error"]["code"] == "NODE_UNREACHABLE"
        print("Dead primary reported, not hidden: partial view, "
              "primary-node -> {}".format(dead["error"]["code"]))

        # And the contention profile: a few sampler ticks on the promoted
        # node produce a bounded flame tree at /v2/runtime/profile.
        replica.router().post("/v2/runtime/profile:start",
                              body={"interval_seconds": 0.005})
        time.sleep(0.06)
        replica.router().post("/v2/runtime/profile:stop")
        profile = replica.router().get("/v2/runtime/profile").body["data"]
        assert profile["samples"] >= 1 and not profile["running"]
        print("Profiler: {} samples, {} flame nodes".format(
            profile["samples"], profile["nodes"]))
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
