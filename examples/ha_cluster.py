"""A self-healing Gelee cluster: leases, fencing, automatic failover.

``examples/replicated_service.py`` showed manual failover — somebody runs
``promote()``.  This example takes the human out of the loop with the
coordination subsystem (:mod:`repro.coordination`):

* the **primary** enrols in leader election (a shared lease store with a
  short TTL) and serves writes fenced by its epoch's token;
* a **standby** streams the primary's journal and runs a
  :class:`~repro.coordination.FailoverSupervisor`: a health monitor probes
  the primary, and once the failure threshold is crossed *and* the
  primary's lease has expired, the supervisor wins the next epoch and
  promotes the replica on its own;
* the deposed primary's late write bounces off the **stale fencing
  token** — split-brain is fenced from both sides, automatically;
* one **span tree** follows the last pre-kill request from the gateway
  through dispatch and the journal onto the promoted node, and the
  **SLO engine** turns the killed primary's stalled election heartbeats
  into an ``alert.fired`` / ``alert.resolved`` pair.

Run with::

    python examples/ha_cluster.py
"""

import shutil
import tempfile
import time

from repro.client import GeleeClient
from repro.coordination import (
    CoordinationConfig,
    FailoverSupervisor,
    HealthMonitor,
    MemoryLeaseStore,
)
from repro.errors import StaleFencingTokenError
from repro.persistence import PersistenceConfig
from repro.persistence.journal import scan_records
from repro.replication import JournalShippingSource, ReadReplica, ReplicationPrimary
from repro.service import RestRouter

#: Deliberately tiny so the demo's failover window is sub-second;
#: production deployments use 10-30s.
LEASE_TTL = 0.5


def _assert_exposition(text, required):
    """Validate Prometheus text format 0.0.4 and require some series."""
    assert text.endswith("\n"), "exposition must end with a newline"
    types = {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            types[name] = kind
        elif line.startswith("#") or not line:
            continue
        else:
            _, _, value = line.rpartition(" ")
            float(value)  # every sample line ends in a parseable number
    for name in required:
        assert name in types, "missing metric family {}".format(name)
    return types


def main() -> None:
    directory = tempfile.mkdtemp(prefix="gelee-ha-")
    try:
        # -- the primary: durable, replicating, and *enrolled* --------------
        lease_store = MemoryLeaseStore()
        config = PersistenceConfig(directory, backend="sqlite",
                                   fsync="interval")
        primary_router = RestRouter(
            shard_count=4, persistence=config,
            coordination=CoordinationConfig(store=lease_store,
                                            node_id="primary-node",
                                            ttl_seconds=LEASE_TTL,
                                            fence_revalidate_seconds=0))
        primary = primary_router.service
        ReplicationPrimary(primary)
        election = primary.coordination_status()
        print("Primary elected itself: role={role} epoch={token}".format(
            **election))

        seed = GeleeClient.in_process(router=primary_router, actor="alice")
        model = seed.publish_template("eu-deliverable")
        adapter = primary.environment.adapter("Google Doc")
        instance_ids = []
        for index in range(8):
            descriptor = adapter.create_resource(
                "D2.{} Architecture".format(index + 1), owner="alice")
            instance = seed.create_instance(model["uri"], descriptor.to_dict(),
                                            owner="alice")
            instance_ids.append(instance["instance_id"])
        for instance_id in instance_ids:
            seed.start(instance_id)

        # -- the standby: stream + supervise --------------------------------
        replica = ReadReplica(JournalShippingSource(config), shard_count=4,
                              clock=primary.manager.clock,
                              replica_id="standby-node")
        sync = replica.sync()
        print("Standby streamed {} journal records (lag {})".format(
            sync["applied"], sync["lag_records"]))

        alive = {"up": True}
        monitor = HealthMonitor(lambda: alive["up"], failure_threshold=2,
                                probe_interval_seconds=0.05)
        supervisor = FailoverSupervisor(replica, monitor, store=lease_store,
                                        ttl_seconds=LEASE_TTL,
                                        fence_revalidate_seconds=0)
        print("Supervisor watching: {}".format(supervisor.poll()["state"]))

        # -- kill the primary mid-traffic -----------------------------------
        # A last write the standby never streamed: durable in the journal
        # only.  Then the primary stops heartbeating and stops answering
        # probes — no clean shutdown, no resign.  Capture this request's
        # id: its span tree is fetched from the promoted node later.
        advance_response = primary_router.post(
            "/v2/instances/{}:advance".format(instance_ids[3]),
            body={"to_phase_id": "internalreview"}, actor="alice")
        assert advance_response.status == 200
        traced_request_id = advance_response.headers["X-Request-Id"]
        journal_head = primary.persistence.journal.last_seq
        alive["up"] = False
        print("-- primary killed (journal head seq {}) --".format(journal_head))

        # The supervisor does the rest on its own: detect, wait out the
        # dead primary's lease, win the next epoch, promote.
        killed_at = time.perf_counter()
        report = None
        while time.perf_counter() - killed_at < 30.0:
            poll = supervisor.poll()
            if poll["state"] == "failover":
                report = poll
                break
            time.sleep(0.02)
        assert report is not None, "automatic failover did not happen"
        print("Automatic failover in {:.0f} ms wall: epoch={} "
              "detect→promote={:.0f} ms".format(
                  (time.perf_counter() - killed_at) * 1000, report["token"],
                  report["detection_to_promotion_seconds"] * 1000))

        # -- zero journaled-record loss, no human involved ------------------
        promotion = report["promotion"]
        assert promotion["journal_seq"] == journal_head, \
            "journal records were lost in failover"
        promoted = GeleeClient.in_process(router=replica.router(),
                                          actor="alice")
        detail = promoted.instance(instance_ids[3])
        assert detail["current_phase_id"] == "internalreview"
        print("Zero loss: un-streamed write survived "
              "(phase {!r})".format(detail["current_phase_id"]))
        promoted.advance(instance_ids[2], to_phase_id="internalreview")
        print("New primary serves writes; coordination: role={role} "
              "epoch={token}".format(**promoted.coordination_status()))

        # -- the deposed primary's late write is fenced ---------------------
        try:
            primary.manager.advance(instance_ids[4], actor="alice",
                                    to_phase_id="internalreview")
            raise AssertionError("stale write was not fenced!")
        except StaleFencingTokenError as exc:
            print("Deposed primary fenced: {}".format(exc))
        assert primary.persistence.journal.last_seq == journal_head, \
            "a stale write reached the journal"
        print("Cluster healed itself; split-brain impossible.")

        # -- observability: both nodes scrape, one id is followable ---------
        # /v2/metrics must be valid Prometheus text on the old primary and
        # on the promoted node, with the core series of every subsystem.
        primary_scrape = primary_router.get("/v2/metrics")
        assert primary_scrape.headers["Content-Type"].startswith("text/plain")
        _assert_exposition(primary_scrape.body, (
            "gelee_api_requests_total",
            "gelee_dispatch_wait_seconds",
            "gelee_journal_append_seconds",
            "gelee_election_transitions_total",
        ))
        _assert_exposition(promoted.metrics(), (
            "gelee_dispatch_wait_seconds",
            "gelee_replication_lag_records",
            "gelee_replication_records_applied_total",
            "gelee_election_transitions_total",
        ))
        rollup = promoted.monitoring_summary()["telemetry"]
        print("Metrics scrape OK on both nodes; rollup: "
              "{} api requests, {} election transitions".format(
                  int(rollup["api_requests"]),
                  int(rollup["election_transitions"])))

        # One request id, followable across the cluster: ids the gateway
        # stamped on the dead primary's writes are in its journal *and* in
        # the promoted node's applied copies of the same records.
        journal_ids = {record.payload["origin_request_id"]
                       for record in scan_records(config.journal_directory)
                       if "origin_request_id" in record.payload}
        applied_ids = {entry.payload["origin_request_id"]
                       for entry in replica.service.execution_log.entries()
                       if "origin_request_id" in entry.payload}
        followable = journal_ids & applied_ids
        assert followable, "no request id survived journal -> replica"
        print("{} request ids followable from gateway through journal to "
              "the promoted node (e.g. {})".format(
                  len(followable), sorted(followable)[0]))

        # -- one request id, one span *tree*, across the failover -----------
        # The pre-kill advance was spanned from the gateway down to its
        # journal fsync; the promotion's final sync then extended the same
        # trace with the replica's apply spans.  The whole timeline is
        # retrievable from the *promoted* node under the original id.
        trace_response = replica.router().get(
            "/v2/runtime/traces/{}".format(traced_request_id))
        assert trace_response.status == 200, "span tree lost in failover"
        trace_doc = trace_response.body["data"]
        span_names = {span["name"] for span in trace_doc["spans"]}
        required_spans = {"gateway.request", "shard.apply", "action.dispatch",
                          "dispatch.wait", "dispatch.execute",
                          "journal.append", "replication.apply"}
        missing = required_spans - span_names
        assert not missing, "span tree incomplete: missing {}".format(missing)
        assert trace_doc["tree"][0]["name"] == "gateway.request"
        print("Span tree for {}: {} spans ({}) retrievable on the "
              "promoted node".format(traced_request_id,
                                     trace_doc["span_count"],
                                     ", ".join(sorted(span_names))))

        # -- the SLO engine notices what the kill broke ----------------------
        # The killed primary's election heartbeats stopped; the stock
        # ``election-heartbeat`` rule turns that stall into an
        # ``alert.fired`` bus event, and the new leader's next renewal
        # resolves it.  Alerts are ordinary kernel events, so they flow
        # through the promoted node's bus like everything else.
        alert_events = []
        replica.service.bus.subscribe("alert.", alert_events.append)
        baseline = promoted.evaluate_alerts()
        assert baseline["transitions"] == [], "healthy cluster must be quiet"
        stalled = promoted.evaluate_alerts()  # no renewals since baseline
        fired = [t for t in stalled["transitions"]
                 if t["kind"] == "alert.fired"]
        assert [t["rule"] for t in fired] == ["election-heartbeat"], \
            "the heartbeat stall should fire exactly one alert"
        print("SLO breach detected: {} ({})".format(
            fired[0]["rule"], fired[0]["payload"]["description"].strip()))
        supervisor.heartbeat()  # the new leader renews its lease
        recovered = promoted.evaluate_alerts()
        resolved = [t for t in recovered["transitions"]
                    if t["kind"] == "alert.resolved"]
        assert [t["rule"] for t in resolved] == ["election-heartbeat"]
        assert [event.kind for event in alert_events] == \
            ["alert.fired", "alert.resolved"], "alerts must ride the bus"
        alert_status = promoted.alerts()
        assert alert_status["firing"] == 0
        rollup = promoted.monitoring_summary()["alerts"]
        assert rollup["firing"] == 0 and rollup["rules"] == 5
        print("Alert resolved after the new leader's renewal; cockpit "
              "rollup clean ({} rules, {} firing)".format(
                  rollup["rules"], rollup["firing"]))
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
