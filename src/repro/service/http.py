"""Local HTTP transport for the REST facade.

The paper's system is hosted; for the reproduction we provide a small HTTP
server built on :mod:`http.server` that adapts real HTTP requests onto the
transport-independent :class:`~repro.service.rest.RestRouter`, plus a matching
client.  The server runs on a background thread and binds to localhost only —
it exists so the architecture experiment (E4) can exercise a genuine
request/response round trip, not to be an internet-facing deployment.
"""

from __future__ import annotations

import json
import threading
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional
from urllib.parse import parse_qsl, urlencode, urlsplit

from .rest import Request, Response, RestRouter


class _RouterRequestHandler(BaseHTTPRequestHandler):
    """Adapts BaseHTTPRequestHandler onto the RestRouter."""

    router: RestRouter = None  # set by the server factory
    protocol_version = "HTTP/1.1"

    # Silence the default stderr logging.
    def log_message(self, format, *args):  # noqa: A002 - BaseHTTPRequestHandler API
        pass

    def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        parts = urlsplit(self.path)
        query = dict(parse_qsl(parts.query))
        body: Optional[Dict[str, Any]] = None
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            raw = self.rfile.read(length)
            try:
                body = json.loads(raw.decode("utf-8")) if raw else None
            except ValueError:
                self._send(Response(400, {"error": "request body is not valid JSON"}))
                return
        actor = self.headers.get("X-Gelee-Actor") or query.get("actor")
        request = Request(method=method, path=parts.path, query=query, body=body, actor=actor)
        # Honour a caller-supplied correlation id: upstream gateways pass
        # their own X-Request-Id so one trace id spans both services.  The
        # RequestIdMiddleware setdefault keeps it; absent or blank, the
        # middleware mints one as usual.
        inbound_id = (self.headers.get("X-Request-Id") or "").strip()
        if inbound_id:
            request.context["request_id"] = inbound_id[:128]
        response = self.router.handle(request)
        self._send(response)

    def _send(self, response: Response) -> None:
        # A route that set its own Content-Type (the Prometheus exposition
        # at /v2/metrics) ships its body verbatim; everything else is JSON.
        content_type = response.headers.get("Content-Type")
        if content_type is not None and isinstance(response.body, str):
            payload = response.body.encode("utf-8")
        else:
            payload = json.dumps(response.body, default=str).encode("utf-8")
            content_type = "application/json"
        self.send_response(response.status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in response.headers.items():
            if name.lower() != "content-type":
                self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)


class GeleeHttpServer:
    """Threaded localhost HTTP server exposing a RestRouter."""

    def __init__(self, router: RestRouter, host: str = "127.0.0.1", port: int = 0):
        handler = type("BoundHandler", (_RouterRequestHandler,), {"router": router})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None
        self._router = router

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def base_url(self) -> str:
        return "http://{}:{}".format(self.host, self.port)

    def start(self) -> "GeleeHttpServer":
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self, close_service: bool = False) -> None:
        """Stop serving.

        ``close_service=True`` also closes the underlying
        :class:`~repro.service.api.GeleeService` — on a durable deployment
        that is the final journal flush/fsync, so a server that *owns* its
        service should pass it (the context-manager form does).  Leave it
        off when the service is shared and outlives this server.
        """
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if close_service:
            self._router.service.close()

    def __enter__(self) -> "GeleeHttpServer":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop(close_service=True)


class GeleeHttpClient:
    """Minimal JSON-over-HTTP client for the Gelee REST API."""

    def __init__(self, host: str, port: int, actor: str = None, timeout: float = 10.0):
        self._host = host
        self._port = port
        self._actor = actor
        self._timeout = timeout

    def get(self, path: str, **query: str) -> Response:
        return self._request("GET", self._with_query(path, query))

    def post(self, path: str, body: Dict[str, Any] = None, **query: str) -> Response:
        return self._request("POST", self._with_query(path, query), body=body or {})

    # ------------------------------------------------------------------ internal
    def _with_query(self, path: str, query: Dict[str, str]) -> str:
        if not query:
            return path
        encoded = urlencode({key: str(value) for key, value in query.items()})
        separator = "&" if "?" in path else "?"
        return path + separator + encoded

    def _request(self, method: str, path: str, body: Dict[str, Any] = None) -> Response:
        connection = HTTPConnection(self._host, self._port, timeout=self._timeout)
        try:
            headers = {"Content-Type": "application/json"}
            if self._actor:
                headers["X-Gelee-Actor"] = self._actor
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            connection.request(method, path, body=payload, headers=headers)
            raw = connection.getresponse()
            data = raw.read().decode("utf-8")
            try:
                parsed = json.loads(data) if data else None
            except ValueError:
                # Non-JSON bodies (the /v2/metrics text exposition) come
                # through as the raw string.
                parsed = data
            return Response(raw.status, parsed, headers=dict(raw.getheaders()))
        finally:
            connection.close()
