"""Transport-neutral request/response objects and parameter parsing.

Every wire format of the hosted service — the in-process router, the
localhost HTTP server, the client SDK — exchanges the same two objects:
:class:`Request` and :class:`Response`.  They carry no socket state, so the
same route table and middleware pipeline serve all transports, and tests can
drive the full service without opening a port.

The module also centralises query/body parameter parsing.  Query strings
deliver every value as text, so ``bool("false")`` and friends are classic
traps; :func:`parse_bool` and :func:`parse_str_list` convert the common
shapes and raise :class:`~repro.errors.ServiceError` (HTTP 400) on anything
malformed instead of silently misreading it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..errors import ServiceError

_TRUE_WORDS = frozenset({"1", "true", "yes", "on"})
_FALSE_WORDS = frozenset({"0", "false", "no", "off"})


def parse_bool(value: Any, name: str = "value", default: bool = False) -> bool:
    """Parse a boolean out of a JSON body or a query string.

    Accepts real booleans and the usual textual spellings (``true``/``false``,
    ``1``/``0``, ``yes``/``no``, ``on``/``off``, case-insensitive).  ``None``
    yields ``default``; anything else raises :class:`ServiceError` so the
    service answers 400 instead of treating ``"false"`` as truthy.
    """
    if value is None:
        return default
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in _TRUE_WORDS:
            return True
        if lowered in _FALSE_WORDS or lowered == "":
            return False
    raise ServiceError("parameter {!r} is not a boolean: {!r}".format(name, value))


def parse_str_list(value: Any, name: str = "value") -> Optional[list]:
    """Parse a list of strings from a JSON body or a query string.

    A JSON array must contain only non-empty strings; a query string is split
    on commas (``"a,b,c"``).  ``None`` stays ``None`` (meaning "not given").
    Anything else — numbers, nested lists, empty items like ``"a,,b"`` —
    raises :class:`ServiceError`.
    """
    if value is None:
        return None
    if isinstance(value, str):
        items = [item.strip() for item in value.split(",")]
        if not any(items):
            raise ServiceError("parameter {!r} must be a non-empty "
                               "comma-separated list".format(name))
        if not all(items):
            raise ServiceError("parameter {!r} contains empty items: {!r}".format(name, value))
        return items
    if isinstance(value, (list, tuple)):
        items = list(value)
        if not all(isinstance(item, str) and item.strip() for item in items):
            raise ServiceError(
                "parameter {!r} must be a list of non-empty strings".format(name))
        return [item.strip() for item in items]
    raise ServiceError("parameter {!r} is not a string list: {!r}".format(name, value))


def parse_int(value: Any, name: str = "value", default: int = None,
              minimum: int = None, maximum: int = None) -> Optional[int]:
    """Parse a bounded integer from a JSON body or a query string."""
    if value is None:
        return default
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise ServiceError("parameter {!r} is not an integer: {!r}".format(name, value))
    try:
        parsed = int(value)
    except ValueError:
        raise ServiceError(
            "parameter {!r} is not an integer: {!r}".format(name, value)) from None
    if minimum is not None and parsed < minimum:
        raise ServiceError("parameter {!r} must be >= {}".format(name, minimum))
    if maximum is not None:
        parsed = min(parsed, maximum)
    return parsed


@dataclass
class Request:
    """A transport-independent request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    body: Optional[Dict[str, Any]] = None
    actor: Optional[str] = None
    #: Per-request scratch space written by the middleware pipeline
    #: (request id, matched route, timings).
    context: Dict[str, Any] = field(default_factory=dict)

    def param(self, name: str, default: Any = None) -> Any:
        """Look a parameter up in the body first, then in the query string."""
        if self.body and name in self.body:
            return self.body[name]
        return self.query.get(name, default)

    def bool_param(self, name: str, default: bool = False) -> bool:
        return parse_bool(self.param(name), name, default=default)

    def list_param(self, name: str) -> Optional[list]:
        return parse_str_list(self.param(name), name)

    def int_param(self, name: str, default: int = None, minimum: int = None,
                  maximum: int = None) -> Optional[int]:
        return parse_int(self.param(name), name, default=default,
                         minimum=minimum, maximum=maximum)

    @property
    def request_id(self) -> Optional[str]:
        return self.context.get("request_id")

    @property
    def is_v2(self) -> bool:
        return self.path.startswith("/v2/") or self.path == "/v2"


@dataclass
class Response:
    """A transport-independent response."""

    status: int
    body: Any = None
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


#: Handlers receive the request plus the captured path parameters.
Handler = Callable[[Request, Dict[str, str]], Any]
