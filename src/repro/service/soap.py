"""SOAP-style facade.

Fig. 2 labels the kernel interfaces "SOAP/REST".  The SOAP endpoint wraps the
same service operations in XML envelopes: the body element name selects the
operation, its child elements become string parameters, and the response is an
envelope containing either a result document or a fault.  It is intentionally
a minimal dialect (no WSDL, no namespaces beyond a marker) — enough to show
that both wire formats drive the same kernel.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, Dict, Optional, Tuple

from ..errors import GeleeError, SerializationError
from .api import GeleeService

ENVELOPE_TAG = "Envelope"
BODY_TAG = "Body"
FAULT_TAG = "Fault"


def soap_envelope(operation: str, parameters: Dict[str, Any]) -> str:
    """Build a request envelope for ``operation`` with string parameters."""
    envelope = ET.Element(ENVELOPE_TAG)
    body = ET.SubElement(envelope, BODY_TAG)
    call = ET.SubElement(body, operation)
    for name, value in parameters.items():
        child = ET.SubElement(call, name)
        child.text = "" if value is None else str(value)
    return ET.tostring(envelope, encoding="unicode")


def parse_soap_envelope(document: str) -> Tuple[str, Dict[str, str]]:
    """Return ``(operation, parameters)`` from a request envelope."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise SerializationError("SOAP envelope is not well formed: {}".format(exc)) from exc
    if root.tag != ENVELOPE_TAG:
        raise SerializationError("expected <{}> root, got <{}>".format(ENVELOPE_TAG, root.tag))
    body = root.find(BODY_TAG)
    if body is None or len(body) == 0:
        raise SerializationError("the SOAP envelope has no body operation")
    call = body[0]
    parameters = {child.tag: (child.text or "").strip() for child in call}
    return call.tag, parameters


def _result_envelope(operation: str, result: Any) -> str:
    envelope = ET.Element(ENVELOPE_TAG)
    body = ET.SubElement(envelope, BODY_TAG)
    response = ET.SubElement(body, operation + "Response")
    _attach(response, result)
    return ET.tostring(envelope, encoding="unicode")


def _fault_envelope(message: str) -> str:
    envelope = ET.Element(ENVELOPE_TAG)
    body = ET.SubElement(envelope, BODY_TAG)
    fault = ET.SubElement(body, FAULT_TAG)
    ET.SubElement(fault, "faultstring").text = message
    return ET.tostring(envelope, encoding="unicode")


_VALID_TAG = __import__("re").compile(r"^[A-Za-z_][A-Za-z0-9_.-]*$")


def _attach(parent: ET.Element, value: Any) -> None:
    """Serialize nested dicts/lists/scalars into elements.

    Dictionary keys that are not valid XML element names (phase display names
    with spaces, URIs used as keys, ...) are emitted as ``<entry key="...">``
    elements instead, so the response envelope stays well formed.
    """
    if isinstance(value, dict):
        for key, item in value.items():
            key_text = str(key)
            if _VALID_TAG.match(key_text):
                child = ET.SubElement(parent, key_text)
            else:
                child = ET.SubElement(parent, "entry", {"key": key_text})
            _attach(child, item)
    elif isinstance(value, (list, tuple)):
        for item in value:
            child = ET.SubElement(parent, "item")
            _attach(child, item)
    else:
        parent.text = "" if value is None else str(value)


class SoapEndpoint:
    """Dispatches SOAP envelopes onto the Gelee service."""

    def __init__(self, service: GeleeService):
        self.service = service
        self._operations = {
            "ListModels": lambda p: service.list_models(),
            "PublishModel": lambda p: service.publish_model_xml(p["xml"],
                                                                actor=p.get("actor", "")),
            "ListTemplates": lambda p: service.list_templates(),
            "PublishTemplate": lambda p: service.publish_template(
                p["template_id"], actor=p.get("actor", ""), name=p.get("name")),
            "CreateInstance": lambda p: service.create_instance(
                model_uri=p["model_uri"],
                resource={
                    "uri": p["resource_uri"],
                    "resource_type": p["resource_type"],
                    "display_name": p.get("display_name", ""),
                },
                owner=p["owner"], actor=p.get("actor") or p["owner"]),
            "StartInstance": lambda p: service.start_instance(
                p["instance_id"], p["actor"], phase_id=p.get("phase_id") or None),
            "AdvanceInstance": lambda p: service.advance_instance(
                p["instance_id"], p["actor"], to_phase_id=p.get("to_phase_id") or None,
                annotation=p.get("annotation") or None),
            "MoveInstance": lambda p: service.move_instance(
                p["instance_id"], p["actor"], p["phase_id"],
                annotation=p.get("annotation") or None),
            "AnnotateInstance": lambda p: service.annotate_instance(
                p["instance_id"], p["actor"], p["text"], kind=p.get("kind", "note")),
            "InstanceDetail": lambda p: service.instance_detail(p["instance_id"]),
            "MonitoringSummary": lambda p: service.monitoring_summary(
                model_uri=p.get("model_uri") or None),
            "ActionCallback": lambda p: service.action_callback(
                p["instance_id"], p["phase_id"], p["call_id"], status=p["status"],
                detail=p.get("detail", "")),
        }

    def operations(self):
        return sorted(self._operations)

    def handle(self, envelope: str) -> str:
        """Process a request envelope and return a response envelope."""
        try:
            operation, parameters = parse_soap_envelope(envelope)
        except SerializationError as exc:
            return _fault_envelope(str(exc))
        handler = self._operations.get(operation)
        if handler is None:
            return _fault_envelope("unknown operation {!r}".format(operation))
        try:
            result = handler(parameters)
        except KeyError as exc:
            return _fault_envelope("missing parameter {}".format(exc))
        except GeleeError as exc:
            return _fault_envelope(str(exc))
        return _result_envelope(operation, result)


def extract_fault(envelope: str) -> Optional[str]:
    """Return the fault string of a response envelope, or None on success."""
    root = ET.fromstring(envelope)
    fault = root.find("./{}/{}".format(BODY_TAG, FAULT_TAG))
    if fault is None:
        return None
    text = fault.findtext("faultstring")
    return text or "fault"
