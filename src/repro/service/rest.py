"""REST facade over the Gelee service.

A small, dependency-free router: requests carry a method, a path, a query
dictionary and an optional JSON body; responses carry a status code, headers
and a JSON-compatible body.  The route table mirrors the operations of
:class:`~repro.service.api.GeleeService`, and the HTTP server of
:mod:`repro.service.http` simply adapts real sockets onto these objects.

Two API dialects are mounted on one router:

* the **legacy v1** routes (``/models``, ``/instances``, ...) keep their
  original bodies — only the success status codes were tightened (201 for
  creations, 202 for accepted callbacks) and every response now carries a
  ``Deprecation`` header pointing at the successor version;
* the **v2 gateway** (``/v2/...``, see :mod:`repro.service.v2`) speaks typed
  envelopes with pagination, bulk calls and async operation handles.

Cross-cutting behaviour — request ids, actor extraction, per-route timing,
error translation — runs in the shared middleware pipeline of
:mod:`repro.service.v2.middleware` instead of ad-hoc ``try/except`` blocks.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import PermissionDeniedError, ServiceError
from .api import GeleeService
from .transport import (  # noqa: F401 - re-exported for compatibility
    Handler,
    Request,
    Response,
    parse_bool,
    parse_str_list,
)
from .v2 import (
    ActorMiddleware,
    ErrorTranslationMiddleware,
    ReadOnlyGuardMiddleware,
    RequestIdMiddleware,
    TimingMiddleware,
    build_pipeline,
)
from .v2 import install as install_v2
from .v2.envelope import Envelope, ErrorInfo
from .v2.middleware import ApiStats

#: Headers advertising the v1 deprecation path on every legacy response.
V1_HEADERS = {
    "X-Gelee-Api-Version": "v1",
    "Deprecation": "true",
    "Link": '</v2>; rel="successor-version"',
}


@dataclass
class Route:
    """One entry of the route table."""

    method: str
    pattern: str
    regex: re.Pattern
    handler: Handler
    status: int = 200
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return "{} {}".format(self.method, self.pattern)


class RestRouter:
    """Routes REST requests (v1 and v2) to Gelee service operations."""

    def __init__(self, service: GeleeService = None, manager=None, shard_count: int = None,
                 persistence=None, coordination=None):
        """Route over an existing service, or assemble one.

        ``manager`` (e.g. a :class:`~repro.runtime.sharding.ShardedLifecycleManager`),
        ``shard_count``, ``persistence`` (a
        :class:`~repro.persistence.PersistenceConfig`) and ``coordination``
        (a :class:`~repro.coordination.CoordinationConfig`) are forwarded to
        :class:`GeleeService` when no pre-built service is given, so a
        durable sharded deployment is one call:
        ``RestRouter(shard_count=16, persistence=PersistenceConfig(dir))``.
        """
        if service is None:
            service = GeleeService(manager=manager, shard_count=shard_count,
                                   persistence=persistence,
                                   coordination=coordination)
        elif (manager is not None or shard_count is not None
              or persistence is not None or coordination is not None):
            raise ServiceError(
                "pass either a service or manager/shard_count/persistence/"
                "coordination, not both")
        self.service = service
        self.stats = ApiStats()
        self._routes: List[Route] = []
        self._register_routes()
        install_v2(self)
        self._pipeline = build_pipeline(
            [
                RequestIdMiddleware(),
                ActorMiddleware(),
                TimingMiddleware(self.stats),
                ErrorTranslationMiddleware(),
                # Inside the error translation so its typed 409 (with the
                # primary hint) reaches the wire in either dialect.
                ReadOnlyGuardMiddleware(self.service),
            ],
            self._dispatch,
        )

    # ------------------------------------------------------------------ routing
    def add_route(self, method: str, pattern: str, handler: Handler,
                  status: int = 200, headers: Dict[str, str] = None) -> None:
        """Register a route; ``{name}`` segments become named captures.

        ``status`` is the success code used when the handler returns plain
        data (handlers may also return a full :class:`Response`); ``headers``
        are merged into every response of the route.
        """
        regex = re.compile(
            "^" + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", pattern.rstrip("/")) + "$"
        )
        self._routes.append(Route(method=method.upper(), pattern=pattern, regex=regex,
                                  handler=handler, status=status,
                                  headers=dict(headers or {})))

    def handle(self, request: Request) -> Response:
        """Run a request through the middleware pipeline and the route table."""
        return self._pipeline(request)

    def _dispatch(self, request: Request) -> Response:
        """Terminal pipeline stage: match a route and invoke its handler."""
        # The scheduler's system actor holds elevated rights on the access
        # policy (GeleeService sets ``system_actor_reserved`` exactly when
        # that grant was made); actors are client-declared on the wire, so
        # the transport refuses to let a request impersonate it.  Without
        # the grant the name is not special and stays usable.
        reserved = getattr(self.service, "system_actor_reserved", None)
        if reserved is not None and request.actor == reserved:
            raise PermissionDeniedError(
                "actor {!r} is the scheduler's reserved system identity".format(
                    reserved))
        path = request.path.rstrip("/") or "/"
        method = request.method.upper()
        allowed: set = set()
        for route in self._routes:
            match = route.regex.match(path)
            if match is None:
                continue
            if route.method != method:
                allowed.add(route.method)
                continue
            request.context["route"] = route.name
            result = route.handler(request, match.groupdict())
            response = result if isinstance(result, Response) else Response(
                route.status, result)
            for name, value in route.headers.items():
                response.headers.setdefault(name, value)
            return response
        if allowed:
            # The path exists; the method does not: 405, advertising what would.
            response = self._no_route_response(
                request, 405, "METHOD_NOT_ALLOWED",
                "method {} not allowed for {} (allowed: {})".format(
                    method, request.path, ", ".join(sorted(allowed))))
            response.headers["Allow"] = ", ".join(sorted(allowed))
            return response
        return self._no_route_response(
            request, 404, "ROUTE_NOT_FOUND",
            "no route for {} {}".format(request.method, request.path))

    @staticmethod
    def _no_route_response(request: Request, status: int, code: str,
                           message: str) -> Response:
        if request.is_v2:
            envelope = Envelope.failure(
                ErrorInfo(code=code, message=message, status=status),
                request_id=request.context.get("request_id", ""))
            return Response(status, envelope.to_dict())
        return Response(status, {"error": message})

    # A convenience for tests and examples.
    def get(self, path: str, actor: str = None, **query: str) -> Response:
        return self.handle(Request("GET", path, query={k: str(v) for k, v in query.items()},
                                   actor=actor))

    def post(self, path: str, body: Dict[str, Any] = None, actor: str = None,
             **query: str) -> Response:
        return self.handle(Request("POST", path, query={k: str(v) for k, v in query.items()},
                                   body=body or {}, actor=actor))

    # ------------------------------------------------------------------- routes
    def _register_routes(self) -> None:
        service = self.service

        def add(method: str, pattern: str, handler: Handler, status: int = 200) -> None:
            self.add_route(method, pattern, handler, status=status, headers=V1_HEADERS)

        # -- design time -----------------------------------------------------
        add("GET", "/models", lambda req, p: service.list_models())
        add("POST", "/models", self._publish_model, status=201)
        add("GET", "/models/detail", lambda req, p: service.model_detail(
            service.require(req.param("uri"), "uri"),
            version=req.param("version"),
            as_xml=str(req.param("format", "")).lower() == "xml",
        ))
        add("GET", "/templates", lambda req, p: service.list_templates())
        add("POST", "/templates/{template_id}/publish", lambda req, p:
            service.publish_template(p["template_id"], actor=req.actor or "",
                                     name=req.param("name")), status=201)
        add("GET", "/resource-types", lambda req, p: service.resource_types())
        add("POST", "/resources", lambda req, p:
            service.register_resource(req.body or {}), status=201)

        # -- runtime ----------------------------------------------------------
        add("POST", "/instances", self._create_instance, status=201)
        add("GET", "/instances", lambda req, p: service.list_instances(
            model_uri=req.param("model_uri"), owner=req.param("owner")))
        add("GET", "/instances/{instance_id}", lambda req, p:
            service.instance_detail(p["instance_id"]))
        add("GET", "/instances/{instance_id}/history", lambda req, p:
            service.instance_history(p["instance_id"]))
        add("POST", "/instances/{instance_id}/start", lambda req, p:
            service.start_instance(p["instance_id"],
                                   self._actor(req),
                                   phase_id=req.param("phase_id"),
                                   call_parameters=req.param("call_parameters")))
        add("POST", "/instances/{instance_id}/advance", lambda req, p:
            service.advance_instance(p["instance_id"],
                                     self._actor(req),
                                     to_phase_id=req.param("to_phase_id"),
                                     annotation=req.param("annotation"),
                                     call_parameters=req.param("call_parameters")))
        add("POST", "/instances/{instance_id}/move", lambda req, p:
            service.move_instance(p["instance_id"],
                                  self._actor(req),
                                  phase_id=self.service.require(
                                      req.param("phase_id"), "phase_id"),
                                  annotation=req.param("annotation")))
        add("POST", "/instances/{instance_id}/annotations", lambda req, p:
            service.annotate_instance(p["instance_id"],
                                      self._actor(req),
                                      text=self.service.require(
                                          req.param("text"), "text"),
                                      kind=req.param("kind", "note")))
        add("GET", "/instances/{instance_id}/widget", lambda req, p:
            service.widget_view(p["instance_id"], viewer=req.param("viewer")))

        # -- model change propagation ------------------------------------------
        add("POST", "/propagations", lambda req, p:
            service.propose_change_xml(
                self.service.require(req.param("xml"), "xml"),
                actor=self._actor(req),
                instance_ids=req.list_param("instance_ids")), status=201)
        add("POST", "/propagations/{proposal_id}/decision", lambda req, p:
            service.decide_change(p["proposal_id"], self._actor(req),
                                  accept=req.bool_param("accept"),
                                  target_phase_id=req.param("target_phase_id"),
                                  reason=req.param("reason", "")))

        # -- action callbacks ----------------------------------------------------
        add("POST", "/callbacks/{instance_id}/{phase_id}/{call_id}", lambda req, p:
            service.action_callback(p["instance_id"], p["phase_id"], p["call_id"],
                                    status=self.service.require(
                                        req.param("status"), "status"),
                                    detail=req.param("detail", "")), status=202)

        # -- monitoring -----------------------------------------------------------
        add("GET", "/monitoring/summary", lambda req, p:
            service.monitoring_summary(model_uri=req.param("model_uri")))
        add("GET", "/monitoring/table", lambda req, p:
            service.monitoring_table(model_uri=req.param("model_uri"),
                                     owner=req.param("owner")))
        add("GET", "/monitoring/alerts", lambda req, p: service.monitoring_alerts())
        add("GET", "/runtime/stats", lambda req, p: service.runtime_stats())

    # ----------------------------------------------------------------- handlers
    def _publish_model(self, request: Request, params: Dict[str, str]) -> Any:
        if request.param("xml"):
            return self.service.publish_model_xml(request.param("xml"),
                                                  actor=request.actor or "")
        body = request.body or {}
        document = body.get("model", body)
        return self.service.publish_model_json(document, actor=request.actor or "")

    def _create_instance(self, request: Request, params: Dict[str, str]) -> Any:
        body = request.body or {}
        return self.service.create_instance(
            model_uri=self.service.require(body.get("model_uri"), "model_uri"),
            resource=self.service.require(body.get("resource"), "resource"),
            owner=self.service.require(body.get("owner"), "owner"),
            actor=request.actor or body.get("owner"),
            version=body.get("version"),
            parameters=body.get("parameters"),
            token_owners=body.get("token_owners"),
        )

    def _actor(self, request: Request) -> str:
        actor = request.actor or request.param("actor")
        return self.service.require(actor, "actor")
