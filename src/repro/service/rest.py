"""REST facade over the Gelee service.

A small, dependency-free router: requests carry a method, a path, a query
dictionary and an optional JSON body; responses carry a status code and a
JSON-compatible body.  The route table mirrors the operations of
:class:`~repro.service.api.GeleeService`, and the HTTP server of
:mod:`repro.service.http` simply adapts real sockets onto these objects.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import (
    GeleeError,
    InstanceNotFoundError,
    LifecycleNotFoundError,
    PermissionDeniedError,
    SerializationError,
    ServiceError,
    TemplateError,
    ValidationError,
)
from .api import GeleeService


@dataclass
class Request:
    """A transport-independent request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    body: Optional[Dict[str, Any]] = None
    actor: Optional[str] = None

    def param(self, name: str, default: Any = None) -> Any:
        """Look a parameter up in the body first, then in the query string."""
        if self.body and name in self.body:
            return self.body[name]
        return self.query.get(name, default)


@dataclass
class Response:
    """A transport-independent response."""

    status: int
    body: Any = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


#: Handlers receive the request plus the captured path parameters.
Handler = Callable[[Request, Dict[str, str]], Any]


class RestRouter:
    """Routes REST requests to Gelee service operations."""

    def __init__(self, service: GeleeService = None, manager=None, shard_count: int = None):
        """Route over an existing service, or assemble one.

        ``manager`` (e.g. a :class:`~repro.runtime.sharding.ShardedLifecycleManager`)
        or ``shard_count`` are forwarded to :class:`GeleeService` when no
        pre-built service is given, so a sharded deployment is one call:
        ``RestRouter(shard_count=16)``.
        """
        if service is None:
            service = GeleeService(manager=manager, shard_count=shard_count)
        elif manager is not None or shard_count is not None:
            raise ServiceError(
                "pass either a service or manager/shard_count, not both")
        self.service = service
        self._routes: List[Tuple[str, re.Pattern, Handler]] = []
        self._register_routes()

    # ------------------------------------------------------------------ routing
    def add_route(self, method: str, pattern: str, handler: Handler) -> None:
        """Register a route; ``{name}`` segments become named captures."""
        regex = re.compile(
            "^" + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", pattern.rstrip("/")) + "$"
        )
        self._routes.append((method.upper(), regex, handler))

    def handle(self, request: Request) -> Response:
        """Dispatch a request, translating library errors into status codes."""
        path = request.path.rstrip("/") or "/"
        for method, regex, handler in self._routes:
            if method != request.method.upper():
                continue
            match = regex.match(path)
            if match is None:
                continue
            try:
                result = handler(request, match.groupdict())
            except (LifecycleNotFoundError, InstanceNotFoundError, TemplateError) as exc:
                return Response(404, {"error": str(exc)})
            except PermissionDeniedError as exc:
                return Response(403, {"error": str(exc)})
            except (ValidationError, SerializationError, ServiceError) as exc:
                return Response(400, {"error": str(exc)})
            except GeleeError as exc:
                return Response(409, {"error": str(exc)})
            return Response(200, result)
        return Response(404, {"error": "no route for {} {}".format(request.method, request.path)})

    # A convenience for tests and examples.
    def get(self, path: str, actor: str = None, **query: str) -> Response:
        return self.handle(Request("GET", path, query={k: str(v) for k, v in query.items()},
                                   actor=actor))

    def post(self, path: str, body: Dict[str, Any] = None, actor: str = None,
             **query: str) -> Response:
        return self.handle(Request("POST", path, query={k: str(v) for k, v in query.items()},
                                   body=body or {}, actor=actor))

    # ------------------------------------------------------------------- routes
    def _register_routes(self) -> None:
        service = self.service

        # -- design time -----------------------------------------------------
        self.add_route("GET", "/models", lambda req, p: service.list_models())
        self.add_route("POST", "/models", self._publish_model)
        self.add_route("GET", "/models/detail", lambda req, p: service.model_detail(
            service.require(req.param("uri"), "uri"),
            version=req.param("version"),
            as_xml=str(req.param("format", "")).lower() == "xml",
        ))
        self.add_route("GET", "/templates", lambda req, p: service.list_templates())
        self.add_route("POST", "/templates/{template_id}/publish", lambda req, p:
                       service.publish_template(p["template_id"], actor=req.actor or "",
                                                name=req.param("name")))
        self.add_route("GET", "/resource-types", lambda req, p: service.resource_types())
        self.add_route("POST", "/resources", lambda req, p:
                       service.register_resource(req.body or {}))

        # -- runtime ----------------------------------------------------------
        self.add_route("POST", "/instances", self._create_instance)
        self.add_route("GET", "/instances", lambda req, p: service.list_instances(
            model_uri=req.param("model_uri"), owner=req.param("owner")))
        self.add_route("GET", "/instances/{instance_id}", lambda req, p:
                       service.instance_detail(p["instance_id"]))
        self.add_route("GET", "/instances/{instance_id}/history", lambda req, p:
                       service.instance_history(p["instance_id"]))
        self.add_route("POST", "/instances/{instance_id}/start", lambda req, p:
                       service.start_instance(p["instance_id"],
                                              self._actor(req),
                                              phase_id=req.param("phase_id"),
                                              call_parameters=req.param("call_parameters")))
        self.add_route("POST", "/instances/{instance_id}/advance", lambda req, p:
                       service.advance_instance(p["instance_id"],
                                                self._actor(req),
                                                to_phase_id=req.param("to_phase_id"),
                                                annotation=req.param("annotation"),
                                                call_parameters=req.param("call_parameters")))
        self.add_route("POST", "/instances/{instance_id}/move", lambda req, p:
                       service.move_instance(p["instance_id"],
                                             self._actor(req),
                                             phase_id=self.service.require(
                                                 req.param("phase_id"), "phase_id"),
                                             annotation=req.param("annotation")))
        self.add_route("POST", "/instances/{instance_id}/annotations", lambda req, p:
                       service.annotate_instance(p["instance_id"],
                                                 self._actor(req),
                                                 text=self.service.require(
                                                     req.param("text"), "text"),
                                                 kind=req.param("kind", "note")))
        self.add_route("GET", "/instances/{instance_id}/widget", lambda req, p:
                       service.widget_view(p["instance_id"], viewer=req.param("viewer")))

        # -- model change propagation ------------------------------------------
        self.add_route("POST", "/propagations", lambda req, p:
                       service.propose_change_xml(
                           self.service.require(req.param("xml"), "xml"),
                           actor=self._actor(req),
                           instance_ids=req.param("instance_ids")))
        self.add_route("POST", "/propagations/{proposal_id}/decision", lambda req, p:
                       service.decide_change(p["proposal_id"], self._actor(req),
                                             accept=bool(req.param("accept")),
                                             target_phase_id=req.param("target_phase_id"),
                                             reason=req.param("reason", "")))

        # -- action callbacks ----------------------------------------------------
        self.add_route("POST", "/callbacks/{instance_id}/{phase_id}/{call_id}", lambda req, p:
                       service.action_callback(p["instance_id"], p["phase_id"], p["call_id"],
                                               status=self.service.require(
                                                   req.param("status"), "status"),
                                               detail=req.param("detail", "")))

        # -- monitoring -----------------------------------------------------------
        self.add_route("GET", "/monitoring/summary", lambda req, p:
                       service.monitoring_summary(model_uri=req.param("model_uri")))
        self.add_route("GET", "/monitoring/table", lambda req, p:
                       service.monitoring_table(model_uri=req.param("model_uri"),
                                                owner=req.param("owner")))
        self.add_route("GET", "/monitoring/alerts", lambda req, p: service.monitoring_alerts())
        self.add_route("GET", "/runtime/stats", lambda req, p: service.runtime_stats())

    # ----------------------------------------------------------------- handlers
    def _publish_model(self, request: Request, params: Dict[str, str]) -> Any:
        if request.param("xml"):
            return self.service.publish_model_xml(request.param("xml"),
                                                  actor=request.actor or "")
        body = request.body or {}
        document = body.get("model", body)
        return self.service.publish_model_json(document, actor=request.actor or "")

    def _create_instance(self, request: Request, params: Dict[str, str]) -> Any:
        body = request.body or {}
        return self.service.create_instance(
            model_uri=self.service.require(body.get("model_uri"), "model_uri"),
            resource=self.service.require(body.get("resource"), "resource"),
            owner=self.service.require(body.get("owner"), "owner"),
            actor=request.actor or body.get("owner"),
            version=body.get("version"),
            parameters=body.get("parameters"),
            token_owners=body.get("token_owners"),
        )

    def _actor(self, request: Request) -> str:
        actor = request.actor or request.param("actor")
        return self.service.require(actor, "actor")
