"""The Gelee hosted service facade.

Bundles the kernel (lifecycle manager, resource manager), the data tier
(template store, definition store, execution log, user directory) and the UI
helpers (cockpit, widgets) behind one object with operation-level methods.
Both the REST router and the SOAP endpoint delegate to this facade, so the
two wire formats expose exactly the same behaviour.
"""

from __future__ import annotations

import time
from collections import deque
from datetime import datetime
from typing import Any, Dict, List, Optional, Tuple

from ..accesscontrol.policy import AccessPolicy
from ..accesscontrol.roles import Role, UserDirectory
from ..clock import Clock
from ..events import Event, EventBus
from ..errors import (
    CoordinationError,
    GeleeError,
    ReplicationError,
    SchedulerError,
    ServiceError,
    TimerNotFoundError,
    TraceNotFoundError,
)
from ..model.lifecycle import LifecycleModel
from ..monitoring.alerts import collect_alerts
from ..monitoring.cockpit import MonitoringCockpit
from ..persistence import PersistenceConfig, PersistenceCoordinator, recover_into
from ..plugins.setup import StandardEnvironment, build_standard_environment
from ..resources.descriptor import ResourceDescriptor
from ..runtime.instance import InstanceStatus
from ..runtime.manager import LifecycleManager
from ..runtime.sharding import ShardedLifecycleManager
from ..scheduler import LifecycleScheduler, SchedulerConfig, TimerService
from ..serialization.lifecycle_xml import lifecycle_from_xml, lifecycle_to_xml
from ..storage.definitions import DefinitionStore
from ..storage.logstore import ExecutionLog
from ..storage.templates import TemplateStore
from ..telemetry import SloEngine, SloRule, get_registry, get_span_store
from ..telemetry.history import MetricHistory
from ..telemetry.logring import get_log_ring
from ..telemetry.profiling import SamplingProfiler
from .cluster import KEY_DELTA_PREFIXES, ClusterView
from ..templates.common import builtin_templates
from ..widgets.widget import LifecycleWidget
from .v2.dto import AdvanceItem, BatchItemResult, BatchResult, CreateInstanceItem
from .v2.envelope import error_info_for
from .v2.operations import Operation, OperationStore
from .v2.pagination import PageInfo, PageRequest, decode_cursor, encode_cursor, paginate


class GeleeService:
    """Application service: the operations the hosted platform offers."""

    def __init__(self, environment: StandardEnvironment = None, clock: Clock = None,
                 policy: AccessPolicy = None, with_builtin_templates: bool = True,
                 manager: LifecycleManager = None, shard_count: int = None,
                 persistence: PersistenceConfig = None,
                 scheduler: SchedulerConfig = None,
                 read_only: bool = False, primary_hint: str = None,
                 completion_workers: int = 0,
                 coordination=None,
                 slo_rules: Optional[List[SloRule]] = None):
        """Assemble the hosted platform.

        ``manager`` injects a pre-built kernel — typically a
        :class:`~repro.runtime.sharding.ShardedLifecycleManager` wired to a
        batching bus; the service then shares that manager's environment,
        bus and clock.  ``shard_count`` is a shorthand that builds a sharded
        kernel here; with neither, the classic single-shard manager is used.

        ``persistence`` makes the deployment durable: a
        :class:`~repro.persistence.PersistenceConfig` whose directory holds
        the write-ahead journal, the snapshots and the instance store.  When
        that directory already contains state (and the config keeps
        ``recover_on_start`` on), the kernel is rebuilt from it *before* the
        first request is served; either way a
        :class:`~repro.persistence.PersistenceCoordinator` is then attached
        to the bus so every subsequent operation is journaled.

        ``scheduler`` configures the temporal automation subsystem
        (:mod:`repro.scheduler`): deadline timers and retry-with-backoff
        are on by default; intervals for the recurring maintenance jobs
        (periodic checkpoints, journal rotation, log compaction) opt in
        per deployment.  Pass ``SchedulerConfig(enabled=False)`` for the
        pre-scheduler passive behaviour.

        ``completion_workers`` switches the sharded kernel to pooled
        completion-based dispatch (see ``docs/DISPATCH.md``): action
        round-trips sleep on a shared worker pool instead of under shard
        locks, so a shard keeps serving requests while its instances wait
        on web services.  ``0`` (the default) keeps dispatch inline and
        synchronous; the flag only applies when the service builds its own
        sharded kernel via ``shard_count``.

        ``read_only`` builds the service as a **read replica**
        (:mod:`repro.replication`): the runtime rejects mutations with a
        typed 409 (``primary_hint`` names where writes should go), the
        scheduler lies dormant until promotion, and state arrives through
        the replication stream instead of API writes.  A replica takes its
        durability from the primary's journal, so ``persistence`` cannot be
        combined with it.

        ``coordination`` enrols this node in lease-based leader election
        (:mod:`repro.coordination`): a
        :class:`~repro.coordination.CoordinationConfig` naming the shared
        lease store.  While this node holds the lease it serves writes with
        a fencing token on the journal path; on lease loss it demotes to
        read-only and points callers at the new leader.  Election is a
        primary-side concern — a replica joins through a
        :class:`~repro.coordination.FailoverSupervisor` instead, so
        ``read_only`` cannot be combined with it.

        ``slo_rules`` overrides the stock SLO catalog
        (:func:`~repro.telemetry.default_slo_rules`) evaluated by
        :meth:`evaluate_slos` — on demand, or periodically when
        ``SchedulerConfig.slo_interval_seconds`` is set.  Threshold edges
        publish ``alert.fired`` / ``alert.resolved`` on the kernel bus, so
        on a durable node they are journaled and replicated.
        """
        if read_only and persistence is not None:
            raise ServiceError(
                "a read replica takes its durability from the primary's "
                "journal; do not combine read_only with persistence")
        if read_only and coordination is not None:
            raise ServiceError(
                "a read replica does not campaign for the primary lease; "
                "attach a FailoverSupervisor to its ReadReplica instead of "
                "combining read_only with coordination")
        if environment is None and manager is not None:
            # Reuse the injected kernel's environment: a fresh one would
            # disagree with the manager about which resources exist.
            environment = manager.environment
        self.environment = environment or build_standard_environment(clock=clock)
        self.directory = policy.directory if policy is not None else UserDirectory()
        self.policy = policy
        if manager is not None:
            self.manager = manager
            self.bus = manager.bus
        elif shard_count is not None and shard_count > 1:
            self.bus = EventBus()
            self.manager = ShardedLifecycleManager(
                self.environment, shard_count=shard_count,
                clock=clock or self.environment.clock, bus=self.bus,
                access_policy=policy, completion_workers=completion_workers)
        else:
            self.bus = EventBus()
            self.manager = LifecycleManager(self.environment,
                                            clock=clock or self.environment.clock,
                                            bus=self.bus, access_policy=policy)
        self.cockpit = MonitoringCockpit(self.manager)
        # A durable deployment embeds the log in every snapshot manifest, so
        # honour the config's retention bound to keep checkpoints O(bound).
        self.execution_log = ExecutionLog(
            bus=self.bus,
            max_entries=persistence.log_max_entries if persistence else None)
        self.operations = OperationStore(clock=clock or self.environment.clock)
        self.templates = TemplateStore()
        self.definitions = DefinitionStore()
        if with_builtin_templates:
            for template_id, model in builtin_templates().items():
                self.templates.save(model, template_id=template_id)
        # The scheduler exists before persistence is wired so recovery can
        # restore pending timers into it; its bus subscriptions predate the
        # coordinator's, but recovery publishes nothing, so nothing is
        # double-journaled.
        self.scheduler = LifecycleScheduler(self.manager, bus=self.bus,
                                            config=scheduler)
        #: When set, the REST transport refuses requests declaring this
        #: actor — it only carries a value when the actor actually holds
        #: the elevated grant below, so disabled-scheduler or policy-less
        #: deployments keep the name usable like any other.
        self.system_actor_reserved: Optional[str] = None
        if policy is not None and self.scheduler.config.enabled:
            # The scheduler is a system principal: escalation moves,
            # annotations and retries run as its configured actor, which a
            # closed-world policy would otherwise deny — every escalation
            # would fail and re-arm forever.  The REST transport refuses
            # requests declaring this actor, so the grant is not reachable
            # from the wire; a *pre-existing* user of the same name must
            # not be silently elevated, though.
            system_actor = self.scheduler.config.actor
            if policy.directory.known(system_actor) and not policy.directory.has_role(
                    system_actor, Role.LIFECYCLE_MANAGER):
                raise ServiceError(
                    "SchedulerConfig.actor {!r} collides with an existing user "
                    "in the directory; configure a different system actor "
                    "name".format(system_actor))
            policy.grant_manager(system_actor)
            self.system_actor_reserved = system_actor
        self.persistence: Optional[PersistenceCoordinator] = None
        self.recovery_report = None
        #: The replication attachment — a
        #: :class:`~repro.replication.ReplicationPrimary` or the
        #: :class:`~repro.replication.ReadReplica` that owns this service;
        #: ``None`` on unreplicated deployments.
        self.replication = None
        self.read_only = bool(read_only)
        self.primary_hint = primary_hint
        if self.read_only:
            self.manager.set_read_only(True)
            # Timers replicate in but must not fire here: deadline
            # enforcement, retries and maintenance are the primary's job
            # until this node is promoted.
            self.scheduler.dormant = True
        if persistence is not None:
            self._wire_persistence(persistence)
        #: The SLO/alert engine: declarative rules over the process
        #: registry, with alert edges published through the kernel bus (and
        #: therefore journaled + replicated on durable deployments).
        self.slo = SloEngine(rules=slo_rules,
                             registry=get_registry(),
                             clock=clock or self.environment.clock,
                             publish=self._publish_alert,
                             refresh=self._refresh_telemetry_gauges)
        #: Time-series memory over the process registry, fed by the
        #: recurring ``maintenance:telemetry-history`` job (or on-demand
        #: captures) and served at ``GET /v2/runtime/telemetry/history``.
        self.history = MetricHistory(get_registry(),
                                     clock=clock or self.environment.clock)
        #: Optional low-rate stack sampler behind ``/v2/runtime/profile``;
        #: inert (no thread) until ``profile_start`` opts in.
        self.profiler = SamplingProfiler()
        #: Peer registry + fan-out behind ``GET /v2/runtime/cluster``.
        self.cluster = ClusterView(self)
        self._register_maintenance_jobs()
        #: The coordination attachment — a
        #: :class:`~repro.coordination.Coordinator` (lease election +
        #: fencing) on primaries built with ``coordination=``, or the
        #: :class:`~repro.coordination.FailoverSupervisor` that promoted
        #: this node; ``None`` on uncoordinated deployments.
        self.coordination = None
        if coordination is not None:
            from ..coordination import Coordinator

            # Built after persistence wiring: the fencing guard installs
            # onto the live journal, and the coordinator's demotion hook
            # subscribes to the persistence coordinator's fence trips.
            self.coordination = Coordinator(self, coordination)

    def _wire_persistence(self, config: PersistenceConfig) -> None:
        """Recover durable state (if any), then start journaling.

        Order matters: recovery rebuilds the manager, the execution log and
        the pending timers through the silent install hooks *before* the
        coordinator subscribes, so recovered state is never journaled a
        second time.
        """
        journal = config.open_journal()
        snapshots = config.open_snapshots()
        store = config.open_store()
        if config.recover_on_start:
            started = time.perf_counter()
            self.recovery_report = recover_into(
                self.manager, self.execution_log, journal, snapshots, store,
                timers=self.scheduler.timers)
            self.scheduler.resync_after_recovery()
            get_registry().histogram(
                "gelee_recovery_seconds",
                "Wall-clock time of boot recovery from journal + snapshots.",
                buckets=(0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
                         30.0, 60.0),
            ).observe(time.perf_counter() - started)
        self.persistence = PersistenceCoordinator(
            self.manager, self.execution_log, journal, snapshots, store,
            bus=self.bus, timers=self.scheduler.timers)
        if self.recovery_report is not None:
            # Instances the journal tail rebuilt have stale store documents;
            # dirty-marking them guarantees the next checkpoint re-flushes
            # their state before the journal is truncated past it.
            for instance_id in self.recovery_report.touched_instance_ids:
                self.persistence.mark_dirty(instance_id)

    def _register_maintenance_jobs(self) -> None:
        """Arm the recurring maintenance jobs the config asks for."""
        config = self.scheduler.config
        if not config.enabled:
            return
        if self.persistence is not None and config.checkpoint_interval_seconds:
            self.scheduler.register_job(
                "checkpoint", self.persistence.checkpoint,
                config.checkpoint_interval_seconds)
        if self.persistence is not None and config.journal_rotate_interval_seconds:
            self.scheduler.register_job(
                "journal-rotate",
                lambda: {"rotated": self.persistence.journal.rotate()},
                config.journal_rotate_interval_seconds)
        if config.log_compact_interval_seconds:
            self.scheduler.register_job(
                "log-compact",
                lambda: {"dropped": self.execution_log.compact(
                    config.log_compact_max_entries)},
                config.log_compact_interval_seconds)
        if config.slo_interval_seconds:
            self.scheduler.register_job(
                "slo-evaluate", self.evaluate_slos,
                config.slo_interval_seconds)
        if config.history_interval_seconds:
            self.scheduler.register_job(
                "telemetry-history", self.capture_telemetry_history,
                config.history_interval_seconds)
        # Recovered maintenance timers for jobs this config no longer asks
        # for must not keep firing into the void.
        self.scheduler.prune_orphan_jobs()

    def close(self) -> None:
        """Detach the scheduler, stop worker pools, flush persistence.

        Draining the runtime's in-flight completions comes first so the
        final journal fsync captures every outcome that was already
        submitted.
        """
        self.profiler.stop()
        if self.coordination is not None and hasattr(self.coordination, "close"):
            # Resign the lease before anything stops serving, so a standby
            # can take over without waiting out the TTL.
            self.coordination.close()
        self.scheduler.close()
        if hasattr(self.manager, "close"):
            self.manager.close()
        self.operations.close()
        if self.persistence is not None:
            self.persistence.close()

    # ----------------------------------------------------------------- models
    def list_models(self) -> List[Dict[str, Any]]:
        return [
            {
                "uri": model.uri,
                "name": model.name,
                "version": model.version.version_number,
                "phases": len(model),
                "resource_types": self.manager.applicable_resource_types(model.uri),
            }
            for model in self.manager.models()
        ]

    def publish_model_json(self, document: Dict[str, Any], actor: str = "") -> Dict[str, Any]:
        model = LifecycleModel.from_dict(document)
        self.manager.publish_model(model, actor=actor)
        return {"uri": model.uri, "version": model.version.version_number}

    def publish_model_xml(self, xml_document: str, actor: str = "") -> Dict[str, Any]:
        model = lifecycle_from_xml(xml_document)
        self.manager.publish_model(model, actor=actor)
        return {"uri": model.uri, "version": model.version.version_number}

    def model_detail(self, model_uri: str, version: str = None,
                     as_xml: bool = False) -> Dict[str, Any]:
        model = self.manager.model(model_uri, version=version)
        if as_xml:
            return {"uri": model.uri, "xml": lifecycle_to_xml(model)}
        return model.to_dict()

    # -------------------------------------------------------------- templates
    def list_templates(self) -> List[Dict[str, Any]]:
        return self.templates.catalog()

    def publish_template(self, template_id: str, actor: str = "",
                         name: str = None) -> Dict[str, Any]:
        """Instantiate a stored template as a published model."""
        model = self.templates.instantiate(template_id, name=name)
        self.manager.publish_model(model, actor=actor)
        return {"uri": model.uri, "name": model.name,
                "version": model.version.version_number}

    # -------------------------------------------------------------- resources
    def register_resource(self, document: Dict[str, Any]) -> Dict[str, Any]:
        descriptor = ResourceDescriptor.from_dict(document)
        self.environment.resource_manager.require(descriptor)
        self.definitions.save_resource(descriptor)
        return descriptor.to_dict()

    def resource_types(self) -> List[str]:
        return self.environment.resource_manager.resource_types()

    # -------------------------------------------------------------- instances
    def create_instance(self, model_uri: str, resource: Dict[str, Any], owner: str,
                        actor: str = None, version: str = None,
                        parameters: Dict[str, Dict[str, Any]] = None,
                        token_owners: List[str] = None) -> Dict[str, Any]:
        descriptor = ResourceDescriptor.from_dict(resource)
        instance = self.manager.instantiate(
            model_uri, descriptor, owner, actor=actor, version=version,
            instantiation_parameters=parameters, token_owners=token_owners,
        )
        return instance.summary()

    def list_instances(self, model_uri: str = None, owner: str = None) -> List[Dict[str, Any]]:
        return [instance.summary()
                for instance in self.manager.instances(model_uri=model_uri, owner=owner)]

    def instance_detail(self, instance_id: str) -> Dict[str, Any]:
        return self.manager.instance(instance_id).to_dict()

    def start_instance(self, instance_id: str, actor: str, phase_id: str = None,
                       call_parameters: Dict[str, Dict[str, Any]] = None) -> Dict[str, Any]:
        return self.manager.start(instance_id, actor, phase_id=phase_id,
                                  call_parameters=call_parameters).summary()

    def advance_instance(self, instance_id: str, actor: str, to_phase_id: str = None,
                         annotation: str = None,
                         call_parameters: Dict[str, Dict[str, Any]] = None) -> Dict[str, Any]:
        return self.manager.advance(instance_id, actor, to_phase_id=to_phase_id,
                                    annotation=annotation,
                                    call_parameters=call_parameters).summary()

    def move_instance(self, instance_id: str, actor: str, phase_id: str,
                      annotation: str = None) -> Dict[str, Any]:
        return self.manager.move_to(instance_id, actor, phase_id,
                                    annotation=annotation).summary()

    def annotate_instance(self, instance_id: str, actor: str, text: str,
                          kind: str = "note") -> Dict[str, Any]:
        return self.manager.annotate(instance_id, actor, text, kind=kind).to_dict()

    def instance_history(self, instance_id: str) -> List[Dict[str, Any]]:
        return [entry.to_dict() for entry in self.execution_log.history_of(instance_id)]

    # ------------------------------------------------------------- propagation
    def propose_change_xml(self, xml_document: str, actor: str,
                           instance_ids: List[str] = None) -> List[Dict[str, Any]]:
        model = lifecycle_from_xml(xml_document)
        proposals = self.manager.propose_change(model, actor=actor, instance_ids=instance_ids)
        return [proposal.to_dict() for proposal in proposals]

    def decide_change(self, proposal_id: str, actor: str, accept: bool,
                      target_phase_id: str = None, reason: str = "") -> Dict[str, Any]:
        if accept:
            plan = self.manager.accept_change(proposal_id, actor, target_phase_id=target_phase_id)
            return plan.to_dict()
        return self.manager.reject_change(proposal_id, actor, reason=reason).to_dict()

    # --------------------------------------------------------------- callbacks
    def action_callback(self, instance_id: str, phase_id: str, call_id: str,
                        status: str, detail: str = "", **payload: Any) -> Dict[str, Any]:
        callback = "urn:gelee:runtime/callbacks/{}/{}/{}".format(instance_id, phase_id, call_id)
        message = self.manager.handle_callback(callback, status, detail=detail, **payload)
        return {"status": message.status, "detail": message.detail}

    # -------------------------------------------------------------- monitoring
    def monitoring_summary(self, model_uri: str = None) -> Dict[str, Any]:
        summary = self.cockpit.portfolio_summary(model_uri=model_uri).to_dict()
        if self.replication is not None:
            summary["replication"] = self.cockpit.replication_rollup(
                self.replication)
        if self.coordination is not None:
            summary["coordination"] = self.cockpit.coordination_rollup(
                self.coordination)
        self._refresh_telemetry_gauges()
        summary["telemetry"] = self.cockpit.telemetry_rollup(get_registry())
        summary["alerts"] = self.cockpit.alerts_rollup(self.slo)
        summary["observability"] = self.cockpit.observability_rollup(
            self.history, get_log_ring(), self.profiler)
        return summary

    def monitoring_table(self, model_uri: str = None, owner: str = None) -> List[Dict[str, Any]]:
        return [row.to_dict() for row in self.cockpit.status_table(model_uri=model_uri,
                                                                   owner=owner)]

    def monitoring_alerts(self) -> List[Dict[str, Any]]:
        return [alert.to_dict() for alert in collect_alerts(self.manager)]

    def monitoring_deadlines(self, model_uri: str = None) -> Dict[str, Any]:
        """Deadline health roll-up (passive view + the scheduler's timers)."""
        return self.cockpit.deadline_rollup(model_uri=model_uri,
                                            scheduler=self.scheduler)

    def runtime_stats(self) -> Dict[str, Any]:
        """Deployment-level runtime figures (shard layout, event volume)."""
        manager = self.manager
        stats: Dict[str, Any] = {
            "instances": manager.instance_count(),
            "events_published": self.bus.published_count,
            "by_status": {status.value: count
                          for status, count in manager.status_distribution().items()},
        }
        if isinstance(manager, ShardedLifecycleManager):
            stats["shard_count"] = manager.shard_count
            stats["shard_sizes"] = manager.shard_sizes()
        else:
            stats["shard_count"] = 1
            stats["shard_sizes"] = [manager.instance_count()]
        stats["persistence_enabled"] = self.persistence is not None
        stats["scheduler_enabled"] = self.scheduler.config.enabled
        stats["pending_timers"] = self.scheduler.timers.pending_count
        stats["read_only"] = self.read_only
        # Completion-based dispatch figures (docs/DISPATCH.md).  The
        # ``dispatch`` block is the *stable* schema — identical keys on the
        # single-manager and sharded paths, so dashboards never branch on
        # deployment shape.  The flat legacy keys stay for older callers.
        in_flight = manager.in_flight_count()
        executor = getattr(manager, "completion_executor", None)
        mode = executor.mode if executor is not None else "inline"
        pool = getattr(manager, "worker_pool", None)
        pool_stats = pool.stats() if pool is not None and not pool.closed else None
        stats["dispatch"] = {
            "mode": mode,
            "in_flight": in_flight,
            "queue_depth": pool_stats["queued"] if pool_stats else 0,
            "worker_pool": pool_stats,
        }
        stats["in_flight_actions"] = in_flight
        stats["dispatch_mode"] = mode
        if pool_stats is not None:
            stats["worker_pool"] = pool_stats
        operations_pool = self.operations.pool_stats()
        if operations_pool is not None:
            stats["operations_pool"] = operations_pool
        stats["replication_role"] = (
            self.replication.role if self.replication is not None
            else ("replica" if self.read_only else "primary"))
        stats["coordination_enabled"] = self.coordination is not None
        if self.coordination is not None:
            status = self.coordination.status()
            stats["coordination_role"] = status.get("role")
            stats["leader_id"] = status.get("leader_id")
        return stats

    # --------------------------------------------------------------- telemetry
    def _refresh_telemetry_gauges(self) -> None:
        """Stamp the sampled gauges from their authoritative sources.

        Counters and histograms accrue on the hot paths; these gauges are
        point-in-time readings that would need inc/dec bookkeeping there.
        Setting them at scrape time keeps the hot paths lean and the values
        exact.
        """
        registry = get_registry()
        registry.gauge(
            "gelee_dispatch_in_flight",
            "Actions submitted but not yet completed.",
        ).set(self.manager.in_flight_count())
        pool = getattr(self.manager, "worker_pool", None)
        queued = 0
        if pool is not None and not pool.closed:
            queued = pool.stats()["queued"]
        registry.gauge(
            "gelee_worker_pool_queued",
            "Completion tasks waiting for a dispatch worker.",
        ).set(queued)
        registry.gauge(
            "gelee_scheduler_pending_timers",
            "Timers armed and waiting to fire.",
        ).set(self.scheduler.timers.pending_count)
        if self.persistence is not None:
            registry.gauge(
                "gelee_journal_last_seq",
                "Sequence number of the last journaled record.",
            ).set(self.persistence.journal.last_seq)
        if self.replication is not None and hasattr(self.replication, "sync"):
            # A replica's lag gauges refresh on sync; a scrape between
            # syncs still reports the position-based lag exactly.
            lag = self.replication.status().get("lag_records")
            if lag is not None:
                registry.gauge(
                    "gelee_replication_lag_records",
                    "Journal records the primary has that this replica "
                    "has not applied.",
                ).set(lag)

    def metrics_exposition(self) -> str:
        """The process registry in Prometheus text format (``/v2/metrics``)."""
        self._refresh_telemetry_gauges()
        return get_registry().render_prometheus()

    def telemetry_status(self) -> Dict[str, Any]:
        """JSON snapshot of every instrument (``/v2/runtime/telemetry``).

        Stamped with ``captured_at`` (the deployment's injected clock, so
        simulated-time tests get deterministic stamps) and the node's
        coordination ``node_id`` — a fleet scraper aggregating several
        nodes' snapshots can attribute every sample.
        """
        self._refresh_telemetry_gauges()
        snapshot = get_registry().snapshot()
        snapshot["captured_at"] = self.manager.clock.now().isoformat()
        snapshot["node"] = {
            "node_id": self._node_id(),
            "read_only": self.read_only,
            "replication_role": (
                self.replication.role if self.replication is not None
                else ("replica" if self.read_only else "primary")),
        }
        return snapshot

    def _node_id(self) -> Optional[str]:
        """This node's identity: its election name, or its replica id."""
        if self.coordination is not None:
            node_id = getattr(self.coordination, "node_id", None)
            if node_id is not None:
                return node_id
        return getattr(self.replication, "replica_id", None)

    # ------------------------------------------------------------ span traces
    def traces_status(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """Held trace summaries + store figures (``/v2/runtime/traces``)."""
        store = get_span_store()
        return {
            "store": store.stats(),
            "traces": store.traces(limit=limit),
        }

    def trace_detail(self, trace_id: str) -> Dict[str, Any]:
        """One trace's full span timeline and tree, by correlation id."""
        trace = get_span_store().trace(trace_id)
        if trace is None:
            raise TraceNotFoundError(
                "no retained trace {!r}: it was never sampled, or aged out "
                "of the span store's ring".format(trace_id))
        return trace

    # ------------------------------------------------------- telemetry history
    def capture_telemetry_history(self) -> Dict[str, Any]:
        """Sample every registry series into the history rings once.

        Runs on the recurring ``maintenance:telemetry-history`` job when
        ``SchedulerConfig.history_interval_seconds`` opts in, and on
        demand via ``POST /v2/runtime/telemetry/history:capture`` (how a
        dormant-scheduler replica keeps its rings warm).
        """
        self._refresh_telemetry_gauges()
        points = self.history.capture()
        return {"points_recorded": points, "stats": self.history.stats()}

    def telemetry_history(self, series: Optional[str] = None,
                          window_seconds: Optional[float] = None,
                          step_seconds: Optional[float] = None,
                          tier: Optional[str] = None,
                          max_series: Optional[int] = None) -> Dict[str, Any]:
        """Ring contents for ``GET /v2/runtime/telemetry/history``."""
        try:
            report = self.history.query(
                series=series, window_seconds=window_seconds,
                step_seconds=step_seconds, tier=tier or "raw",
                max_series=50 if max_series is None else max_series)
        except ValueError as exc:
            raise ServiceError(str(exc))
        report["node_id"] = self._node_id()
        report["stats"] = self.history.stats()
        return report

    # ------------------------------------------------------------------- logs
    def logs_status(self, trace_id: Optional[str] = None,
                    level: Optional[str] = None,
                    component: Optional[str] = None,
                    since: Optional[str] = None,
                    limit: Optional[int] = None) -> Dict[str, Any]:
        """Ring-buffered log records for ``GET /v2/runtime/logs``.

        Reads the *live* process ring (the same one every
        ``JsonLogEmitter`` fans out into), so records written before this
        service was built are still queryable.
        """
        ring = get_log_ring()
        try:
            records = ring.query(trace_id=trace_id, level=level,
                                 component=component, since=since,
                                 limit=200 if limit is None else limit)
        except ValueError as exc:
            raise ServiceError(str(exc))
        return {"node_id": self._node_id(), "stats": ring.stats(),
                "records": records}

    # ---------------------------------------------------------------- cluster
    def cluster_self_summary(self) -> Dict[str, Any]:
        """This node's row in the federated cluster view."""
        self._refresh_telemetry_gauges()
        alerts = self.slo.status()
        firing = [alert["rule"] for alert in alerts["alerts"]
                  if alert["state"] == "firing"]
        summary: Dict[str, Any] = {
            "node_id": self._node_id(),
            "role": (self.replication.role if self.replication is not None
                     else ("replica" if self.read_only else "primary")),
            "read_only": self.read_only,
            "primary_hint": self.primary_hint,
            "instances": self.manager.instance_count(),
            "pending_timers": self.scheduler.timers.pending_count,
            "alerts": {"firing": len(firing), "names": firing},
            "history": {key: self.history.stats()[key]
                        for key in ("captures", "series", "last_capture_at")},
            "deltas": self.history.recent_deltas(KEY_DELTA_PREFIXES),
            "captured_at": self.manager.clock.now().isoformat(),
        }
        if self.persistence is not None:
            summary["journal_seq"] = self.persistence.journal.last_seq
        if self.replication is not None:
            replication = self.replication.status()
            summary["replication"] = {
                key: replication[key] for key in
                ("role", "lag_records", "max_follower_lag", "applied_seq",
                 "journal_seq") if key in replication}
        if self.coordination is not None:
            try:
                coordination = self.coordination.status()
            except GeleeError:
                coordination = {}
            summary["coordination"] = {
                key: coordination[key] for key in ("role", "leader_id",
                                                   "is_leader")
                if key in coordination}
        return summary

    def cluster_status(self) -> Dict[str, Any]:
        """The merged multi-node view for ``GET /v2/runtime/cluster``."""
        return self.cluster.status()

    def cluster_register(self, node_id: str, url: Optional[str] = None,
                         host: Optional[str] = None,
                         port: Optional[int] = None,
                         router=None) -> Dict[str, Any]:
        """Register a peer for fan-out (``POST /v2/runtime/cluster:register``)."""
        return self.cluster.register(node_id, router=router, url=url,
                                     host=host, port=port)

    # ------------------------------------------------------------ profiling
    def profile_status(self) -> Dict[str, Any]:
        """Sampler state + flame tree for ``GET /v2/runtime/profile``."""
        status = self.profiler.status()
        status["node_id"] = self._node_id()
        return status

    def profile_start(self,
                      interval_seconds: Optional[float] = None) -> Dict[str, Any]:
        """Start the sampling profiler (idempotent)."""
        started = self.profiler.start(interval_seconds=interval_seconds)
        return {"started": started, "running": True,
                "interval_seconds": self.profiler.interval_seconds}

    def profile_stop(self) -> Dict[str, Any]:
        """Stop the sampling profiler; the aggregate stays queryable."""
        stopped = self.profiler.stop()
        return {"stopped": stopped, "running": False,
                "samples": self.profiler.status()["samples"]}

    # ------------------------------------------------------------- SLO alerts
    def _publish_alert(self, kind: str, subject_id: str,
                       payload: Dict[str, Any]) -> None:
        """Alert edges travel the kernel bus: journaled + replicated."""
        self.bus.publish(Event(kind=kind, timestamp=self.manager.clock.now(),
                               subject_id=subject_id, actor="slo-engine",
                               payload=payload))

    def evaluate_slos(self) -> Dict[str, Any]:
        """Evaluate every SLO rule once; fire/resolve alerts on the edges.

        Runs on demand (``POST /v2/runtime/alerts:evaluate``) and on the
        recurring ``maintenance:slo-evaluate`` job when
        ``SchedulerConfig.slo_interval_seconds`` opts in.
        """
        return self.slo.evaluate()

    def alerts_status(self) -> Dict[str, Any]:
        """The alert surface (``/v2/runtime/alerts``): rules + states."""
        status = self.slo.status()
        status["node_id"] = self._node_id()
        return status

    # ------------------------------------------------------------- persistence
    def persistence_status(self) -> Dict[str, Any]:
        """Journal / snapshot / store figures, plus the boot recovery report."""
        if self.persistence is None:
            return {"enabled": False}
        status = self.persistence.status()
        if self.recovery_report is not None:
            status["recovery"] = self.recovery_report.to_dict()
        return status

    def persistence_checkpoint(self) -> Dict[str, Any]:
        """Flush dirty instances and publish a snapshot (admin operation)."""
        if self.persistence is None:
            raise ServiceError(
                "persistence is not enabled on this deployment; construct the "
                "service with persistence=PersistenceConfig(...)")
        return self.persistence.checkpoint()

    # ------------------------------------------------------------- replication
    def replication_status(self) -> Dict[str, Any]:
        """Stream position, lag and role for ``GET /v2/runtime/replication``."""
        if self.replication is not None:
            return self.replication.status()
        return {"enabled": False,
                "role": "replica" if self.read_only else "primary"}

    def replication_promote(self) -> Dict[str, Any]:
        """Promote this read replica to primary (failover admin operation)."""
        if self.replication is None or not hasattr(self.replication, "promote"):
            raise ReplicationError(
                "this deployment is not a read replica; there is nothing to "
                "promote")
        return self.replication.promote()

    #: Upper bound on one long-poll park, so a stuck client cannot pin a
    #: request thread indefinitely; clients simply re-issue the request.
    REPLICATION_STREAM_MAX_WAIT = 30.0

    def replication_stream(self, after_seq: int = 0, limit: int = None,
                           wait_timeout: float = None,
                           follower_id: str = None) -> Dict[str, Any]:
        """One journal stream batch, optionally long-polling for it.

        The wire face of push replication
        (``GET /v2/runtime/replication/stream``): with ``wait_timeout`` a
        caught-up follower's request parks on the primary's journal-append
        notification and returns the moment new records exist (or empty at
        the timeout), so remote followers get push latency over plain HTTP
        without holding a poll loop against ``read_batch``.
        """
        source = self.replication
        if source is None or not hasattr(source, "read_batch"):
            raise ReplicationError(
                "this deployment does not serve a replication stream; attach "
                "a ReplicationPrimary")
        try:
            after_seq = int(after_seq)
        except (TypeError, ValueError):
            raise ServiceError("after_seq must be an integer") from None
        if wait_timeout is not None:
            try:
                wait_timeout = float(wait_timeout)
            except (TypeError, ValueError):
                raise ServiceError("wait_timeout must be a number") from None
            source.wait_for(after_seq + 1,
                            timeout=max(0.0, min(wait_timeout,
                                                 self.REPLICATION_STREAM_MAX_WAIT)))
        batch = source.read_batch(after_seq, limit=limit,
                                  follower_id=follower_id)
        return batch.to_dict()

    def replication_bootstrap(self) -> Dict[str, Any]:
        """The snapshot-plus-documents payload a brand-new follower restores
        (``GET /v2/runtime/replication/bootstrap``) — the wire face of
        :meth:`~repro.replication.ReplicationSource.bootstrap` that lets an
        off-host :class:`~repro.replication.HttpReplicationSource` join
        without filesystem access to this node."""
        source = self.replication
        if source is None or not hasattr(source, "bootstrap"):
            raise ReplicationError(
                "this deployment does not serve replication bootstrap; "
                "attach a ReplicationPrimary")
        return source.bootstrap().to_dict()

    # ------------------------------------------------------------ coordination
    def coordination_status(self) -> Dict[str, Any]:
        """Election / fencing figures for ``GET /v2/runtime/coordination``."""
        if self.coordination is not None:
            return self.coordination.status()
        return {"enabled": False,
                "role": "replica" if self.read_only else "primary"}

    def coordination_resign(self) -> Dict[str, Any]:
        """Voluntarily release the primary lease (admin operation).

        The planned-maintenance half of failover: the lease transfers to
        the next campaigner immediately instead of after a TTL expiry, and
        this node demotes cleanly.
        """
        if self.coordination is None or not hasattr(self.coordination, "resign"):
            raise CoordinationError(
                "this deployment is not enrolled in leader election; "
                "construct the service with coordination=CoordinationConfig(...)")
        return self.coordination.resign()

    # --------------------------------------------------------------- scheduler
    def scheduler_status(self) -> Dict[str, Any]:
        """Timer-queue and automation figures for ``/v2/runtime/scheduler``."""
        return self.scheduler.status()

    def scheduler_tick(self, limit: int = None) -> Dict[str, Any]:
        """Fire every due timer now; the ops entry point for time.

        Hosted deployments either call this on a cadence (cron, the HTTP
        transport's idle loop) or run a
        :class:`~repro.scheduler.SchedulerDaemon`; tests and simulations
        call it right after advancing their :class:`SimulatedClock`.
        """
        firings = self.scheduler.tick(limit=limit)
        return {
            "fired": len(firings),
            "firings": [firing.to_dict() for firing in firings],
        }

    #: Timer-id namespaces and handler kinds owned by the scheduler's own
    #: automation.  API callers must not (re)schedule into the namespaces —
    #: the id is the idempotency key, so doing so would silently replace an
    #: internal timer — and must not use the kinds, whose handlers execute
    #: privileged operations (escalation moves, action dispatch,
    #: maintenance jobs) as the system actor.
    _RESERVED_TIMER_PREFIXES = ("deadline:", "retry:", "maintenance:")
    _RESERVED_TIMER_KINDS = ("deadline", "retry", "maintenance")

    def schedule_timer(self, timer_id: str, fire_at: str = None,
                       delay_seconds: float = None, kind: str = "user",
                       subject_id: str = "", payload: Dict[str, Any] = None,
                       interval_seconds: float = None) -> Dict[str, Any]:
        """Schedule (or replace) a named timer via the API surface."""
        self.require(timer_id, "timer_id")
        if str(timer_id).startswith(self._RESERVED_TIMER_PREFIXES):
            raise SchedulerError(
                "timer id {!r} is in a reserved namespace ({}); pick another "
                "name".format(timer_id, ", ".join(self._RESERVED_TIMER_PREFIXES)))
        if kind in self._RESERVED_TIMER_KINDS:
            raise SchedulerError(
                "timer kind {!r} is reserved for the scheduler's own "
                "automation; use a custom kind".format(kind))
        if payload is not None and not isinstance(payload, dict):
            raise SchedulerError("payload must be a JSON object")
        fire_at_dt = None
        if fire_at is not None:
            try:
                fire_at_dt = datetime.fromisoformat(fire_at)
            except ValueError:
                raise SchedulerError(
                    "fire_at must be an ISO-8601 timestamp, got {!r}".format(
                        fire_at)) from None
        if delay_seconds is not None:
            try:
                delay_seconds = float(delay_seconds)
            except (TypeError, ValueError):
                raise SchedulerError("delay_seconds must be a number") from None
        if interval_seconds is not None:
            try:
                interval_seconds = float(interval_seconds)
            except (TypeError, ValueError):
                raise SchedulerError("interval_seconds must be a number") from None
        timer = self.scheduler.timers.schedule(
            timer_id, fire_at=fire_at_dt, delay_seconds=delay_seconds,
            kind=kind or "user", subject_id=subject_id,
            payload=dict(payload or {}), interval_seconds=interval_seconds)
        return timer.to_dict()

    def cancel_timer(self, timer_id: str) -> Dict[str, Any]:
        if str(timer_id).startswith(self._RESERVED_TIMER_PREFIXES):
            # Cancelling an internal timer would silently disable a
            # deadline, a retry chain or a maintenance job.  Deadlines are
            # suppressed by moving the token (or changing the model), not
            # by deleting the enforcement mechanism.
            raise SchedulerError(
                "timer id {!r} is in a reserved namespace ({}); internal "
                "timers cannot be cancelled through the API".format(
                    timer_id, ", ".join(self._RESERVED_TIMER_PREFIXES)))
        if not self.scheduler.timers.cancel(timer_id):
            raise TimerNotFoundError("no pending timer named {!r}".format(timer_id))
        return {"timer_id": timer_id, "cancelled": True}

    def timers_page(self, kind: str = None, subject_id: str = None,
                    page: PageRequest = None) -> Tuple[List[Dict[str, Any]], PageInfo]:
        """One page of pending timers, soonest first."""
        page = page or PageRequest()
        field, descending = page.sort_field(("fire_at", "timer_id", "kind"),
                                            "fire_at")
        timers = self.scheduler.timers.pending(kind=kind, subject_id=subject_id)
        sort_keys = {
            "fire_at": lambda timer: timer.fire_at.isoformat(),
            "timer_id": lambda timer: timer.timer_id,
            "kind": lambda timer: timer.kind,
        }
        selected, info = paginate(timers, page,
                                  sort_key=sort_keys[field],
                                  tie_key=lambda timer: timer.timer_id,
                                  descending=descending,
                                  sort_label=("-" if descending else "") + field)
        return [timer.to_dict() for timer in selected], info

    # ================================================== v2 gateway operations
    # Collection reads are paginated with keyset cursors; the candidate sets
    # come from the runtime's secondary indexes (model/owner/status/phase),
    # so a filtered page request never scans instances that cannot match.

    _INSTANCE_SORTS = {
        "instance_id": lambda instance: instance.instance_id,
        "created_at": lambda instance: instance.created_at,
        "owner": lambda instance: instance.owner,
        "status": lambda instance: instance.status.value,
        "model_uri": lambda instance: instance.model.uri,
    }

    _MODEL_SORTS = {
        "uri": lambda model: model.uri,
        "name": lambda model: model.name,
        "version": lambda model: model.version.version_number,
    }

    def models_page(self, page: PageRequest = None) -> Tuple[List[Dict[str, Any]], PageInfo]:
        page = page or PageRequest()
        field, descending = page.sort_field(tuple(self._MODEL_SORTS), "uri")
        models, info = paginate(self.manager.models(), page,
                                sort_key=self._MODEL_SORTS[field],
                                tie_key=lambda model: model.uri,
                                descending=descending,
                                sort_label=("-" if descending else "") + field)
        return [
            {
                "uri": model.uri,
                "name": model.name,
                "version": model.version.version_number,
                "phases": len(model),
                "resource_types": self.manager.applicable_resource_types(model.uri),
            }
            for model in models
        ], info

    def templates_page(self, page: PageRequest = None) -> Tuple[List[Dict[str, Any]], PageInfo]:
        page = page or PageRequest()
        field, descending = page.sort_field(("template_id", "name"), "template_id")
        return paginate(self.templates.catalog(), page,
                        sort_key=lambda entry: entry.get(field, ""),
                        tie_key=lambda entry: entry["template_id"],
                        descending=descending,
                        sort_label=("-" if descending else "") + field)

    def instances_page(self, model_uri: str = None, owner: str = None,
                       status: str = None, phase_id: str = None,
                       page: PageRequest = None) -> Tuple[List[Dict[str, Any]], PageInfo]:
        page = page or PageRequest()
        field, descending = page.sort_field(tuple(self._INSTANCE_SORTS), "instance_id")
        candidates = self.manager.instances(
            model_uri=model_uri, owner=owner, phase_id=phase_id,
            status=self._parse_status(status))
        instances, info = paginate(candidates, page,
                                   sort_key=self._INSTANCE_SORTS[field],
                                   tie_key=lambda instance: instance.instance_id,
                                   descending=descending,
                                   sort_label=("-" if descending else "") + field)
        return [instance.summary() for instance in instances], info

    def history_page(self, instance_id: str,
                     page: PageRequest = None) -> Tuple[List[Dict[str, Any]], PageInfo]:
        """One page of an instance's event history, oldest first.

        The cursor is the log sequence number of the last entry served; the
        execution log resolves it with a binary search over the per-subject
        index, so paging through one instance's history never scans the log.
        """
        page = page or PageRequest()
        self.manager.instance(instance_id)  # 404 for unknown instances
        after_sequence = 0
        if page.page_token:
            payload = decode_cursor(page.page_token)
            after_sequence = payload.get("seq")
            if not isinstance(after_sequence, int):
                raise ServiceError("malformed page token {!r}".format(page.page_token))
        entries, next_cursor, total = self.execution_log.entries_page(
            subject_id=instance_id, after_sequence=after_sequence,
            limit=page.page_size)
        info = PageInfo(
            page_size=page.page_size, count=len(entries),
            next_page_token=encode_cursor({"seq": next_cursor})
            if next_cursor is not None else None,
            total=total, sort="sequence")
        return [entry.to_dict() for entry in entries], info

    def monitoring_table_page(self, model_uri: str = None, owner: str = None,
                              page: PageRequest = None) -> Tuple[List[Dict[str, Any]], PageInfo]:
        """One page of cockpit rows; rows are computed for the page only."""
        page = page or PageRequest()
        field, descending = page.sort_field(("instance_id", "owner", "created_at"),
                                            "instance_id")
        candidates = self.manager.instances(model_uri=model_uri, owner=owner)
        instances, info = paginate(candidates, page,
                                   sort_key=self._INSTANCE_SORTS[field],
                                   tie_key=lambda instance: instance.instance_id,
                                   descending=descending,
                                   sort_label=("-" if descending else "") + field)
        now = self.manager.clock.now()
        return [self.cockpit.status_row(instance, now).to_dict()
                for instance in instances], info

    # ------------------------------------------------------------- bulk calls
    def batch_create_instances(self, items: List[CreateInstanceItem],
                               actor: str = None) -> BatchResult:
        """Create many instances in one call, fanning out across shards.

        Partial failure is reported per item: a malformed resource or an
        unknown model fails that item only, never the batch.
        """
        results: List[Optional[BatchItemResult]] = [None] * len(items)
        requests: List[Tuple[int, Dict[str, Any]]] = []
        for position, item in enumerate(items):
            try:
                descriptor = ResourceDescriptor.from_dict(item.resource)
            except GeleeError as exc:
                results[position] = BatchItemResult(
                    index=position, ok=False, error=error_info_for(exc))
                continue
            requests.append((position, {
                "model_uri": item.model_uri,
                "resource": descriptor,
                "owner": item.owner,
                "actor": actor or item.owner,
                "version": item.version,
                "instantiation_parameters": item.parameters,
                "token_owners": item.token_owners,
            }))
        outcomes = self.manager.batch_instantiate(
            [request for _, request in requests], capture_errors=True)
        for (position, _), outcome in zip(requests, outcomes):
            if isinstance(outcome, BaseException):
                results[position] = BatchItemResult(
                    index=position, ok=False, error=error_info_for(outcome))
            else:
                results[position] = BatchItemResult(
                    index=position, ok=True, instance_id=outcome.instance_id,
                    data=outcome.summary())
        return BatchResult(results=results)

    def batch_advance_instances(self, items: List[AdvanceItem],
                                actor: str) -> BatchResult:
        """Advance many instances in one call, one concurrent worker per shard.

        Rides the submit/complete dispatch protocol end to end: the per-item
        callback uses ``advance_async``, which *submits* the phase's action
        round-trips and returns without sleeping through them — so a shard
        worker holds its shard lock only for the token move itself, and every
        submitted action across the whole batch waits concurrently on the
        completion pool.  One ``drain_in_flight`` barrier at the end (outside
        all shard locks) makes the response read-your-writes: every reported
        status reflects applied action outcomes.  Per-item failures are
        captured, not raised.
        """
        self.require(actor, "actor")
        # Items are consumed per instance id in request order; every id maps
        # to exactly one shard worker, so each queue has a single consumer.
        queues: Dict[str, deque] = {}
        for item in items:
            queues.setdefault(item.instance_id, deque()).append(item)

        def advance(manager: LifecycleManager, instance_id: str):
            item = queues[instance_id].popleft()
            # Never the sync advance here: the callback runs under the shard
            # lock, and waiting for completions while holding it would
            # deadlock a pooled executor (completions need that same lock).
            return manager.advance_async(
                instance_id, actor, to_phase_id=item.to_phase_id,
                call_parameters=item.call_parameters,
                annotation=item.annotation)

        outcomes = self.manager.map_instances(
            [item.instance_id for item in items], advance, capture_errors=True)
        self.manager.drain_in_flight(
            timeout=getattr(self.manager, "quiesce_drain_timeout", 30.0))
        results = []
        for position, (item, outcome) in enumerate(zip(items, outcomes)):
            if isinstance(outcome, BaseException):
                results.append(BatchItemResult(
                    index=position, ok=False, instance_id=item.instance_id,
                    error=error_info_for(outcome)))
            else:
                # A compact per-item payload: a bulk response carrying 10k
                # full summaries would dwarf the progression work itself;
                # clients fetch details for the items they actually inspect.
                results.append(BatchItemResult(
                    index=position, ok=True, instance_id=item.instance_id,
                    data={"instance_id": outcome.instance_id,
                          "status": outcome.status.value,
                          "current_phase_id": outcome.current_phase_id}))
        return BatchResult(results=results)

    # -------------------------------------------------------- async operations
    def submit_operation(self, kind: str, work) -> Operation:
        """Run ``work`` on a background thread; return the 202 handle."""
        return self.operations.submit(kind, work)

    def operation_view(self, operation_id: str) -> Dict[str, Any]:
        return self.operations.get(operation_id).to_dict()

    def operations_page(self, page: PageRequest = None) -> Tuple[List[Dict[str, Any]], PageInfo]:
        page = page or PageRequest()
        field, descending = page.sort_field(("operation_id", "created_at", "status"),
                                            "created_at")
        operations, info = paginate(
            self.operations.list(), page,
            sort_key=lambda operation: (operation.created_at if field == "created_at"
                                        else getattr(operation, field, None)
                                        if field != "status" else operation.status.value),
            tie_key=lambda operation: operation.operation_id,
            descending=descending,
            sort_label=("-" if descending else "") + field)
        return [operation.to_dict() for operation in operations], info

    @staticmethod
    def _parse_status(status: Optional[str]) -> Optional[InstanceStatus]:
        if status is None or status == "":
            return None
        try:
            return InstanceStatus(status)
        except ValueError:
            raise ServiceError("unknown instance status {!r}; expected one of {}".format(
                status, ", ".join(sorted(s.value for s in InstanceStatus)))) from None

    # ------------------------------------------------------------------ widgets
    def widget_view(self, instance_id: str, viewer: str = None) -> Dict[str, Any]:
        widget = LifecycleWidget(self.manager, instance_id, viewer=viewer, policy=self.policy)
        return widget.view_model().to_dict()

    # ------------------------------------------------------------------ helpers
    def require(self, value: Any, name: str) -> Any:
        if value is None or (isinstance(value, str) and not value.strip()):
            raise ServiceError("missing required field {!r}".format(name))
        return value
