"""The Gelee hosted service facade.

Bundles the kernel (lifecycle manager, resource manager), the data tier
(template store, definition store, execution log, user directory) and the UI
helpers (cockpit, widgets) behind one object with operation-level methods.
Both the REST router and the SOAP endpoint delegate to this facade, so the
two wire formats expose exactly the same behaviour.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..accesscontrol.policy import AccessPolicy
from ..accesscontrol.roles import UserDirectory
from ..clock import Clock
from ..events import EventBus
from ..errors import ServiceError
from ..model.lifecycle import LifecycleModel
from ..monitoring.alerts import collect_alerts
from ..monitoring.cockpit import MonitoringCockpit
from ..plugins.setup import StandardEnvironment, build_standard_environment
from ..resources.descriptor import ResourceDescriptor
from ..runtime.manager import LifecycleManager
from ..runtime.sharding import ShardedLifecycleManager
from ..serialization.lifecycle_xml import lifecycle_from_xml, lifecycle_to_xml
from ..storage.definitions import DefinitionStore
from ..storage.logstore import ExecutionLog
from ..storage.templates import TemplateStore
from ..templates.common import builtin_templates
from ..widgets.widget import LifecycleWidget


class GeleeService:
    """Application service: the operations the hosted platform offers."""

    def __init__(self, environment: StandardEnvironment = None, clock: Clock = None,
                 policy: AccessPolicy = None, with_builtin_templates: bool = True,
                 manager: LifecycleManager = None, shard_count: int = None):
        """Assemble the hosted platform.

        ``manager`` injects a pre-built kernel — typically a
        :class:`~repro.runtime.sharding.ShardedLifecycleManager` wired to a
        batching bus; the service then shares that manager's environment,
        bus and clock.  ``shard_count`` is a shorthand that builds a sharded
        kernel here; with neither, the classic single-shard manager is used.
        """
        if environment is None and manager is not None:
            # Reuse the injected kernel's environment: a fresh one would
            # disagree with the manager about which resources exist.
            environment = manager.environment
        self.environment = environment or build_standard_environment(clock=clock)
        self.directory = policy.directory if policy is not None else UserDirectory()
        self.policy = policy
        if manager is not None:
            self.manager = manager
            self.bus = manager.bus
        elif shard_count is not None and shard_count > 1:
            self.bus = EventBus()
            self.manager = ShardedLifecycleManager(
                self.environment, shard_count=shard_count,
                clock=clock or self.environment.clock, bus=self.bus,
                access_policy=policy)
        else:
            self.bus = EventBus()
            self.manager = LifecycleManager(self.environment,
                                            clock=clock or self.environment.clock,
                                            bus=self.bus, access_policy=policy)
        self.cockpit = MonitoringCockpit(self.manager)
        self.execution_log = ExecutionLog(bus=self.bus)
        self.templates = TemplateStore()
        self.definitions = DefinitionStore()
        if with_builtin_templates:
            for template_id, model in builtin_templates().items():
                self.templates.save(model, template_id=template_id)

    # ----------------------------------------------------------------- models
    def list_models(self) -> List[Dict[str, Any]]:
        return [
            {
                "uri": model.uri,
                "name": model.name,
                "version": model.version.version_number,
                "phases": len(model),
                "resource_types": self.manager.applicable_resource_types(model.uri),
            }
            for model in self.manager.models()
        ]

    def publish_model_json(self, document: Dict[str, Any], actor: str = "") -> Dict[str, Any]:
        model = LifecycleModel.from_dict(document)
        self.manager.publish_model(model, actor=actor)
        return {"uri": model.uri, "version": model.version.version_number}

    def publish_model_xml(self, xml_document: str, actor: str = "") -> Dict[str, Any]:
        model = lifecycle_from_xml(xml_document)
        self.manager.publish_model(model, actor=actor)
        return {"uri": model.uri, "version": model.version.version_number}

    def model_detail(self, model_uri: str, version: str = None,
                     as_xml: bool = False) -> Dict[str, Any]:
        model = self.manager.model(model_uri, version=version)
        if as_xml:
            return {"uri": model.uri, "xml": lifecycle_to_xml(model)}
        return model.to_dict()

    # -------------------------------------------------------------- templates
    def list_templates(self) -> List[Dict[str, Any]]:
        return self.templates.catalog()

    def publish_template(self, template_id: str, actor: str = "",
                         name: str = None) -> Dict[str, Any]:
        """Instantiate a stored template as a published model."""
        model = self.templates.instantiate(template_id, name=name)
        self.manager.publish_model(model, actor=actor)
        return {"uri": model.uri, "name": model.name,
                "version": model.version.version_number}

    # -------------------------------------------------------------- resources
    def register_resource(self, document: Dict[str, Any]) -> Dict[str, Any]:
        descriptor = ResourceDescriptor.from_dict(document)
        self.environment.resource_manager.require(descriptor)
        self.definitions.save_resource(descriptor)
        return descriptor.to_dict()

    def resource_types(self) -> List[str]:
        return self.environment.resource_manager.resource_types()

    # -------------------------------------------------------------- instances
    def create_instance(self, model_uri: str, resource: Dict[str, Any], owner: str,
                        actor: str = None, version: str = None,
                        parameters: Dict[str, Dict[str, Any]] = None,
                        token_owners: List[str] = None) -> Dict[str, Any]:
        descriptor = ResourceDescriptor.from_dict(resource)
        instance = self.manager.instantiate(
            model_uri, descriptor, owner, actor=actor, version=version,
            instantiation_parameters=parameters, token_owners=token_owners,
        )
        return instance.summary()

    def list_instances(self, model_uri: str = None, owner: str = None) -> List[Dict[str, Any]]:
        return [instance.summary()
                for instance in self.manager.instances(model_uri=model_uri, owner=owner)]

    def instance_detail(self, instance_id: str) -> Dict[str, Any]:
        return self.manager.instance(instance_id).to_dict()

    def start_instance(self, instance_id: str, actor: str, phase_id: str = None,
                       call_parameters: Dict[str, Dict[str, Any]] = None) -> Dict[str, Any]:
        return self.manager.start(instance_id, actor, phase_id=phase_id,
                                  call_parameters=call_parameters).summary()

    def advance_instance(self, instance_id: str, actor: str, to_phase_id: str = None,
                         annotation: str = None,
                         call_parameters: Dict[str, Dict[str, Any]] = None) -> Dict[str, Any]:
        return self.manager.advance(instance_id, actor, to_phase_id=to_phase_id,
                                    annotation=annotation,
                                    call_parameters=call_parameters).summary()

    def move_instance(self, instance_id: str, actor: str, phase_id: str,
                      annotation: str = None) -> Dict[str, Any]:
        return self.manager.move_to(instance_id, actor, phase_id,
                                    annotation=annotation).summary()

    def annotate_instance(self, instance_id: str, actor: str, text: str,
                          kind: str = "note") -> Dict[str, Any]:
        return self.manager.annotate(instance_id, actor, text, kind=kind).to_dict()

    def instance_history(self, instance_id: str) -> List[Dict[str, Any]]:
        return [entry.to_dict() for entry in self.execution_log.history_of(instance_id)]

    # ------------------------------------------------------------- propagation
    def propose_change_xml(self, xml_document: str, actor: str,
                           instance_ids: List[str] = None) -> List[Dict[str, Any]]:
        model = lifecycle_from_xml(xml_document)
        proposals = self.manager.propose_change(model, actor=actor, instance_ids=instance_ids)
        return [proposal.to_dict() for proposal in proposals]

    def decide_change(self, proposal_id: str, actor: str, accept: bool,
                      target_phase_id: str = None, reason: str = "") -> Dict[str, Any]:
        if accept:
            plan = self.manager.accept_change(proposal_id, actor, target_phase_id=target_phase_id)
            return plan.to_dict()
        return self.manager.reject_change(proposal_id, actor, reason=reason).to_dict()

    # --------------------------------------------------------------- callbacks
    def action_callback(self, instance_id: str, phase_id: str, call_id: str,
                        status: str, detail: str = "", **payload: Any) -> Dict[str, Any]:
        callback = "urn:gelee:runtime/callbacks/{}/{}/{}".format(instance_id, phase_id, call_id)
        message = self.manager.handle_callback(callback, status, detail=detail, **payload)
        return {"status": message.status, "detail": message.detail}

    # -------------------------------------------------------------- monitoring
    def monitoring_summary(self, model_uri: str = None) -> Dict[str, Any]:
        return self.cockpit.portfolio_summary(model_uri=model_uri).to_dict()

    def monitoring_table(self, model_uri: str = None, owner: str = None) -> List[Dict[str, Any]]:
        return [row.to_dict() for row in self.cockpit.status_table(model_uri=model_uri,
                                                                   owner=owner)]

    def monitoring_alerts(self) -> List[Dict[str, Any]]:
        return [alert.to_dict() for alert in collect_alerts(self.manager)]

    def runtime_stats(self) -> Dict[str, Any]:
        """Deployment-level runtime figures (shard layout, event volume)."""
        manager = self.manager
        stats: Dict[str, Any] = {
            "instances": manager.instance_count(),
            "events_published": self.bus.published_count,
            "by_status": {status.value: count
                          for status, count in manager.status_distribution().items()},
        }
        if isinstance(manager, ShardedLifecycleManager):
            stats["shard_count"] = manager.shard_count
            stats["shard_sizes"] = manager.shard_sizes()
        else:
            stats["shard_count"] = 1
            stats["shard_sizes"] = [manager.instance_count()]
        return stats

    # ------------------------------------------------------------------ widgets
    def widget_view(self, instance_id: str, viewer: str = None) -> Dict[str, Any]:
        widget = LifecycleWidget(self.manager, instance_id, viewer=viewer, policy=self.policy)
        return widget.view_model().to_dict()

    # ------------------------------------------------------------------ helpers
    def require(self, value: Any, name: str) -> Any:
        if value is None or (isinstance(value, str) and not value.strip()):
            raise ServiceError("missing required field {!r}".format(name))
        return value
