"""The hosted service layer (Fig. 2).

"As the primary goal of Gelee is to manage online resources and to have a
system that is simple and usable, it was natural to provide lifecycle
management as a service, and therefore hosted."  The kernel (lifecycle
manager + resource manager) is exposed through:

* a REST facade exchanging JSON documents (:mod:`repro.service.rest`) —
  the deprecated v1 dialect plus the versioned v2 gateway
  (:mod:`repro.service.v2`: typed envelopes, pagination, bulk and async
  operations),
* a SOAP-style facade exchanging XML envelopes (:mod:`repro.service.soap`),
* an optional local HTTP server/client pair built on the standard library
  (:mod:`repro.service.http`), standing in for the hosted deployment.

The Python client SDK lives in :mod:`repro.client`.
"""

from .api import GeleeService
from .transport import Request, Response, parse_bool, parse_str_list
from .rest import RestRouter
from .soap import SoapEndpoint, soap_envelope, parse_soap_envelope
from .http import GeleeHttpServer, GeleeHttpClient

__all__ = [
    "GeleeService",
    "Request",
    "Response",
    "RestRouter",
    "SoapEndpoint",
    "soap_envelope",
    "parse_soap_envelope",
    "GeleeHttpServer",
    "GeleeHttpClient",
    "parse_bool",
    "parse_str_list",
]
