"""Keyset pagination for the v2 collection endpoints.

Every v2 collection answers one *page* at a time.  Pages are addressed by an
opaque cursor (base64url-encoded JSON) that records the sort key of the last
item served, so the next page is "items with key greater than the cursor" —
keyset pagination, not offset pagination:

* a cursor stays valid while items are inserted or removed around it
  (ordering is stable under concurrent inserts: an item created after the
  cursor position appears in a later page, never shifts earlier pages);
* a past-the-end cursor yields an empty page with no next token instead of
  an error, so clients can drain a collection with a simple loop.

Candidate sets come from the PR 1 secondary indexes (the service picks the
smallest matching index before this module ever sees the items), so a page
request never scans instances that cannot match the filter.
"""

from __future__ import annotations

import base64
import binascii
import json
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ...errors import ServiceError

DEFAULT_PAGE_SIZE = 50
MAX_PAGE_SIZE = 500


def encode_cursor(payload: Dict[str, Any]) -> str:
    """Encode a cursor payload as opaque base64url text."""
    raw = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return base64.urlsafe_b64encode(raw).decode("ascii").rstrip("=")


def decode_cursor(token: str) -> Dict[str, Any]:
    """Decode a cursor; a malformed token is a 400, not a crash."""
    try:
        padded = token + "=" * (-len(token) % 4)
        raw = base64.urlsafe_b64decode(padded.encode("ascii"))
        payload = json.loads(raw.decode("utf-8"))
    except (ValueError, binascii.Error, UnicodeDecodeError):
        raise ServiceError("malformed page token {!r}".format(token)) from None
    if not isinstance(payload, dict):
        raise ServiceError("malformed page token {!r}".format(token))
    return payload


@dataclass
class PageRequest:
    """The pagination parameters of one collection request."""

    page_size: int = DEFAULT_PAGE_SIZE
    page_token: Optional[str] = None
    sort: Optional[str] = None  # "field" ascending, "-field" descending

    @classmethod
    def from_request(cls, request, default_sort: str = None) -> "PageRequest":
        """Extract ``page_size``/``page_token``/``sort`` from a Request."""
        return cls(
            page_size=request.int_param("page_size", default=DEFAULT_PAGE_SIZE,
                                        minimum=1, maximum=MAX_PAGE_SIZE),
            page_token=request.param("page_token") or None,
            sort=request.param("sort") or default_sort,
        )

    def sort_field(self, allowed: Sequence[str], default: str) -> Tuple[str, bool]:
        """Return ``(field, descending)`` after validating against ``allowed``."""
        sort = self.sort or default
        descending = sort.startswith("-")
        field = sort[1:] if descending else sort
        if field not in allowed:
            raise ServiceError("cannot sort by {!r}; allowed: {}".format(
                field, ", ".join(sorted(allowed))))
        return field, descending


@dataclass
class PageInfo:
    """The ``meta.pagination`` block of a collection response."""

    page_size: int
    count: int
    next_page_token: Optional[str] = None
    total: Optional[int] = None
    sort: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"page_size": self.page_size, "count": self.count,
                                   "next_page_token": self.next_page_token}
        if self.total is not None:
            payload["total"] = self.total
        if self.sort is not None:
            payload["sort"] = self.sort
        return payload

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "PageInfo":
        return cls(
            page_size=int(document.get("page_size", 0)),
            count=int(document.get("count", 0)),
            next_page_token=document.get("next_page_token"),
            total=document.get("total"),
            sort=document.get("sort"),
        )


def _normalise_key(value: Any) -> Any:
    """Make a sort value JSON-round-trippable and comparable across items."""
    if value is None:
        return ""
    if hasattr(value, "isoformat"):
        return value.isoformat()
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return value
    return str(value)


def paginate(items: List[Any], page: PageRequest, sort_key: Callable[[Any], Any],
             tie_key: Callable[[Any], str], descending: bool = False,
             total: Optional[int] = None, sort_label: str = None) -> Tuple[List[Any], PageInfo]:
    """Slice one keyset page out of ``items``.

    ``items`` is the (already index-filtered) candidate set; it does not need
    to be pre-sorted.  Items are ordered by ``(sort_key, tie_key)`` — the tie
    key must be unique (an instance id, a log sequence) so the order is total
    and a cursor identifies an exact position, located by binary search on
    the sorted keys (never by scanning past served items).
    """
    keyed = sorted(
        ((_normalise_key(sort_key(item)), str(tie_key(item))), item) for item in items
    )
    after = None
    if page.page_token:
        payload = decode_cursor(page.page_token)
        try:
            after = (payload["k"], str(payload["t"]))
        except KeyError:
            raise ServiceError(
                "malformed page token {!r}".format(page.page_token)) from None
    key_of = lambda pair: pair[0]  # noqa: E731 - bisect key accessor
    try:
        if descending:
            # The list is ascending; a descending page is the slice just
            # before the cursor position, served in reverse.
            end = bisect_left(keyed, after, key=key_of) if after is not None else len(keyed)
            selected = keyed[max(0, end - page.page_size):end][::-1]
            has_more = end > page.page_size
        else:
            start = bisect_right(keyed, after, key=key_of) if after is not None else 0
            selected = keyed[start:start + page.page_size]
            has_more = start + len(selected) < len(keyed)
    except TypeError:
        # A forged/stale cursor whose key type does not match this sort.
        raise ServiceError(
            "malformed page token {!r}".format(page.page_token)) from None
    next_token = None
    if has_more and selected:
        last_key = selected[-1][0]
        next_token = encode_cursor({"k": last_key[0], "t": last_key[1]})
    info = PageInfo(page_size=page.page_size, count=len(selected),
                    next_page_token=next_token,
                    total=total if total is not None else len(items),
                    sort=sort_label)
    return [item for _, item in selected], info
