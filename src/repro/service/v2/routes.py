"""Route table of the v2 gateway.

``install(router)`` mounts the versioned surface on a
:class:`~repro.service.rest.RestRouter`.  Every v2 response is the uniform
``{data, meta, error}`` envelope; every collection is paginated with keyset
cursors served from the runtime's secondary indexes; bulk calls fan out
across shards; long-running calls return ``202`` operation handles.

Verb-style sub-resources follow the ``resource:verb`` convention
(``/v2/instances/{id}:advance``, ``/v2/instances:batchCreate``) so the path
grammar stays flat and cache-friendly.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ...errors import ServiceError
from ..transport import Request, Response
from .dto import AdvanceItem, CreateInstanceItem, parse_batch_items
from .envelope import API_VERSION, Envelope
from .pagination import PageRequest

#: Response headers every v2 route carries.
V2_HEADERS = {"X-Gelee-Api-Version": API_VERSION}


def envelope_response(request: Request, data: Any, status: int = 200,
                      pagination: Dict[str, Any] = None) -> Response:
    """Wrap handler data in the v2 envelope."""
    envelope = Envelope.success(data, request_id=request.context.get("request_id", ""),
                                pagination=pagination)
    return Response(status, envelope.to_dict())


def install(router) -> None:
    """Register the v2 routes on the (shared, version-agnostic) router."""
    service = router.service

    def ok(request: Request, data: Any, status: int = 200) -> Response:
        return envelope_response(request, data, status=status)

    def page_of(request: Request, pair, status: int = 200) -> Response:
        items, info = pair
        return envelope_response(request, items, status=status,
                                 pagination=info.to_dict())

    def add(method: str, pattern: str, handler, status: int = 200) -> None:
        router.add_route(method, pattern, handler, status=status,
                         headers=V2_HEADERS)

    # -- design time --------------------------------------------------------
    add("GET", "/v2/models", lambda req, p: page_of(
        req, service.models_page(PageRequest.from_request(req))))
    add("POST", "/v2/models", lambda req, p: ok(
        req, router._publish_model(req, p), status=201))
    add("GET", "/v2/models/detail", lambda req, p: ok(req, service.model_detail(
        service.require(req.param("uri"), "uri"),
        version=req.param("version"),
        as_xml=str(req.param("format", "")).lower() == "xml")))
    add("GET", "/v2/templates", lambda req, p: page_of(
        req, service.templates_page(PageRequest.from_request(req))))
    add("POST", "/v2/templates/{template_id}:publish", lambda req, p: ok(
        req, service.publish_template(p["template_id"], actor=req.actor or "",
                                      name=req.param("name")), status=201))
    add("GET", "/v2/resource-types", lambda req, p: ok(req, service.resource_types()))
    add("POST", "/v2/resources", lambda req, p: ok(
        req, service.register_resource(req.body or {}), status=201))

    # -- instances ----------------------------------------------------------
    add("GET", "/v2/instances", lambda req, p: page_of(req, service.instances_page(
        model_uri=req.param("model_uri"), owner=req.param("owner"),
        status=req.param("status"), phase_id=req.param("phase_id"),
        page=PageRequest.from_request(req))))
    add("POST", "/v2/instances", lambda req, p: ok(
        req, router._create_instance(req, p), status=201))
    add("GET", "/v2/instances/{instance_id}", lambda req, p: ok(
        req, service.instance_detail(p["instance_id"])))
    add("GET", "/v2/instances/{instance_id}/history", lambda req, p: page_of(
        req, service.history_page(p["instance_id"], PageRequest.from_request(req))))
    add("GET", "/v2/instances/{instance_id}/widget", lambda req, p: ok(
        req, service.widget_view(p["instance_id"], viewer=req.param("viewer"))))
    add("POST", "/v2/instances/{instance_id}:start", lambda req, p: ok(
        req, service.start_instance(p["instance_id"], router._actor(req),
                                    phase_id=req.param("phase_id"),
                                    call_parameters=req.param("call_parameters"))))
    add("POST", "/v2/instances/{instance_id}:advance", lambda req, p: ok(
        req, service.advance_instance(p["instance_id"], router._actor(req),
                                      to_phase_id=req.param("to_phase_id"),
                                      annotation=req.param("annotation"),
                                      call_parameters=req.param("call_parameters"))))
    add("POST", "/v2/instances/{instance_id}:move", lambda req, p: ok(
        req, service.move_instance(p["instance_id"], router._actor(req),
                                   phase_id=service.require(
                                       req.param("phase_id"), "phase_id"),
                                   annotation=req.param("annotation"))))
    add("POST", "/v2/instances/{instance_id}:annotate", lambda req, p: ok(
        req, service.annotate_instance(p["instance_id"], router._actor(req),
                                       text=service.require(req.param("text"), "text"),
                                       kind=req.param("kind", "note")), status=201))

    # -- bulk + async -------------------------------------------------------
    def batch_create(request: Request, params: Dict[str, str]) -> Response:
        items = parse_batch_items(request.body, CreateInstanceItem)
        actor = request.actor
        if request.bool_param("async"):
            operation = service.submit_operation(
                "instances.batchCreate",
                lambda: service.batch_create_instances(items, actor=actor).to_dict())
            return ok(request, operation.to_dict(), status=202)
        return ok(request, service.batch_create_instances(items, actor=actor).to_dict())

    def batch_advance(request: Request, params: Dict[str, str]) -> Response:
        items = parse_batch_items(request.body, AdvanceItem)
        actor = router._actor(request)
        if request.bool_param("async"):
            operation = service.submit_operation(
                "instances.batchAdvance",
                lambda: service.batch_advance_instances(items, actor).to_dict())
            return ok(request, operation.to_dict(), status=202)
        return ok(request, service.batch_advance_instances(items, actor).to_dict())

    add("POST", "/v2/instances:batchCreate", batch_create)
    add("POST", "/v2/instances:batchAdvance", batch_advance)
    add("GET", "/v2/operations", lambda req, p: page_of(
        req, service.operations_page(PageRequest.from_request(req))))
    add("GET", "/v2/operations/{operation_id}", lambda req, p: ok(
        req, service.operation_view(p["operation_id"])))

    # -- propagation + callbacks -------------------------------------------
    add("POST", "/v2/propagations", lambda req, p: ok(
        req, service.propose_change_xml(
            service.require(req.param("xml"), "xml"),
            actor=router._actor(req),
            instance_ids=req.list_param("instance_ids")), status=201))
    add("POST", "/v2/propagations/{proposal_id}:decide", lambda req, p: ok(
        req, service.decide_change(p["proposal_id"], router._actor(req),
                                   accept=req.bool_param("accept"),
                                   target_phase_id=req.param("target_phase_id"),
                                   reason=req.param("reason", ""))))
    add("POST", "/v2/callbacks/{instance_id}/{phase_id}/{call_id}", lambda req, p: ok(
        req, service.action_callback(p["instance_id"], p["phase_id"], p["call_id"],
                                     status=service.require(
                                         req.param("status"), "status"),
                                     detail=req.param("detail", "")), status=202))

    # -- monitoring ---------------------------------------------------------
    add("GET", "/v2/monitoring/summary", lambda req, p: ok(
        req, service.monitoring_summary(model_uri=req.param("model_uri"))))
    add("GET", "/v2/monitoring/table", lambda req, p: page_of(
        req, service.monitoring_table_page(model_uri=req.param("model_uri"),
                                           owner=req.param("owner"),
                                           page=PageRequest.from_request(req))))
    add("GET", "/v2/monitoring/alerts", lambda req, p: ok(
        req, service.monitoring_alerts()))
    add("GET", "/v2/monitoring/deadlines", lambda req, p: ok(
        req, service.monitoring_deadlines(model_uri=req.param("model_uri"))))

    def runtime_stats(request: Request, params: Dict[str, str]) -> Response:
        stats = service.runtime_stats()
        stats["api"] = router.stats.snapshot()
        stats["operations"] = len(service.operations.list())
        return ok(request, stats)

    add("GET", "/v2/runtime/stats", runtime_stats)

    # -- telemetry ----------------------------------------------------------
    # The Prometheus exposition is the one v2 route that answers plain text
    # instead of the envelope: scrapers speak text/plain 0.0.4, not JSON.
    def metrics(request: Request, params: Dict[str, str]) -> Response:
        headers = dict(V2_HEADERS)
        headers["Content-Type"] = "text/plain; version=0.0.4; charset=utf-8"
        return Response(200, service.metrics_exposition(), headers=headers)

    add("GET", "/v2/metrics", metrics)
    add("GET", "/v2/runtime/telemetry", lambda req, p: ok(
        req, service.telemetry_status()))
    # Span traces: summaries of every trace the bounded store still holds,
    # and one request's full timeline/tree by its X-Request-Id.
    add("GET", "/v2/runtime/traces", lambda req, p: ok(
        req, service.traces_status(limit=req.int_param("limit", minimum=1))))
    add("GET", "/v2/runtime/traces/{trace_id}", lambda req, p: ok(
        req, service.trace_detail(p["trace_id"])))
    # SLO alerts: rule catalog + per-rule firing state; :evaluate forces an
    # evaluation pass outside the recurring maintenance job (demos, tests,
    # operators who just changed a threshold).
    add("GET", "/v2/runtime/alerts", lambda req, p: ok(
        req, service.alerts_status()))
    add("POST", "/v2/runtime/alerts:evaluate", lambda req, p: ok(
        req, service.evaluate_slos()))

    def float_param(request: Request, name: str) -> Optional[float]:
        raw = request.param(name)
        if raw is None or raw == "":
            return None
        try:
            return float(raw)
        except (TypeError, ValueError):
            raise ServiceError(
                "query parameter {!r} must be a number, got {!r}".format(
                    name, raw))

    # Telemetry history: ring contents by series prefix / window / step /
    # tier, plus an on-demand capture (how a dormant-scheduler replica
    # keeps its rings warm — the read-only guard lets it through).
    add("GET", "/v2/runtime/telemetry/history", lambda req, p: ok(
        req, service.telemetry_history(
            series=req.param("series"),
            window_seconds=float_param(req, "window"),
            step_seconds=float_param(req, "step"),
            tier=req.param("tier"),
            max_series=req.int_param("max_series", minimum=1))))
    add("POST", "/v2/runtime/telemetry/history:capture", lambda req, p: ok(
        req, service.capture_telemetry_history()))
    # The log ring: the JSON records every emitter wrote, queryable by the
    # same X-Request-Id the span tree is filed under.
    add("GET", "/v2/runtime/logs", lambda req, p: ok(
        req, service.logs_status(
            trace_id=req.param("trace_id"),
            level=req.param("level"),
            component=req.param("component"),
            since=req.param("since"),
            limit=req.int_param("limit", minimum=1))))
    # Cluster federation: /cluster fans out to every registered peer and
    # merges (partial over NODE_UNREACHABLE rows, never a failed
    # envelope); /cluster/self is the per-node row the fan-out fetches.
    add("GET", "/v2/runtime/cluster", lambda req, p: ok(
        req, service.cluster_status()))
    add("GET", "/v2/runtime/cluster/self", lambda req, p: ok(
        req, service.cluster_self_summary()))
    add("POST", "/v2/runtime/cluster:register", lambda req, p: ok(
        req, service.cluster_register(
            node_id=service.require(req.param("node_id"), "node_id"),
            url=req.param("url"),
            host=req.param("host"),
            port=req.int_param("port", minimum=1)), status=201))
    # Contention profiling: flame-tree aggregate of the sampling profiler.
    add("GET", "/v2/runtime/profile", lambda req, p: ok(
        req, service.profile_status()))
    add("POST", "/v2/runtime/profile:start", lambda req, p: ok(
        req, service.profile_start(
            interval_seconds=float_param(req, "interval_seconds"))))
    add("POST", "/v2/runtime/profile:stop", lambda req, p: ok(
        req, service.profile_stop()))

    # -- persistence (admin) ------------------------------------------------
    add("GET", "/v2/runtime/persistence", lambda req, p: ok(
        req, service.persistence_status()))
    add("POST", "/v2/runtime/persistence:checkpoint", lambda req, p: ok(
        req, service.persistence_checkpoint(), status=201))

    # -- replication (admin) ------------------------------------------------
    # Mounted on every node: a primary answers with its follower lag table,
    # a replica with its stream position; :promote is the failover lever —
    # the one POST the read-only guard lets through on a replica.
    add("GET", "/v2/runtime/replication", lambda req, p: ok(
        req, service.replication_status()))
    # The push half of replication over HTTP: with wait_timeout a caught-up
    # follower's request parks on the journal-append notification instead of
    # polling read_batch on a timer.
    add("GET", "/v2/runtime/replication/stream", lambda req, p: ok(
        req, service.replication_stream(
            after_seq=req.int_param("after_seq", minimum=0) or 0,
            limit=req.int_param("limit", minimum=1),
            wait_timeout=req.param("wait_timeout"),
            follower_id=req.param("follower_id"))))
    add("POST", "/v2/runtime/replication:promote", lambda req, p: ok(
        req, service.replication_promote()))
    # Bootstrap over the wire: what an off-host HttpReplicationSource
    # restores before it starts streaming.
    add("GET", "/v2/runtime/replication/bootstrap", lambda req, p: ok(
        req, service.replication_bootstrap()))

    # -- coordination (admin) -----------------------------------------------
    # Leader election and fencing (docs/COORDINATION.md): status shows who
    # holds the primary lease and at what epoch; :resign hands the lease to
    # the next campaigner immediately (planned maintenance).
    add("GET", "/v2/runtime/coordination", lambda req, p: ok(
        req, service.coordination_status()))
    add("POST", "/v2/runtime/coordination:resign", lambda req, p: ok(
        req, service.coordination_resign()))

    # -- scheduler / timers -------------------------------------------------
    add("GET", "/v2/timers", lambda req, p: page_of(req, service.timers_page(
        kind=req.param("kind"), subject_id=req.param("subject_id"),
        page=PageRequest.from_request(req))))
    add("POST", "/v2/timers", lambda req, p: ok(req, service.schedule_timer(
        timer_id=req.param("timer_id"),
        fire_at=req.param("fire_at"),
        delay_seconds=req.param("delay_seconds"),
        kind=req.param("kind", "user"),
        subject_id=req.param("subject_id", ""),
        payload=req.param("payload"),
        interval_seconds=req.param("interval_seconds")), status=201))
    add("POST", "/v2/timers/{timer_id}:cancel", lambda req, p: ok(
        req, service.cancel_timer(p["timer_id"])))
    add("GET", "/v2/runtime/scheduler", lambda req, p: ok(
        req, service.scheduler_status()))
    add("POST", "/v2/runtime/scheduler:tick", lambda req, p: ok(
        req, service.scheduler_tick(limit=req.int_param("limit", minimum=1))))
