"""The versioned v2 API gateway.

A transport-neutral, typed service surface mounted next to the legacy v1
routes:

* :mod:`~repro.service.v2.envelope` — the ``{data, meta, error}`` response
  envelope, per-request ids and the machine-readable error catalog;
* :mod:`~repro.service.v2.pagination` — keyset cursors over the runtime's
  secondary indexes;
* :mod:`~repro.service.v2.dto` — the typed request/response dataclasses
  shared with the client SDK;
* :mod:`~repro.service.v2.operations` — async operation handles
  (``202 Accepted`` + ``GET /v2/operations/{id}``);
* :mod:`~repro.service.v2.middleware` — the request pipeline (request ids,
  actor extraction, timing stats, error translation) used by both versions;
* :mod:`~repro.service.v2.routes` — the route table.
"""

from .dto import (
    AdvanceItem,
    BatchItemResult,
    BatchResult,
    CreateInstanceItem,
    parse_batch_items,
)
from .envelope import (
    API_VERSION,
    ERROR_CATALOG,
    Envelope,
    ErrorInfo,
    ResponseMeta,
    classify_error,
    error_info_for,
)
from .middleware import (
    ActorMiddleware,
    ApiStats,
    ErrorTranslationMiddleware,
    ReadOnlyGuardMiddleware,
    RequestIdMiddleware,
    TimingMiddleware,
    build_pipeline,
)
from .operations import Operation, OperationStatus, OperationStore
from .pagination import PageInfo, PageRequest, decode_cursor, encode_cursor, paginate
from .routes import install

__all__ = [
    "API_VERSION",
    "ERROR_CATALOG",
    "ActorMiddleware",
    "AdvanceItem",
    "ApiStats",
    "BatchItemResult",
    "BatchResult",
    "CreateInstanceItem",
    "Envelope",
    "ErrorInfo",
    "ErrorTranslationMiddleware",
    "Operation",
    "OperationStatus",
    "OperationStore",
    "PageInfo",
    "PageRequest",
    "ReadOnlyGuardMiddleware",
    "RequestIdMiddleware",
    "ResponseMeta",
    "TimingMiddleware",
    "build_pipeline",
    "classify_error",
    "decode_cursor",
    "encode_cursor",
    "error_info_for",
    "install",
    "paginate",
    "parse_batch_items",
]
