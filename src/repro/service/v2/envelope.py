"""The v2 response envelope and the machine-readable error model.

Every v2 response — success or failure, any transport — is one JSON object::

    {"data": ..., "meta": {...}, "error": null}          # success
    {"data": null, "meta": {...}, "error": {"code": ..}} # failure

``meta`` always carries the per-request id (also echoed in the
``X-Request-Id`` header) so a client log line can be correlated with a
server trace, and collection responses add a ``pagination`` block.

The error model is a closed catalog: every :class:`~repro.errors.GeleeError`
subclass maps to exactly one HTTP status and one stable machine-readable
code (``INSTANCE_NOT_FOUND``, ``VALIDATION_FAILED``, ...).  Clients branch
on the code, never on the human-readable message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Type

from ... import errors
from ...identifiers import new_id

API_VERSION = "v2"


def new_request_id() -> str:
    return new_id("req")


# --------------------------------------------------------------------- errors
#: The closed error catalog: (exception class, HTTP status, stable code).
#: Order matters — the first ``isinstance`` match wins, so subclasses are
#: listed before their bases and the bare ``GeleeError`` is the final net.
ERROR_CATALOG: List[Tuple[Type[BaseException], int, str]] = [
    (errors.ValidationError, 400, "VALIDATION_FAILED"),
    (errors.UnknownPhaseError, 404, "PHASE_NOT_FOUND"),
    (errors.DuplicatePhaseError, 400, "DUPLICATE_PHASE"),
    (errors.ModelError, 400, "MODEL_INVALID"),
    (errors.SerializationError, 400, "SERIALIZATION_FAILED"),
    (errors.UnknownActionTypeError, 400, "UNKNOWN_ACTION_TYPE"),
    (errors.ActionResolutionError, 409, "ACTION_UNRESOLVABLE"),
    (errors.ActionInvocationError, 502, "ACTION_FAILED"),
    (errors.ParameterBindingError, 400, "PARAMETER_BINDING_FAILED"),
    (errors.ActionError, 409, "ACTION_ERROR"),
    (errors.UnknownResourceTypeError, 400, "UNKNOWN_RESOURCE_TYPE"),
    (errors.ResourceNotFoundError, 404, "RESOURCE_NOT_FOUND"),
    (errors.ResourceAccessError, 403, "RESOURCE_ACCESS_DENIED"),
    (errors.ResourceError, 400, "RESOURCE_ERROR"),
    (errors.ReadOnlyReplicaError, 409, "REPLICA_READ_ONLY"),
    (errors.RuntimeStateError, 409, "INVALID_STATE"),
    (errors.InstanceNotFoundError, 404, "INSTANCE_NOT_FOUND"),
    (errors.LifecycleNotFoundError, 404, "MODEL_NOT_FOUND"),
    (errors.OperationNotFoundError, 404, "OPERATION_NOT_FOUND"),
    (errors.PermissionDeniedError, 403, "PERMISSION_DENIED"),
    (errors.ConcurrencyError, 409, "STALE_VERSION"),
    (errors.JournalTruncatedError, 409, "JOURNAL_TRUNCATED"),
    (errors.StorageError, 500, "STORAGE_FAILED"),
    (errors.ReplicationError, 409, "REPLICATION_INVALID"),
    (errors.StaleFencingTokenError, 409, "STALE_FENCING_TOKEN"),
    (errors.NotLeaderError, 409, "NOT_LEADER"),
    (errors.CoordinationError, 409, "COORDINATION_INVALID"),
    (errors.ServiceError, 400, "BAD_REQUEST"),
    (errors.TemplateError, 404, "TEMPLATE_NOT_FOUND"),
    (errors.PropagationError, 409, "PROPAGATION_INVALID"),
    (errors.TimerNotFoundError, 404, "TIMER_NOT_FOUND"),
    (errors.SchedulerError, 400, "SCHEDULER_REQUEST_INVALID"),
    (errors.TraceNotFoundError, 404, "TRACE_NOT_FOUND"),
    (errors.NodeUnreachableError, 502, "NODE_UNREACHABLE"),
    (errors.GeleeError, 500, "INTERNAL_ERROR"),
]


@dataclass
class ErrorInfo:
    """Machine-readable error payload of a failed v2 response."""

    code: str
    message: str
    status: int = 500
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"code": self.code, "message": self.message,
                                   "status": self.status}
        if self.details:
            payload["details"] = dict(self.details)
        return payload

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "ErrorInfo":
        return cls(
            code=document.get("code", "INTERNAL_ERROR"),
            message=document.get("message", ""),
            status=int(document.get("status", 500)),
            details=dict(document.get("details") or {}),
        )


def classify_error(exc: BaseException) -> Tuple[int, str]:
    """Return the ``(status, code)`` pair for a library exception."""
    for exc_class, status, code in ERROR_CATALOG:
        if isinstance(exc, exc_class):
            return status, code
    return 500, "INTERNAL_ERROR"


def error_info_for(exc: BaseException, **details: Any) -> ErrorInfo:
    status, code = classify_error(exc)
    info = ErrorInfo(code=code, message=str(exc), status=status,
                     details={k: v for k, v in details.items() if v is not None})
    if isinstance(exc, errors.ValidationError) and exc.problems:
        info.details.setdefault("problems", list(exc.problems))
    if isinstance(exc, errors.ReadOnlyReplicaError) and exc.primary:
        # The 409 tells a client *where* to retry the write.
        info.details.setdefault("primary", exc.primary)
    if isinstance(exc, errors.JournalTruncatedError):
        info.details.setdefault("oldest_available_seq", exc.oldest_available)
    if isinstance(exc, errors.NodeUnreachableError) and exc.node_id:
        info.details.setdefault("node_id", exc.node_id)
    if isinstance(exc, errors.StaleFencingTokenError):
        # The deposed writer learns exactly how far behind its epoch is.
        info.details.setdefault("token", exc.token)
        info.details.setdefault("latest_token", exc.latest)
    return info


# ------------------------------------------------------------------- envelope
@dataclass
class ResponseMeta:
    """The ``meta`` block: request correlation, timing and pagination."""

    request_id: str = ""
    api_version: str = API_VERSION
    duration_ms: Optional[float] = None
    pagination: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "request_id": self.request_id,
            "api_version": self.api_version,
        }
        if self.duration_ms is not None:
            payload["duration_ms"] = self.duration_ms
        if self.pagination is not None:
            payload["pagination"] = dict(self.pagination)
        return payload

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "ResponseMeta":
        return cls(
            request_id=document.get("request_id", ""),
            api_version=document.get("api_version", API_VERSION),
            duration_ms=document.get("duration_ms"),
            pagination=document.get("pagination"),
        )


@dataclass
class Envelope:
    """The uniform v2 response body ``{data, meta, error}``."""

    data: Any = None
    meta: ResponseMeta = field(default_factory=ResponseMeta)
    error: Optional[ErrorInfo] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "data": self.data,
            "meta": self.meta.to_dict(),
            "error": self.error.to_dict() if self.error else None,
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "Envelope":
        error = document.get("error")
        return cls(
            data=document.get("data"),
            meta=ResponseMeta.from_dict(document.get("meta") or {}),
            error=ErrorInfo.from_dict(error) if error else None,
        )

    @classmethod
    def success(cls, data: Any, request_id: str = "",
                pagination: Dict[str, Any] = None) -> "Envelope":
        return cls(data=data, meta=ResponseMeta(request_id=request_id,
                                                pagination=pagination))

    @classmethod
    def failure(cls, error: ErrorInfo, request_id: str = "") -> "Envelope":
        return cls(data=None, meta=ResponseMeta(request_id=request_id), error=error)
