"""Typed request/response DTOs of the v2 contract.

These dataclasses *are* the wire contract: the gateway parses request bodies
through ``from_dict`` (collecting every problem into one
:class:`~repro.errors.ServiceError` instead of failing field by field) and
serialises results through ``to_dict``.  The client SDK imports the same
classes, so both ends of the wire share one definition and cannot drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ...errors import ServiceError
from .envelope import ErrorInfo


def _require_str(document: Dict[str, Any], name: str, problems: List[str]) -> Optional[str]:
    value = document.get(name)
    if not isinstance(value, str) or not value.strip():
        problems.append("missing required field {!r}".format(name))
        return None
    return value


@dataclass
class CreateInstanceItem:
    """One instance creation inside ``POST /v2/instances:batchCreate``."""

    model_uri: str
    resource: Dict[str, Any]
    owner: str
    version: Optional[str] = None
    parameters: Optional[Dict[str, Dict[str, Any]]] = None
    token_owners: Optional[List[str]] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"model_uri": self.model_uri,
                                   "resource": dict(self.resource),
                                   "owner": self.owner}
        if self.version is not None:
            payload["version"] = self.version
        if self.parameters is not None:
            payload["parameters"] = self.parameters
        if self.token_owners is not None:
            payload["token_owners"] = list(self.token_owners)
        return payload

    @classmethod
    def from_dict(cls, document: Any, position: int = 0) -> "CreateInstanceItem":
        if not isinstance(document, dict):
            raise ServiceError("items[{}] must be an object".format(position))
        problems: List[str] = []
        model_uri = _require_str(document, "model_uri", problems)
        owner = _require_str(document, "owner", problems)
        resource = document.get("resource")
        if not isinstance(resource, dict):
            problems.append("missing required field 'resource'")
        if problems:
            raise ServiceError("items[{}]: {}".format(position, "; ".join(problems)))
        return cls(model_uri=model_uri, resource=resource, owner=owner,
                   version=document.get("version"),
                   parameters=document.get("parameters"),
                   token_owners=document.get("token_owners"))


@dataclass
class AdvanceItem:
    """One token move inside ``POST /v2/instances:batchAdvance``."""

    instance_id: str
    to_phase_id: Optional[str] = None
    annotation: Optional[str] = None
    call_parameters: Optional[Dict[str, Dict[str, Any]]] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"instance_id": self.instance_id}
        if self.to_phase_id is not None:
            payload["to_phase_id"] = self.to_phase_id
        if self.annotation is not None:
            payload["annotation"] = self.annotation
        if self.call_parameters is not None:
            payload["call_parameters"] = self.call_parameters
        return payload

    @classmethod
    def from_dict(cls, document: Any, position: int = 0) -> "AdvanceItem":
        if isinstance(document, str):
            # Shorthand: a bare instance id advances along the single
            # modelled transition.
            return cls(instance_id=document)
        if not isinstance(document, dict):
            raise ServiceError("items[{}] must be an object or an id".format(position))
        problems: List[str] = []
        instance_id = _require_str(document, "instance_id", problems)
        if problems:
            raise ServiceError("items[{}]: {}".format(position, "; ".join(problems)))
        return cls(instance_id=instance_id,
                   to_phase_id=document.get("to_phase_id"),
                   annotation=document.get("annotation"),
                   call_parameters=document.get("call_parameters"))


def parse_batch_items(body: Any, item_class, max_items: int = 10_000) -> List[Any]:
    """Parse the ``items`` array of a bulk request body."""
    if not isinstance(body, dict):
        raise ServiceError("bulk request body must be a JSON object")
    items = body.get("items")
    if not isinstance(items, list) or not items:
        raise ServiceError("bulk request body must carry a non-empty 'items' array")
    if len(items) > max_items:
        raise ServiceError("bulk request carries {} items; the limit is {}".format(
            len(items), max_items))
    return [item_class.from_dict(item, position) for position, item in enumerate(items)]


@dataclass
class BatchItemResult:
    """Per-item outcome of a bulk operation (success *or* failure)."""

    index: int
    ok: bool
    instance_id: Optional[str] = None
    data: Any = None
    error: Optional[ErrorInfo] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "ok": self.ok,
            "instance_id": self.instance_id,
            "data": self.data,
            "error": self.error.to_dict() if self.error else None,
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "BatchItemResult":
        error = document.get("error")
        return cls(index=int(document.get("index", 0)),
                   ok=bool(document.get("ok")),
                   instance_id=document.get("instance_id"),
                   data=document.get("data"),
                   error=ErrorInfo.from_dict(error) if error else None)


@dataclass
class BatchResult:
    """The outcome of a bulk operation: per-item results plus the tally.

    A bulk call never fails wholesale because one item failed — partial
    failure is reported per item, matching the paper's stance that action
    failures must not block the (human-driven) flow.
    """

    results: List[BatchItemResult] = field(default_factory=list)

    @property
    def succeeded(self) -> int:
        return sum(1 for result in self.results if result.ok)

    @property
    def failed(self) -> int:
        return len(self.results) - self.succeeded

    def to_dict(self) -> Dict[str, Any]:
        return {
            "total": len(self.results),
            "succeeded": self.succeeded,
            "failed": self.failed,
            "results": [result.to_dict() for result in self.results],
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "BatchResult":
        return cls(results=[BatchItemResult.from_dict(item)
                            for item in document.get("results", [])])
