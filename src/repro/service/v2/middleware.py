"""The gateway middleware pipeline.

The v0 router wrapped every handler call in one ad-hoc ``try/except`` ladder.
The gateway replaces that with an explicit pipeline — each middleware is a
callable ``(request, call_next) -> Response`` — shared by *both* API
versions, so cross-cutting concerns live in exactly one place:

``RequestIdMiddleware``
    stamps a fresh ``req-…`` id on every request and echoes it in the
    ``X-Request-Id`` response header.
``ActorMiddleware``
    normalises actor extraction (``X-Gelee-Actor`` header → ``Request.actor``
    → ``actor`` query/body parameter) before any handler runs.
``TimingMiddleware``
    measures wall-clock per matched route and aggregates counts/latency into
    :class:`ApiStats`, surfaced by ``GET /v2/runtime/stats``.
``ErrorTranslationMiddleware``
    converts :class:`~repro.errors.GeleeError` into a response: the legacy
    v1 ``{"error": ...}`` body with the historical status mapping, or the v2
    envelope with catalog codes — selected per request path.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List

from ...errors import (
    GeleeError,
    InstanceNotFoundError,
    LifecycleNotFoundError,
    OperationNotFoundError,
    PermissionDeniedError,
    ReadOnlyReplicaError,
    SerializationError,
    ServiceError,
    TemplateError,
    ValidationError,
)
from ...telemetry import get_registry, span_scope, trace_scope
from ...telemetry.logring import get_log_ring
from ...telemetry.log import JsonLogEmitter
from ..transport import Request, Response
from .envelope import Envelope, error_info_for, new_request_id

#: A middleware takes the request and the next stage, returns a response.
Middleware = Callable[[Request, Callable[[Request], Response]], Response]


def build_pipeline(middlewares: List[Middleware],
                   terminal: Callable[[Request], Response]) -> Callable[[Request], Response]:
    """Compose middlewares around the terminal dispatch, first one outermost."""
    pipeline = terminal
    for middleware in reversed(middlewares):
        def stage(request: Request, _mw=middleware, _next=pipeline) -> Response:
            return _mw(request, _next)
        pipeline = stage
    return pipeline


class ApiStats:
    """Per-route request counters and latency totals (thread-safe)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._routes: Dict[str, Dict[str, float]] = {}

    def record(self, route: str, duration_s: float, status: int) -> None:
        with self._lock:
            entry = self._routes.setdefault(
                route, {"requests": 0, "errors": 0, "total_ms": 0.0, "max_ms": 0.0})
            entry["requests"] += 1
            if status >= 400:
                entry["errors"] += 1
            duration_ms = duration_s * 1000.0
            entry["total_ms"] += duration_ms
            entry["max_ms"] = max(entry["max_ms"], duration_ms)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            routes = {
                route: {
                    "requests": int(entry["requests"]),
                    "errors": int(entry["errors"]),
                    "avg_ms": round(entry["total_ms"] / entry["requests"], 3)
                    if entry["requests"] else 0.0,
                    "max_ms": round(entry["max_ms"], 3),
                }
                for route, entry in self._routes.items()
            }
        return {
            "routes": routes,
            "requests": sum(entry["requests"] for entry in routes.values()),
            "errors": sum(entry["errors"] for entry in routes.values()),
        }


# ---------------------------------------------------------------- middlewares
class RequestIdMiddleware:
    """Assign a correlation id, activate it as the trace, echo it back.

    The id becomes the current :mod:`~repro.telemetry.trace` scope for the
    whole downstream pipeline, so every kernel event the request causes is
    stamped ``origin_request_id`` and the journal/replication stream carry
    the same id the client saw in ``X-Request-Id``.

    It is also the trace's root *span* site: the whole downstream pipeline
    runs inside a ``gateway.request`` span, so the span tree served by
    ``GET /v2/runtime/traces/{request_id}`` starts at the gateway and every
    downstream hop (shard drain, dispatch, journal append) parents under
    it.  The matched route is only known after handling, so it is stamped
    onto the span's attrs on the way out.
    """

    def __call__(self, request: Request, call_next) -> Response:
        request.context.setdefault("request_id", new_request_id())
        with trace_scope(request.context["request_id"]):
            with span_scope("gateway.request", method=request.method,
                            path=request.path) as span:
                response = call_next(request)
                if span is not None:
                    span.attrs["status"] = response.status
                    route = request.context.get("route")
                    if route is not None:
                        span.attrs["route"] = route
        response.headers.setdefault("X-Request-Id", request.context["request_id"])
        return response


class ActorMiddleware:
    """Fill ``Request.actor`` from the conventional fallbacks once."""

    def __call__(self, request: Request, call_next) -> Response:
        if request.actor is None:
            actor = request.param("actor")
            if isinstance(actor, str) and actor.strip():
                request.actor = actor
        return call_next(request)


class TimingMiddleware:
    """Measure matched-route latency into :class:`ApiStats` + the registry.

    ``ApiStats`` keeps the compact per-route averages served by
    ``GET /v2/runtime/stats``; the registry gets the scrape-friendly
    series — a latency histogram per route and a request counter per
    route/status pair — for ``GET /v2/metrics``.
    """

    def __init__(self, stats: ApiStats, registry=None):
        self.stats = stats
        registry = registry or get_registry()
        self._latency = registry.histogram(
            "gelee_api_request_seconds",
            "Wall-clock latency of matched API routes.",
            labelnames=("route",))
        self._requests = registry.counter(
            "gelee_api_requests_total",
            "API requests by matched route and response status.",
            labelnames=("route", "status"))
        # The access log writes straight into the process log ring (not
        # stderr — per-request lines would drown real output) so every
        # request leaves a record queryable at /v2/runtime/logs by the
        # same X-Request-Id its span tree is filed under.  This runs
        # inside RequestIdMiddleware's trace scope, so the emitter
        # stamps the trace id on its own.
        self._log = JsonLogEmitter(component="gateway",
                                   sink=get_log_ring())

    def __call__(self, request: Request, call_next) -> Response:
        started = time.perf_counter()
        response = call_next(request)
        route = request.context.get("route")
        if route is not None:
            duration = time.perf_counter() - started
            self.stats.record(route, duration, response.status)
            self._latency.observe(duration, route=route)
            self._requests.inc(route=route, status=str(response.status))
            self._log.emit("request.handled",
                           level="warning" if response.status >= 500 else "info",
                           method=request.method, route=route,
                           status=response.status,
                           duration_ms=round(duration * 1000.0, 3))
        return response


class ReadOnlyGuardMiddleware:
    """Reject mutations on a read replica with a typed 409 + primary hint.

    Sits *inside* the error translation, so the raised
    :class:`~repro.errors.ReadOnlyReplicaError` comes back as the catalog's
    ``REPLICA_READ_ONLY`` envelope (v2) or the historical 409 body (v1),
    with the primary's address in the error details.  The runtime enforces
    read-only too (defence in depth for in-process callers); this guard
    exists so *every* wire mutation — including ones that never reach the
    kernel, like timer scheduling or checkpoints — answers consistently.
    Promotion is the one POST a replica must accept; it stays reachable.
    """

    WRITE_METHODS = frozenset(("POST", "PUT", "PATCH", "DELETE"))
    #: Paths a replica serves despite being read-only.  Promotion is the
    #: failover lever itself; :resign must stay reachable on a demoted node
    #: so the admin gets the informative NOT_LEADER instead of a read-only
    #: bounce (resigning mutates the lease table, not this replica's state).
    #: Observability POSTs mutate only node-local telemetry state (history
    #: rings, the peer registry, the profiler thread), never replicated
    #: lifecycle data — a replica must keep serving them or the single
    #: pane of glass goes dark exactly when it matters.
    ALLOWED_PATHS = frozenset(("/v2/runtime/replication:promote",
                               "/v2/runtime/coordination:resign",
                               "/v2/runtime/telemetry/history:capture",
                               "/v2/runtime/cluster:register",
                               "/v2/runtime/profile:start",
                               "/v2/runtime/profile:stop"))

    def __init__(self, service):
        self.service = service

    def __call__(self, request: Request, call_next) -> Response:
        if (self.service.read_only
                and request.method.upper() in self.WRITE_METHODS
                and request.path.rstrip("/") not in self.ALLOWED_PATHS):
            raise ReadOnlyReplicaError(
                "this deployment is a read replica; send writes to the "
                "primary", primary=self.service.primary_hint)
        return call_next(request)


class ErrorTranslationMiddleware:
    """Translate library errors into the version-appropriate wire shape."""

    def __call__(self, request: Request, call_next) -> Response:
        try:
            return call_next(request)
        except GeleeError as exc:
            if request.is_v2:
                return self.v2_error_response(request, exc)
            return self.v1_error_response(exc)

    @staticmethod
    def v2_error_response(request: Request, exc: BaseException) -> Response:
        info = error_info_for(exc)
        envelope = Envelope.failure(info, request_id=request.context.get("request_id", ""))
        return Response(info.status, envelope.to_dict())

    @staticmethod
    def v1_error_response(exc: GeleeError) -> Response:
        """The historical v1 status ladder — bodies unchanged since v0."""
        if isinstance(exc, (LifecycleNotFoundError, InstanceNotFoundError,
                            TemplateError, OperationNotFoundError)):
            return Response(404, {"error": str(exc)})
        if isinstance(exc, PermissionDeniedError):
            return Response(403, {"error": str(exc)})
        if isinstance(exc, (ValidationError, SerializationError, ServiceError)):
            return Response(400, {"error": str(exc)})
        return Response(409, {"error": str(exc)})
