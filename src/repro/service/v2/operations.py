"""Async operation handles for long-running v2 calls.

A bulk progression over thousands of instances dispatches thousands of
(simulated) web-service actions; holding the HTTP connection open for the
whole fan-out would serialise clients on their slowest call.  The v2 gateway
instead answers ``202 Accepted`` with an *operation handle* and runs the work
on a persistent :class:`~repro.workers.WorkerPool`; clients poll
``GET /v2/operations/{id}`` (or use ``GeleeClient.wait_operation``) until
the handle reports a terminal state.

The store's pool is its own, deliberately **not** shared with the runtime's
fan-out/completion pool: operation bodies call ``map_instances`` and
``drain_in_flight``, i.e. they *wait on* work running in the runtime pool —
sharing one pool would let queued operations starve the very workers they
are waiting for.

The store keeps a bounded history of finished operations (oldest evicted
first) so a long-lived deployment does not leak one record per bulk call.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from datetime import datetime
from enum import Enum
from typing import Any, Callable, Dict, List, Optional

from ...clock import Clock, SystemClock
from ...errors import OperationNotFoundError
from ...identifiers import new_id
from ...telemetry import SpanContext, current_span_context, span_scope
from ...workers import WorkerPool
from .envelope import ErrorInfo, error_info_for


class OperationStatus(Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"

    @property
    def is_terminal(self) -> bool:
        return self in (OperationStatus.SUCCEEDED, OperationStatus.FAILED)


@dataclass
class Operation:
    """One long-running server-side operation."""

    operation_id: str
    kind: str
    created_at: datetime
    status: OperationStatus = OperationStatus.PENDING
    started_at: Optional[datetime] = None
    finished_at: Optional[datetime] = None
    result: Any = None
    error: Optional[ErrorInfo] = None
    #: Internal completion signal for in-process waiters.
    done: threading.Event = field(default_factory=threading.Event, repr=False)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "operation_id": self.operation_id,
            "kind": self.kind,
            "status": self.status.value,
            "created_at": self.created_at.isoformat(),
            "started_at": self.started_at.isoformat() if self.started_at else None,
            "finished_at": self.finished_at.isoformat() if self.finished_at else None,
            "result": self.result,
            "error": self.error.to_dict() if self.error else None,
        }


class OperationStore:
    """Submits work to a persistent worker pool and tracks the handles."""

    #: Pool size when the store creates its own: enough to overlap a few
    #: bulk calls without letting an unbounded thread count sneak back in
    #: through the 202 surface.
    DEFAULT_WORKERS = 4

    def __init__(self, clock: Clock = None, capacity: int = 1000,
                 pool: WorkerPool = None, workers: int = None):
        self._clock = clock or SystemClock()
        self._capacity = capacity
        self._operations: Dict[str, Operation] = {}
        self._order: List[str] = []
        self._lock = threading.Lock()
        self._pool = pool
        self._owns_pool = pool is None
        self._workers = workers or self.DEFAULT_WORKERS

    # ------------------------------------------------------------------ submit
    def submit(self, kind: str, work: Callable[[], Any]) -> Operation:
        """Queue ``work`` on the pool; return the handle immediately.

        Replaces the old thread-per-operation spawn: a burst of bulk calls
        used to start one OS thread each, now they share the store's
        fixed-size pool (created lazily, so deployments that never use the
        202 surface pay nothing).
        """
        operation = Operation(operation_id=new_id("op"), kind=kind,
                              created_at=self._clock.now())
        with self._lock:
            self._operations[operation.operation_id] = operation
            self._order.append(operation.operation_id)
            self._evict_locked()
        # The 202 surface is a thread hop like any other: capture the
        # requester's span context so the deferred work keeps the gateway's
        # origin_request_id and shows up in its span tree.
        self._ensure_pool().submit(self._run, operation, work,
                                   current_span_context())
        return operation

    def _ensure_pool(self) -> WorkerPool:
        with self._lock:
            if self._pool is None or self._pool.closed:
                self._pool = WorkerPool(self._workers, name="gelee-ops")
                self._owns_pool = True
            return self._pool

    def pool_stats(self) -> Optional[Dict[str, int]]:
        """The pool's counters, or ``None`` while no pool exists yet."""
        with self._lock:
            pool = self._pool
        return pool.stats() if pool is not None and not pool.closed else None

    def close(self, wait: bool = True, timeout: float = 5.0) -> None:
        """Stop the store's own pool (injected pools belong to the caller)."""
        with self._lock:
            pool, owned = self._pool, self._owns_pool
            self._pool = None
        if pool is not None and owned and not pool.closed:
            pool.close(wait=wait, timeout=timeout)

    def _run(self, operation: Operation, work: Callable[[], Any],
             context: Optional[SpanContext] = None) -> None:
        operation.started_at = self._clock.now()
        operation.status = OperationStatus.RUNNING
        with span_scope("operation.run", context=context, kind=operation.kind,
                        operation_id=operation.operation_id) as span:
            try:
                operation.result = work()
                operation.status = OperationStatus.SUCCEEDED
            except Exception as exc:  # noqa: BLE001 - reported on the handle
                operation.error = error_info_for(exc)
                operation.status = OperationStatus.FAILED
                if span is not None:
                    span.attrs["operation_error"] = operation.error.code
            finally:
                operation.finished_at = self._clock.now()
                operation.done.set()

    # ------------------------------------------------------------------- query
    def get(self, operation_id: str) -> Operation:
        with self._lock:
            operation = self._operations.get(operation_id)
        if operation is None:
            raise OperationNotFoundError(
                "no operation with id {!r}".format(operation_id))
        return operation

    def list(self) -> List[Operation]:
        with self._lock:
            return [self._operations[op_id] for op_id in self._order]

    def wait(self, operation_id: str, timeout: float = 30.0) -> Operation:
        """Block until the operation reaches a terminal state (in-process)."""
        operation = self.get(operation_id)
        operation.done.wait(timeout)
        return operation

    # ------------------------------------------------------------------ intern
    def _evict_locked(self) -> None:
        while len(self._order) > self._capacity:
            # Evict the oldest *finished* operation; never drop a live handle.
            for position, op_id in enumerate(self._order):
                if self._operations[op_id].status.is_terminal:
                    del self._operations[op_id]
                    del self._order[position]
                    break
            else:
                return
