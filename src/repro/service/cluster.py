"""Cluster federation: one merged observability view across every node.

Each node keeps a small registry of peers — seeded automatically from
what it already knows (a replica's HTTP journal source, a primary's
follower table, the coordination lease's current leader) and extended
explicitly via :meth:`ClusterView.register` or
``POST /v2/runtime/cluster:register``.  ``GET /v2/runtime/cluster`` fans
out to every peer's ``/v2/runtime/cluster/self`` — through an in-process
:class:`~repro.service.rest.RestRouter` handle or over HTTP — and merges
the answers into a single envelope of role, health, lag, firing alerts
and recent metric deltas.

Fan-out never fails the merged view: a dead or unregistered peer's row
carries a ``NODE_UNREACHABLE`` error payload and the response is marked
``partial`` while staying HTTP 200 — exactly the semantics an operator
dashboard wants when one node of the cluster is the thing being
debugged.  The registry lives on the *service*, so it survives
promotion: a replica's view keeps its peers after ``promote()`` flips
the node into a primary.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from ..errors import NodeUnreachableError, ValidationError
from .v2.envelope import error_info_for

__all__ = ["ClusterView"]

#: Counter prefixes summarised into each node row's ``deltas`` block.
KEY_DELTA_PREFIXES = (
    "gelee_api_requests_total",
    "gelee_actions_dispatched_total",
    "gelee_alerts_fired_total",
)


class ClusterView:
    """The per-node peer registry and fan-out for ``/v2/runtime/cluster``."""

    def __init__(self, service):
        self._service = service
        self._lock = threading.Lock()
        # node_id -> {"transport": "in-process"|"http", "router"|("host","port")}
        self._peers: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()

    # -- registry ----------------------------------------------------------

    def register(self, node_id: str, router=None, url: Optional[str] = None,
                 host: Optional[str] = None,
                 port: Optional[int] = None) -> Dict[str, Any]:
        """Add (or replace) a peer reachable in-process or over HTTP."""
        if not node_id or not str(node_id).strip():
            raise ValidationError("cluster peer needs a node_id")
        node_id = str(node_id).strip()
        if url:
            parts = urlsplit(str(url))
            host = parts.hostname
            port = parts.port
            if host is None or port is None:
                raise ValidationError(
                    "cluster peer url must look like http://host:port")
        if router is not None:
            entry: Dict[str, Any] = {"transport": "in-process",
                                     "router": router,
                                     "endpoint": "in-process"}
        elif host is not None and port is not None:
            entry = {"transport": "http", "host": str(host), "port": int(port),
                     "endpoint": "{}:{}".format(host, port)}
        else:
            raise ValidationError(
                "cluster peer needs a router, a url, or host and port")
        with self._lock:
            self._peers[node_id] = entry
        return {"node_id": node_id, "transport": entry["transport"],
                "endpoint": entry["endpoint"]}

    def deregister(self, node_id: str) -> bool:
        with self._lock:
            return self._peers.pop(node_id, None) is not None

    def peers(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [{"node_id": node_id, "transport": entry["transport"],
                     "endpoint": entry["endpoint"]}
                    for node_id, entry in self._peers.items()]

    # -- fan-out -----------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """The merged cluster envelope; partial over unreachable peers."""
        own = self._service.cluster_self_summary()
        own_row = dict(own)
        own_row["reachable"] = True
        own_row["via"] = "self"
        nodes = [own_row]
        seen = {own.get("node_id")}
        partial = False
        with self._lock:
            registered = list(self._peers.items())
        for node_id, entry in registered:
            if node_id in seen:
                continue
            seen.add(node_id)
            row = self._fetch_peer(node_id, entry)
            if not row.get("reachable"):
                partial = True
            nodes.append(row)
        for node_id, via in self._discovered_ids():
            if node_id in seen:
                continue
            seen.add(node_id)
            partial = True
            info = error_info_for(NodeUnreachableError(
                "peer {!r} discovered via {} has no registered "
                "transport".format(node_id, via), node_id=node_id))
            nodes.append({"node_id": node_id, "reachable": False,
                          "via": via, "error": info.to_dict()})
        return {
            "reported_by": own.get("node_id"),
            "partial": partial,
            "node_count": len(nodes),
            "unreachable": sum(1 for row in nodes if not row.get("reachable")),
            "nodes": nodes,
        }

    def _fetch_peer(self, node_id: str,
                    entry: Dict[str, Any]) -> Dict[str, Any]:
        try:
            if entry["transport"] == "in-process":
                response = entry["router"].get("/v2/runtime/cluster/self")
                status, body = response.status, response.body
            else:
                from .http import GeleeHttpClient

                client = GeleeHttpClient(entry["host"], entry["port"],
                                         timeout=5.0)
                response = client.get("/v2/runtime/cluster/self")
                status, body = response.status, response.body
            if status != 200 or not isinstance(body, dict) \
                    or body.get("data") is None:
                raise NodeUnreachableError(
                    "peer {!r} answered HTTP {}".format(node_id, status),
                    node_id=node_id)
            row = dict(body["data"])
            row["reachable"] = True
            row["via"] = entry["transport"]
            row.setdefault("node_id", node_id)
            return row
        except NodeUnreachableError as exc:
            info = error_info_for(exc)
        except Exception as exc:  # connection refused, closed service, ...
            info = error_info_for(NodeUnreachableError(
                "peer {!r} unreachable: {}".format(node_id, exc),
                node_id=node_id))
        return {"node_id": node_id, "reachable": False,
                "via": entry["transport"], "endpoint": entry["endpoint"],
                "error": info.to_dict()}

    # -- discovery ---------------------------------------------------------

    def _discovered_ids(self) -> List[Tuple[str, str]]:
        """Peer node ids this node already knows about, with their origin.

        Fed by the replication attachment (a primary's follower table)
        and the coordination lease (the current leader) — the registry
        the tentpole asks for.  Discovered ids without a registered
        transport surface as unreachable rows rather than being hidden.
        """
        service = self._service
        discovered: List[Tuple[str, str]] = []
        replication = getattr(service, "replication", None)
        if replication is not None:
            follower_ids = getattr(replication, "follower_ids", None)
            if callable(follower_ids):
                try:
                    discovered.extend((fid, "replication")
                                      for fid in follower_ids())
                except Exception:
                    pass  # follower table unavailable mid-shutdown
        coordination = getattr(service, "coordination", None)
        if coordination is not None:
            try:
                leader_id = coordination.status().get("leader_id")
            except Exception:
                leader_id = None
            if leader_id:
                discovered.append((leader_id, "coordination"))
        return discovered
