"""URI and identifier helpers.

The paper identifies every managed artifact ("resource") by a URI and every
lifecycle model, action type, instance and user by an identifier.  This module
centralises generation, normalisation and light validation of those
identifiers so the rest of the kernel can treat them as opaque strings.
"""

from __future__ import annotations

import re
import uuid
from urllib.parse import urlparse, urlunparse

from .errors import ValidationError

_SLUG_RE = re.compile(r"[^a-z0-9]+")
_ID_RE = re.compile(r"^[A-Za-z0-9_.:\-/]+$")


def new_id(prefix: str = "id") -> str:
    """Return a globally unique identifier with a readable prefix.

    Example: ``new_id("inst")`` -> ``"inst-6f1a2c3d4e5f"``.
    """
    return "{}-{}".format(prefix, uuid.uuid4().hex[:12])


def slugify(text: str) -> str:
    """Turn a human-readable name into a phase/action id.

    Mirrors the paper's Table I where the phase "Internal review" has the id
    ``internalreview``-style slug; we keep hyphens for readability.
    """
    slug = _SLUG_RE.sub("-", text.strip().lower()).strip("-")
    return slug or new_id("item")


def is_valid_identifier(value: str) -> bool:
    """Return True when ``value`` is a non-empty, URL-safe identifier."""
    return bool(value) and bool(_ID_RE.match(value))


def require_identifier(value: str, what: str = "identifier") -> str:
    """Validate an identifier and return it, raising :class:`ValidationError` otherwise."""
    if not is_valid_identifier(value):
        raise ValidationError(["{} {!r} is not a valid identifier".format(what, value)])
    return value


def normalize_uri(uri: str) -> str:
    """Normalise a resource URI for identity comparison.

    The paper allows several lifecycles (and several running instances) to be
    attached to the *same* URI, so URI identity matters: scheme and host are
    lowercased, default ports dropped, empty paths become ``/`` and trailing
    slashes on non-root paths are removed.  Fragments are preserved because a
    fragment can address a sub-resource (e.g. a wiki section).
    """
    if not uri or not uri.strip():
        raise ValidationError(["resource URI must be a non-empty string"])
    uri = uri.strip()
    parsed = urlparse(uri)
    if not parsed.scheme:
        # Allow opaque identifiers such as "urn:deliverable:d1.1" or plain ids.
        return uri
    scheme = parsed.scheme.lower()
    netloc = parsed.netloc.lower()
    for default_port, schemes in ((":80", ("http",)), (":443", ("https",))):
        if netloc.endswith(default_port) and scheme in schemes:
            netloc = netloc[: -len(default_port)]
    path = parsed.path or "/"
    if len(path) > 1 and path.endswith("/"):
        path = path.rstrip("/")
    return urlunparse((scheme, netloc, path, parsed.params, parsed.query, parsed.fragment))


def uri_host(uri: str) -> str:
    """Return the lowercase host part of a URI, or '' for opaque URIs."""
    return urlparse(uri).netloc.lower()


def callback_uri(base: str, instance_id: str, phase_id: str, action_call_id: str) -> str:
    """Build the callback URI handed to an action invocation.

    The paper specifies that actions receive "a link to the object and a
    callback URI" and later report status to that callback.  The structure is
    our own (the paper does not prescribe one); it is parsed back by
    :func:`parse_callback_uri`.
    """
    base = base.rstrip("/")
    return "{}/callbacks/{}/{}/{}".format(base, instance_id, phase_id, action_call_id)


def parse_callback_uri(uri: str):
    """Split a callback URI into ``(instance_id, phase_id, action_call_id)``."""
    marker = "/callbacks/"
    position = uri.find(marker)
    if position < 0:
        raise ValidationError(["{!r} is not a callback URI".format(uri)])
    tail = uri[position + len(marker):]
    parts = [part for part in tail.split("/") if part]
    if len(parts) != 3:
        raise ValidationError(["callback URI {!r} must have instance/phase/call parts".format(uri)])
    return parts[0], parts[1], parts[2]
